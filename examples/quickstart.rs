//! Quickstart: build a Mach-Zehnder interferometer netlist, simulate it
//! over the C+L band, and print its transmission spectrum.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use picbench::netlist::NetlistBuilder;
use picbench::sim::{simulate_netlist, Backend, ModelRegistry, PortSpec, WavelengthGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the circuit: a 1×2 MMI splitter, two arms with a 15 µm
    //    path difference, and a reversed MMI combiner — the same topology
    //    as the paper's MZI example.
    let netlist = NetlistBuilder::new()
        .instance("split", "mmi")
        .instance("combine", "mmi")
        .instance_with("armTop", "waveguide", &[("length", 10.0)])
        .instance_with("armBottom", "waveguide", &[("length", 25.0)])
        .connect("split,O1", "armTop,I1")
        .connect("split,O2", "armBottom,I1")
        .connect("armTop,O1", "combine,O1")
        .connect("armBottom,O1", "combine,O2")
        .port("I1", "split,I1")
        .port("O1", "combine,I1")
        .model("mmi", "mmi1x2")
        .model("waveguide", "waveguide")
        .build();

    println!("Netlist:\n{}\n", netlist.to_json_string());

    // 2. Simulate with the built-in component models.
    let registry = ModelRegistry::with_builtins();
    let response = simulate_netlist(
        &netlist,
        &registry,
        Some(&PortSpec::new(1, 1)),
        &WavelengthGrid::paper_default(),
        Backend::default(),
    )?;

    // 3. Plot the fringe as ASCII art.
    let db = response.transmission_db("I1", "O1").expect("ports exist");
    println!("MZI transmission I1 -> O1 (1510-1590 nm):\n");
    for (wl, t) in response.wavelengths().iter().zip(&db) {
        let bars = ((t + 40.0).max(0.0) * 1.5) as usize;
        println!("{:7.4} um  {:>8.2} dB  {}", wl, t, "#".repeat(bars));
    }

    let min = db.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = db.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("\nFringe contrast: {:.1} dB", max - min);
    Ok(())
}
