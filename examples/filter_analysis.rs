//! Characterize a microring add-drop filter with the spectrum-analysis
//! toolbox: resonance positions, free spectral range, 3 dB bandwidth,
//! insertion loss, extinction — and cross-check the FSR against theory.
//!
//! ```sh
//! cargo run --release --example filter_analysis
//! ```

use picbench::netlist::NetlistBuilder;
use picbench::sim::analysis::{
    bandwidth_3db, extinction_ratio_db, find_notches, find_peaks, free_spectral_range_um,
    insertion_loss_db,
};
use picbench::sim::{simulate_netlist, Backend, ModelRegistry, WavelengthGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let radius = 5.0;
    let coupling = 0.08;
    let netlist = NetlistBuilder::new()
        .instance_with(
            "ring",
            "ringad",
            &[
                ("radius", radius),
                ("coupling1", coupling),
                ("coupling2", coupling),
            ],
        )
        .port("I1", "ring,I1")
        .port("I2", "ring,I2")
        .port("O1", "ring,O1")
        .port("O2", "ring,O2")
        .model("ringad", "ringad")
        .build();

    let registry = ModelRegistry::with_builtins();
    let response = simulate_netlist(
        &netlist,
        &registry,
        None,
        &WavelengthGrid::new(1.51, 1.59, 4001),
        Backend::default(),
    )?;
    let wl = response.wavelengths().to_vec();
    let drop_db = response.transmission_db("I1", "O2").unwrap();
    let thru_db = response.transmission_db("I1", "O1").unwrap();

    println!("Add-drop microring: radius {radius} um, coupling {coupling}\n");

    let peaks = find_peaks(&wl, &drop_db, 10.0);
    println!("Drop-port resonances ({}):", peaks.len());
    for p in &peaks {
        let bw = bandwidth_3db(&wl, &drop_db, p)
            .map(|b| format!("{:.1} pm", b * 1e6))
            .unwrap_or_else(|| "n/a (band edge)".to_string());
        println!(
            "  {:9.4} um   {:6.2} dB   3dB bandwidth {}",
            p.wavelength_um, p.value_db, bw
        );
    }

    if let Some(fsr) = free_spectral_range_um(&peaks) {
        // FSR theory: λ²/(n_g·L_rt) with L_rt = 2πR.
        let circumference = 2.0 * std::f64::consts::PI * radius;
        let theory = 1.55 * 1.55 / (4.2 * circumference);
        println!(
            "\nFSR measured {:.3} nm vs theory {:.3} nm ({:+.1}%)",
            fsr * 1e3,
            theory * 1e3,
            (fsr - theory) / theory * 100.0
        );
    }

    println!(
        "\nDrop port : insertion loss {:.2} dB, extinction {:.1} dB",
        insertion_loss_db(&drop_db),
        extinction_ratio_db(&drop_db)
    );
    println!(
        "Through   : insertion loss {:.2} dB, on-resonance rejection {:.1} dB",
        insertion_loss_db(&thru_db),
        extinction_ratio_db(&thru_db)
    );

    let notches = find_notches(&wl, &thru_db, 10.0);
    println!(
        "Through-port notches align with drop peaks: {} notches / {} peaks",
        notches.len(),
        peaks.len()
    );
    for (n, p) in notches.iter().zip(&peaks) {
        assert!(
            (n.wavelength_um - p.wavelength_um).abs() < 1e-3,
            "notch/peak misalignment"
        );
    }
    println!("\nAll resonances consistent between drop and through ports.");
    Ok(())
}
