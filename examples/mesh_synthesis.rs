//! Synthesize a programmable MZI mesh for a target unitary with both the
//! Reck and Clements schemes, then verify by simulation that the mesh's
//! S-matrix equals the target.
//!
//! ```sh
//! cargo run --example mesh_synthesis
//! ```

use picbench::math::{decomp, CMatrix, MeshScheme};
use picbench::problems::meshes::mesh_netlist;
use picbench::sim::{evaluate, Backend, Circuit, ModelRegistry};
use rand::SeedableRng;

fn mesh_matrix(
    netlist: &picbench::netlist::Netlist,
    n: usize,
) -> Result<CMatrix, Box<dyn std::error::Error>> {
    let registry = ModelRegistry::with_builtins();
    let circuit = Circuit::elaborate(netlist, &registry, None)?;
    let s = evaluate(&circuit, 1.55, Backend::default())?;
    Ok(CMatrix::from_fn(n, n, |r, c| {
        s.s(&format!("I{}", c + 1), &format!("O{}", r + 1)).unwrap()
    }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 6;
    // A Haar-random target unitary.
    let mut rng = rand::rngs::StdRng::seed_from_u64(20260611);
    let target = decomp::random_unitary(n, &mut rng);
    println!("Target: Haar-random {n}x{n} unitary\n");

    for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
        let mesh = decomp::decompose(&target, scheme)?;
        let netlist = mesh_netlist(&mesh);
        let realized = mesh_matrix(&netlist, n)?;
        let algebra_err = mesh.rebuild().max_abs_diff(&target);
        let physics_err = realized.max_abs_diff(&target);
        println!(
            "{scheme:>9} mesh: {} MZI stages, {} instances",
            mesh.stage_count(),
            netlist.instances.len()
        );
        println!("  matrix-algebra rebuild error : {algebra_err:.2e}");
        println!("  simulated S-matrix error     : {physics_err:.2e}");
        assert!(physics_err < 1e-8, "mesh must realize the target");

        // Depth: the Clements arrangement should be shallower (more
        // parallel) than the triangular Reck arrangement for the same
        // stage count. Estimate depth as the longest chain per wire.
        let mut depth = vec![0usize; n];
        for f in &mesh.factors {
            let d = depth[f.mode].max(depth[f.mode + 1]) + 1;
            depth[f.mode] = d;
            depth[f.mode + 1] = d;
        }
        println!(
            "  optical depth (MZIs on longest path): {}\n",
            depth.iter().max().unwrap()
        );
    }

    println!("Both schemes realize the same unitary; Clements does it at lower depth.");
    Ok(())
}
