//! Watch the error-feedback loop heal a faulty design (the Fig. 4 story,
//! live): a synthetic model answers the `MZI ps` brief, the evaluator
//! classifies its mistakes, and the correction feedback converges to a
//! passing netlist.
//!
//! ```sh
//! cargo run --example feedback_session
//! ```

use picbench::core::{run_sample, Evaluator, LoopConfig};
use picbench::prompt::Role;
use picbench::synthllm::{ModelProfile, SyntheticLlm};

fn main() {
    let problem = picbench::problems::find("mzi-ps").expect("problem exists");
    let mut evaluator = Evaluator::default();
    let mut llm = SyntheticLlm::new(ModelProfile::gpt_o1_mini(), 4242);

    // Search for a sample that starts broken and ends fixed — the
    // archetypal feedback story.
    for sample in 0..500 {
        let result = run_sample(
            &mut llm,
            &problem,
            &mut evaluator,
            LoopConfig {
                max_feedback_iters: 3,
                restrictions: false,
            },
            sample,
        );
        if result.feedback_rounds_used() == 0 || !result.functional_pass() {
            continue;
        }

        println!(
            "=== {} solving '{}' (sample {}) ===\n",
            result.model, problem.name, sample
        );
        for attempt in &result.attempts {
            println!("--- Iteration {} ---", attempt.iteration);
            match &attempt.report.syntax {
                Err(issues) => {
                    println!("Evaluation: SYNTAX ERROR");
                    for issue in issues {
                        println!("  {issue}");
                    }
                }
                Ok(()) => match attempt.report.functional {
                    Some(true) => println!("Evaluation: PASS"),
                    _ => println!("Evaluation: functional error (response deviates from golden)"),
                },
            }
            println!();
        }

        println!("--- Conversation transcript (roles only) ---");
        for turn in result.conversation.turns() {
            let preview: String = turn.content.chars().take(72).collect();
            let preview = preview.replace('\n', " ");
            println!("[{}] {preview}…", turn.role);
        }

        let feedback_turns = result
            .conversation
            .turns()
            .iter()
            .filter(|t| t.role == Role::User)
            .count()
            - 1;
        println!(
            "\nHealed after {} feedback round(s). Final verdict: syntax {}, functionality {}.",
            feedback_turns,
            if result.syntax_pass() { "PASS" } else { "FAIL" },
            if result.functional_pass() {
                "PASS"
            } else {
                "FAIL"
            },
        );
        return;
    }
    println!("No healing trajectory found in 500 samples (unexpected).");
}
