//! Route an 8×8 Benes switch fabric with the looping algorithm and verify
//! the routing by full S-parameter simulation.
//!
//! ```sh
//! cargo run --example switch_routing
//! ```

use picbench::problems::routing::{route_benes, route_spankebenes};
use picbench::sim::{evaluate, Backend, Circuit, ModelRegistry};

fn routing_matrix(
    netlist: &picbench::netlist::Netlist,
    n: usize,
) -> Result<Vec<Vec<f64>>, Box<dyn std::error::Error>> {
    let registry = ModelRegistry::with_builtins();
    let circuit = Circuit::elaborate(netlist, &registry, None)?;
    let s = evaluate(&circuit, 1.55, Backend::default())?;
    Ok((0..n)
        .map(|o| {
            (0..n)
                .map(|i| {
                    s.s(&format!("I{}", i + 1), &format!("O{}", o + 1))
                        .map(|t| t.norm_sqr())
                        .unwrap_or(0.0)
                })
                .collect()
        })
        .collect())
}

fn print_matrix(label: &str, p: &[Vec<f64>]) {
    println!("{label}");
    print!("        ");
    for i in 0..p.len() {
        print!("   I{}  ", i + 1);
    }
    println!();
    for (o, row) in p.iter().enumerate() {
        print!("  O{}  ", o + 1);
        for &v in row {
            if v > 0.5 {
                print!(" [{v:4.2}]");
            } else {
                print!("  {v:4.2} ");
            }
        }
        println!();
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The permutation to realize: input i -> output perm[i].
    let perm = vec![5usize, 2, 7, 0, 3, 6, 1, 4];
    println!("Target permutation: {perm:?}\n");

    // Benes: 20 switches, routed with the looping algorithm.
    let benes = route_benes(8, &perm)?;
    println!(
        "Benes 8x8 uses {} switches (rearrangeably non-blocking minimum).",
        benes.instances.len()
    );
    let p = routing_matrix(&benes, 8)?;
    print_matrix("Benes routing power matrix |S|^2 at 1550 nm:", &p);

    // Spanke-Benes: 28 switches in a planar arrangement, routed by
    // odd-even transposition sorting.
    let sb = route_spankebenes(8, &perm)?;
    println!(
        "Spanke-Benes 8x8 uses {} switches (planar, no crossings).",
        sb.instances.len()
    );
    let p = routing_matrix(&sb, 8)?;
    print_matrix("Spanke-Benes routing power matrix |S|^2 at 1550 nm:", &p);

    // Verify the permutation end to end.
    for (i, &o) in perm.iter().enumerate() {
        assert!(p[o][i] > 0.99, "input {i} failed to reach output {o}");
    }
    println!("All {} paths verified at > 99% power.", perm.len());
    Ok(())
}
