//! Streaming campaign session: pluggable providers, live progress
//! events, and cooperative cancellation.
//!
//! Demonstrates the three seams of the session API:
//!
//! * **providers** — a calibrated synthetic profile, a flaky decorator
//!   around it (deterministic rate-limit injection), and a recorded
//!   replay, all behind `Arc<dyn ModelProvider>`;
//! * **session builder** — `Campaign::builder()` with typed knobs and
//!   validation at `build()`;
//! * **events** — a `CampaignObserver` closure streaming `CellFinished`
//!   progress lines as workers finish cells, the way a server or TUI
//!   would.
//!
//! Run with: `cargo run --release --example streaming_campaign`

use picbench::core::{Campaign, CampaignEvent};
use picbench::synthllm::{FlakyProvider, ModelProfile, ModelProvider, ReplayLlm};
use std::sync::Arc;

fn main() {
    let problems: Vec<_> = ["mzi-ps", "mzm", "os-2x2", "umatrix"]
        .iter()
        .map(|id| picbench::problems::find(id).expect("built-in problem"))
        .collect();

    // A replay provider answering every sample with the recorded golden
    // transcript — the fixture path for regression-testing real-API runs.
    let mut replay = ReplayLlm::new("Recorded run");
    for problem in &problems {
        for sample in 0..3 {
            replay = replay.with_response(
                problem.id.clone(),
                sample,
                format!(
                    "<analysis>recorded</analysis>\n<result>\n{}\n</result>",
                    problem.golden.to_json_string()
                ),
            );
        }
    }

    let sonnet: Arc<dyn ModelProvider> = Arc::new(ModelProfile::claude35_sonnet());
    let providers: Vec<Arc<dyn ModelProvider>> = vec![
        Arc::clone(&sonnet),
        Arc::new(FlakyProvider::new(sonnet, 3)), // every 3rd response 429s
        Arc::new(replay),
    ];

    let campaign = Campaign::builder()
        .problems(problems)
        .providers(providers)
        .samples_per_problem(3)
        .k_values([1, 3])
        .feedback_iters([0, 1])
        .observer(Arc::new(|event: &CampaignEvent| match event {
            CampaignEvent::CampaignStarted {
                problems,
                providers,
                cells,
            } => {
                println!("campaign: {problems} problems x {providers} providers = {cells} cells");
            }
            CampaignEvent::CellFinished {
                problem_id,
                model,
                feedback_iters,
                tally,
                completed,
                total,
            } => {
                println!(
                    "[{completed:>2}/{total}] {model:<24} {problem_id:<10} EF={feedback_iters} \
                     syntax {}/{} functional {}/{}",
                    tally.syntax_passes, tally.n, tally.functional_passes, tally.n
                );
            }
            CampaignEvent::CacheStats(stats) => {
                println!(
                    "cache: {:.1}% of {} lookups served without simulating",
                    100.0 * stats.hit_rate(),
                    stats.lookups()
                );
            }
            CampaignEvent::CampaignFinished {
                cells_completed,
                cells_total,
                cancelled,
            } => {
                let state = if *cancelled { "cancelled" } else { "finished" };
                println!("campaign {state} after {cells_completed}/{cells_total} cells");
            }
            _ => {}
        }))
        .build()
        .expect("valid campaign definition");

    let report = campaign.run();
    println!();
    for cell in &report.cells {
        if cell.k == 1 && cell.feedback_iters == 0 {
            println!(
                "{:<24} Pass@1 syntax {:6.2}%  functional {:6.2}%",
                cell.model, cell.syntax, cell.functional
            );
        }
    }
}
