//! Run a miniature PICBench campaign: two model profiles on the
//! fundamental-device and computing problems, with and without the
//! Table II restrictions, printing Pass@k tables and a per-problem
//! breakdown.
//!
//! The full paper-scale campaign is available via
//! `cargo run --release -p picbench-bench --bin repro -- table3 table4`.
//!
//! ```sh
//! cargo run --release --example run_benchmark
//! ```

use picbench::core::{render_csv, render_table, run_campaign, CampaignConfig};
use picbench::sim::WavelengthGrid;
use picbench::synthllm::ModelProfile;

fn main() {
    let profiles = vec![ModelProfile::gpt4o(), ModelProfile::claude35_sonnet()];
    let problems: Vec<_> = picbench::problems::suite()
        .into_iter()
        .filter(|p| {
            matches!(
                p.id.as_str(),
                "mzi-ps" | "mzm" | "umatrix" | "nls" | "clements-4x4" | "os-2x2"
            )
        })
        .collect();

    for restrictions in [false, true] {
        let config = CampaignConfig {
            samples_per_problem: 5,
            k_values: vec![1, 5],
            feedback_iters: vec![0, 1, 3],
            restrictions,
            seed: 7,
            grid: WavelengthGrid::paper_fast(),
            threads: 0,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&profiles, &problems, &config);
        let title = if restrictions {
            "Mini-campaign WITH restrictions"
        } else {
            "Mini-campaign WITHOUT restrictions"
        };
        println!("{}", render_table(&report, title));

        // Per-problem breakdown for the no-feedback condition.
        for condition in &report.conditions {
            if condition.feedback_iters != 0 {
                continue;
            }
            println!("per-problem (model {}, no feedback):", condition.model);
            let mut ids: Vec<&String> = condition.tallies.keys().collect();
            ids.sort();
            for id in ids {
                let t = condition.tallies[id];
                println!(
                    "  {:<14} syntax {}/{}  functional {}/{}",
                    id, t.syntax_passes, t.n, t.functional_passes, t.n
                );
            }
            println!();
        }
    }

    // Machine-readable output for downstream analysis.
    let config = CampaignConfig {
        samples_per_problem: 5,
        restrictions: false,
        seed: 7,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&profiles, &problems, &config);
    println!("CSV export:\n{}", render_csv(&report));
}
