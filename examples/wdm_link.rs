//! Analyze a WDM link: multiplex four channels onto one bus, demultiplex
//! them again, and report per-channel insertion loss and isolation.
//!
//! ```sh
//! cargo run --example wdm_link
//! ```

use picbench::problems::interconnect::{wdm_demux_golden, WDM_CHANNELS_UM};
use picbench::sim::{simulate_netlist, Backend, ModelRegistry, PortSpec, WavelengthGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = ModelRegistry::with_builtins();
    let demux = wdm_demux_golden();
    let grid = WavelengthGrid::new(1.51, 1.59, 321);
    let response = simulate_netlist(
        &demux,
        &registry,
        Some(&PortSpec::new(1, 4)),
        &grid,
        Backend::default(),
    )?;

    println!("4-channel ring-based WDM demultiplexer");
    println!("channels: {WDM_CHANNELS_UM:?} um\n");
    println!(
        "{:>8} | {:>12} | {:>14} | {:>10}",
        "channel", "wavelength", "insertion loss", "isolation"
    );
    println!("{}", "-".repeat(55));

    let wavelengths = response.wavelengths().to_vec();
    let nearest = |target: f64| -> usize {
        wavelengths
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - target)
                    .abs()
                    .partial_cmp(&(b.1 - target).abs())
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap()
    };

    for (k, &ch) in WDM_CHANNELS_UM.iter().enumerate() {
        let own_port = format!("O{}", k + 1);
        let own = response.transmission_db("I1", &own_port).unwrap();
        let idx = nearest(ch);
        let insertion = own[idx];
        // Worst leakage of this channel into any *other* output.
        let mut worst_leak = f64::NEG_INFINITY;
        for j in 0..WDM_CHANNELS_UM.len() {
            if j == k {
                continue;
            }
            let other = response
                .transmission_db("I1", &format!("O{}", j + 1))
                .unwrap();
            worst_leak = worst_leak.max(other[idx]);
        }
        println!(
            "{:>8} | {:>9.3} um | {:>11.2} dB | {:>7.1} dB",
            k + 1,
            ch,
            insertion,
            insertion - worst_leak
        );
    }

    // Spectral scan of channel 1's drop port.
    println!("\nDrop-port spectrum of channel 1 (O1):");
    let o1 = response.transmission_db("I1", "O1").unwrap();
    for (i, (&wl, &t)) in wavelengths.iter().zip(&o1).enumerate() {
        if i % 16 != 0 {
            continue;
        }
        let bars = ((t + 50.0).max(0.0)) as usize;
        println!("{:7.4} um {:>8.2} dB {}", wl, t, "#".repeat(bars / 2));
    }
    Ok(())
}
