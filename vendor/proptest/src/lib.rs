//! Offline shim for the subset of the `proptest` API used by PICBench-rs.
//!
//! Provides random-input property testing without shrinking: the
//! [`proptest!`] macro, [`Strategy`] combinators (`prop_map`,
//! `prop_recursive`, tuples, ranges, regex-class string literals,
//! [`collection::vec`], [`prop_oneof!`], [`Just`], [`any`]) and the
//! `prop_assert*` / [`prop_assume!`] assertion family. Inputs are drawn from
//! a deterministic per-test generator, so failures are reproducible; on
//! failure the offending case index and message are reported via `panic!`.
//! Default-config blocks honour the upstream `PROPTEST_CASES` environment
//! variable, so CI can deepen property coverage without code changes.
//! (Domain-level counterexample shrinking lives in `picbench-conformance`,
//! which builds on these strategies.)

#![warn(missing_docs)]

use std::rc::Rc;

pub mod collection;
pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

/// Baseline case count when neither the block nor the environment says
/// otherwise.
pub const DEFAULT_CASES: u32 = 64;

impl Default for ProptestConfig {
    /// Like upstream proptest, the default case count honours the
    /// `PROPTEST_CASES` environment variable (falling back to
    /// [`DEFAULT_CASES`]), so CI can deepen every default-config property
    /// block — e.g. the nightly conformance run — without code changes.
    /// Blocks that set an explicit `ProptestConfig::with_cases` are
    /// unaffected.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count as a
    /// failure.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given test seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Stable 64-bit FNV-1a hash used to derive per-test seeds from names.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs a property body over `config.cases` generated cases.
///
/// Used by the [`proptest!`] macro expansion; not normally called directly.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when any case returns
/// [`TestCaseError::Fail`].
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_for(test_name));
    let mut rejected = 0u32;
    for i in 0..config.cases {
        match case(&mut rng, i) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{test_name}' failed at case {i}: {msg}")
            }
        }
    }
    // Mirror proptest's global rejection cap loosely: if everything was
    // rejected the property never ran and that is itself a bug.
    assert!(
        rejected < config.cases || config.cases == 0,
        "property '{test_name}': all {rejected} cases were rejected by prop_assume!"
    );
}

/// Boxes heterogeneous strategies and picks one uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares a block of property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |rng, _case| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Shared boxed-strategy handle (cloneable), used by recursion and unions.
pub type SharedStrategy<T> = Rc<dyn Strategy<Value = T>>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in -2.0f64..=2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn map_and_vec_compose(v in collection::vec((0u64..5).prop_map(|n| n * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|n| n % 2 == 0 && *n < 10));
        }

        #[test]
        fn regex_class_strings(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "bad length: {s:?}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }

    #[test]
    fn default_cases_honour_the_environment() {
        // The variable may already be set by a nightly CI run; whatever
        // the ambient value, the default must parse it (or fall back).
        let config = crate::ProptestConfig::default();
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
        {
            Some(n) => assert_eq!(config.cases, n),
            None => assert_eq!(config.cases, crate::DEFAULT_CASES),
        }
        assert_eq!(crate::ProptestConfig::with_cases(7).cases, 7);
    }
}
