//! Strategies: deterministic-random value generators.

use crate::{SharedStrategy, TestRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no shrinking; a strategy is just a
/// deterministic function of the test RNG state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a depth-limited
    /// strategy for the same type and wraps it in the recursive cases.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but unused (no shrinking, sizes come from the
    /// component strategies).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: SharedStrategy<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice between boxed alternatives — the engine of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// The canonical strategy for an [`Arbitrary`] type (shim of
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// One parsed element of a character-class regex: a set of allowed chars
/// plus a repetition count range.
#[derive(Debug, Clone)]
struct ClassItem {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the character-class subset of regex syntax used by the test
/// suites: sequences of `[...]` classes (with ranges and `\`-escapes) or
/// literal characters, each optionally followed by `{n}` / `{m,n}`.
fn parse_class_regex(pattern: &str) -> Vec<ClassItem> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut set = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        assert!(i < chars.len(), "dangling escape in {pattern:?}");
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `a-z` range (a `-` needs a left operand and a right
                    // operand that is not the closing bracket).
                    if i + 2 < chars.len()
                        && chars[i + 1] == '-'
                        && chars[i + 2] != ']'
                        && chars[i] != '\\'
                    {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "inverted range {c}-{hi} in {pattern:?}");
                        for code in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(code) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // skip ']'
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in {pattern:?}");
                set.push(chars[i]);
                i += 1;
            }
            c => {
                set.push(c);
                i += 1;
            }
        }
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        items.push(ClassItem {
            chars: set,
            min,
            max,
        });
    }
    items
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let items = parse_class_regex(self);
        let mut out = String::new();
        for item in &items {
            let count = if item.max > item.min {
                item.min + rng.below(item.max - item.min + 1)
            } else {
                item.min
            };
            for _ in 0..count {
                out.push(item.chars[rng.below(item.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_regex_parses_escapes_and_ranges() {
        let items = parse_class_regex("[a-cX\\-]{2,3}");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].chars, vec!['a', 'b', 'c', 'X', '-']);
        assert_eq!((items[0].min, items[0].max), (2, 3));
    }

    #[test]
    fn multi_item_pattern() {
        let items = parse_class_regex("[IO][1-4]");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].chars, vec!['I', 'O']);
        assert_eq!(items[1].chars, vec!['1', '2', '3', '4']);
    }

    #[test]
    fn generated_strings_match_pattern() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,5}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
