//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Length specifications accepted by [`vec()`]: a `usize` (exact length) or
/// a half-open `Range<usize>`.
pub trait SizeRange {
    /// The half-open range of permitted lengths.
    fn bounds(self) -> Range<usize>;
}

impl SizeRange for usize {
    fn bounds(self) -> Range<usize> {
        self..self + 1
    }
}

impl SizeRange for Range<usize> {
    fn bounds(self) -> Range<usize> {
        self
    }
}

/// Strategy for `Vec`s with a length drawn from `len` and elements drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: impl SizeRange) -> VecStrategy<S> {
    let len = len.bounds();
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.below(span);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let strat = vec(0u32..5, 2..7);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
