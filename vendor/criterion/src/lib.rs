//! Offline shim for the subset of the `criterion` API used by the
//! PICBench-rs benches.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! keeps the bench sources compiling and *running*: each benchmark is
//! timed with a fixed warm-up plus an adaptive measurement loop and the
//! mean per-iteration time is printed. Statistical analysis, plots and
//! HTML reports are out of scope.
//!
//! `--test` on the bench binary's command line (as passed by
//! `cargo bench -- --test`, the CI smoke mode) runs every benchmark body
//! exactly once without timing.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing driver handed to bench closures.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    /// Mean per-iteration time of the last `iter` call, for reporting.
    last_mean: Option<Duration>,
    last_iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.last_mean = None;
            self.last_iters = 1;
            return;
        }
        // Warm-up: run until ~10% of the measurement budget is spent, so
        // caches and branch predictors settle.
        let warmup_budget = self.measurement_time / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        // Measurement: batched timing until the budget is exhausted.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement_time {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.last_mean = Some(total / iters as u32);
        self.last_iters = iters;
    }
}

/// Shim of `criterion::Criterion`: dispatches benchmarks and prints
/// per-iteration means.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench -- --test` smoke mode; any bare argument filters by
        // benchmark name, mirroring criterion's CLI.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.ends_with(".rs"))
            .cloned();
        Criterion {
            test_mode,
            filter,
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let time = self.measurement_time;
        self.run_one(name, time, f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|needle| full_name.contains(needle))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, time: Duration, mut f: F) {
        if !self.matches(full_name) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measurement_time: time,
            last_mean: None,
            last_iters: 0,
        };
        f(&mut bencher);
        match bencher.last_mean {
            Some(mean) => println!(
                "bench: {full_name:<50} {:>12.3} us/iter ({} iters)",
                mean.as_secs_f64() * 1e6,
                bencher.last_iters
            ),
            None => println!("bench: {full_name:<50} ok (test mode)"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time, not
    /// sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides this group's measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion.run_one(&full, time, |b| f(b, input));
        self
    }

    /// Runs a benchmark without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion.run_one(&full, time, f);
        self
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_criterion(test_mode: bool) -> u32 {
        let mut c = Criterion {
            test_mode,
            filter: None,
            measurement_time: Duration::from_millis(20),
        };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        calls
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        assert_eq!(run_criterion(true), 1);
    }

    #[test]
    fn bench_mode_iterates() {
        assert!(run_criterion(false) > 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("parse", "mzi").to_string(), "parse/mzi");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
