//! Offline shim for the subset of the `rand` 0.8 API used by PICBench-rs.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the handful of items the repo actually calls — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by a
//! deterministic xoshiro256** generator. The value *stream* differs from
//! upstream `rand`; everything in-repo treats seeded RNGs as arbitrary
//! deterministic sources, never as golden value streams.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (shim of `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] accepts; parameterized over the output
/// type (like upstream's `SampleRange<T>`) so literal inference works.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        // Map 53-bit draws onto [lo, hi]; the endpoint is reachable.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_covers_all_buckets() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
