//! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

use crate::Rng;

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let empty: [u8; 0] = [];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(empty.choose(&mut rng), None);
    }

    #[test]
    fn choose_hits_every_element() {
        let items = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(11);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
