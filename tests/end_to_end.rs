//! Cross-crate integration: golden designs against both simulator
//! backends, the oracle model through the full framework, and campaign
//! determinism.

use picbench::core::{pass_at_k, run_campaign, run_sample, CampaignConfig, Evaluator, LoopConfig};
use picbench::sim::{evaluate, Backend, Circuit, ModelRegistry, WavelengthGrid};
use picbench::synthllm::{ModelProfile, PerfectLlm};

#[test]
fn both_backends_agree_on_every_golden_design() {
    let registry = ModelRegistry::with_builtins();
    for problem in picbench::problems::suite() {
        let circuit = Circuit::elaborate(&problem.golden, &registry, Some(&problem.spec))
            .unwrap_or_else(|e| panic!("{} failed to elaborate: {e}", problem.id));
        for wl in [1.51, 1.54, 1.55, 1.57, 1.59] {
            let a = evaluate(&circuit, wl, Backend::PortElimination)
                .unwrap_or_else(|e| panic!("{}: elimination failed: {e}", problem.id));
            let b = evaluate(&circuit, wl, Backend::Dense)
                .unwrap_or_else(|e| panic!("{}: dense failed: {e}", problem.id));
            let diff = a.max_abs_diff(&b);
            assert!(
                diff < 1e-8,
                "{} at {wl} um: backends disagree by {diff:.2e}",
                problem.id
            );
        }
    }
}

#[test]
fn golden_designs_are_passive_and_finite() {
    let registry = ModelRegistry::with_builtins();
    for problem in picbench::problems::suite() {
        let circuit = Circuit::elaborate(&problem.golden, &registry, None).unwrap();
        for wl in [1.52, 1.55, 1.58] {
            let s = evaluate(&circuit, wl, Backend::default()).unwrap();
            assert!(
                s.is_passive(1e-6),
                "{} has gain at {wl} um — unphysical",
                problem.id
            );
        }
    }
}

#[test]
fn oracle_achieves_perfect_pass_at_k() {
    let mut oracle = PerfectLlm::new();
    let mut evaluator = Evaluator::default();
    let mut syntax = 0usize;
    let mut func = 0usize;
    let problems = picbench::problems::suite();
    for problem in &problems {
        let result = run_sample(
            &mut oracle,
            problem,
            &mut evaluator,
            LoopConfig::default(),
            0,
        );
        syntax += usize::from(result.syntax_pass());
        func += usize::from(result.functional_pass());
    }
    assert_eq!(syntax, problems.len());
    assert_eq!(func, problems.len());
    assert_eq!(pass_at_k(problems.len(), func, 1), 1.0);
}

#[test]
fn campaigns_are_reproducible_across_thread_counts() {
    let profiles = vec![ModelProfile::gpt4o()];
    let problems: Vec<_> = picbench::problems::suite()
        .into_iter()
        .filter(|p| {
            matches!(
                p.id.as_str(),
                "mzi-ps" | "umatrix" | "benes-4x4" | "wdm-mux"
            )
        })
        .collect();
    let base = CampaignConfig {
        samples_per_problem: 4,
        k_values: vec![1, 4],
        feedback_iters: vec![0, 1],
        restrictions: true,
        seed: 321,
        grid: WavelengthGrid::paper_fast(),
        threads: 1,
        ..CampaignConfig::default()
    };
    let single = run_campaign(&profiles, &problems, &base);
    let multi = run_campaign(
        &profiles,
        &problems,
        &CampaignConfig {
            threads: 4,
            ..base.clone()
        },
    );
    for cell in &single.cells {
        let other = multi
            .cell(&cell.model, cell.feedback_iters, cell.k)
            .expect("cell exists");
        assert_eq!(cell.syntax, other.syntax, "thread count changed results");
        assert_eq!(cell.functional, other.functional);
    }
}

#[test]
fn restrictions_improve_restricted_models() {
    // Gemini-profile is the restriction-sensitive one in the paper; its
    // syntax Pass@1 must improve markedly when restrictions are added.
    let profiles = vec![ModelProfile::gemini15_pro()];
    let problems: Vec<_> = picbench::problems::suite()
        .into_iter()
        .filter(|p| {
            matches!(
                p.id.as_str(),
                "mzi-ps" | "mzm" | "os-2x2" | "umatrix" | "direct-modulator" | "wdm-demux"
            )
        })
        .collect();
    let mut scores = [0.0f64; 2];
    for (slot, restrictions) in [(0usize, false), (1, true)] {
        let config = CampaignConfig {
            samples_per_problem: 10,
            k_values: vec![1],
            feedback_iters: vec![0],
            restrictions,
            seed: 11,
            grid: WavelengthGrid::paper_fast(),
            threads: 0,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&profiles, &problems, &config);
        scores[slot] = report.cell("Gemini 1.5 pro", 0, 1).unwrap().syntax;
    }
    assert!(
        scores[1] > scores[0] + 15.0,
        "restrictions should lift Gemini-profile sharply: {:.1} -> {:.1}",
        scores[0],
        scores[1]
    );
}
