//! Exhaustive corruption-operator coverage for the persistent store, at
//! the umbrella-crate level: every way a segment file can be damaged on
//! disk — truncated at *any* byte, any single bit flipped, framing
//! destroyed — must be classified by recovery, never panic, and never
//! surface wrong data.
//!
//! This is the integration contract behind the durability story: the
//! campaign journal and the evaluation disk tier both sit on this store,
//! and "corruption costs time, never correctness" only holds if *no*
//! byte position is a soft spot. The style mirrors
//! `tests/corruption_classification.rs`: stage every operator at every
//! applicable position and assert the classification.

use picbench::store::Store;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes of the segment header (`"PICSTOR1"` magic + version u32).
const HEADER_LEN: usize = 12;
/// Record kind used by this test (0 is the reserved footer kind).
const KIND: u8 = 7;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picbench-store-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic corpus: two dozen records with varied key/value sizes
/// so cut points and bit flips land in every field of the frame.
fn corpus() -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..24u64)
        .map(|i| {
            let key = format!("key-{i:03}").into_bytes();
            let len = 16 + (picbench::store::xorshift64(i + 1) % 25) as usize;
            let value: Vec<u8> = (0..len)
                .map(|j| (picbench::store::xorshift64(i * 131 + j as u64 + 7) & 0xFF) as u8)
                .collect();
            (key, value)
        })
        .collect()
}

/// Writes the corpus through a real store and returns the pristine
/// segment bytes plus the byte offset where each record's frame *ends*
/// (the cut points at which that record is wholly on disk).
fn pristine_segment() -> (Vec<u8>, Vec<usize>) {
    let dir = temp_dir("pristine");
    let mut store = Store::open(&dir).expect("open");
    let mut ends = Vec::new();
    let mut offset = HEADER_LEN;
    for (key, value) in corpus() {
        store.put(KIND, &key, &value).expect("put");
        // frame = len u32 | kind u8 | key_len u32 | key | value | checksum u64
        offset += 4 + 1 + 4 + key.len() + value.len() + 8;
        ends.push(offset);
    }
    store.sync().expect("sync");
    drop(store);
    let bytes = std::fs::read(dir.join("seg-000000.picstore")).expect("read segment");
    assert_eq!(
        bytes.len(),
        *ends.last().unwrap(),
        "frame arithmetic drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, ends)
}

/// Stages one corrupted segment image in a fresh directory, reopens the
/// store over it, runs the caller's assertions, and cleans up. A fresh
/// directory per trial keeps quarantined segments from one trial out of
/// the next.
fn reopen(tag: &str, bytes: &[u8], check: impl FnOnce(&Store)) {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("seg-000000.picstore"), bytes).expect("stage segment");
    let store = Store::open(&dir).expect("recovery must absorb damage, not fail the open");
    check(&store);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_byte_recovers_the_intact_prefix() {
    let (pristine, ends) = pristine_segment();
    let corpus = corpus();

    for cut in 0..pristine.len() {
        reopen("cut", &pristine[..cut], |store| {
            let recovery = *store.recovery();

            if cut < HEADER_LEN {
                // Not even a header: the segment is quarantined whole.
                assert_eq!(recovery.corrupt_segments, 1, "cut {cut}: {recovery:?}");
                assert!(store.is_empty(), "cut {cut}: data from a headerless file");
                return;
            }
            // Exactly the records whose frames are wholly on disk
            // survive; the partial frame at the tail is classified as
            // torn.
            let survivors = ends.iter().filter(|&&end| end <= cut).count();
            let prev_boundary = ends
                .iter()
                .rev()
                .find(|&&end| end <= cut)
                .copied()
                .unwrap_or(HEADER_LEN);
            assert_eq!(
                recovery.records_recovered, survivors as u64,
                "cut {cut}: {recovery:?}"
            );
            assert_eq!(
                recovery.torn_tail_bytes,
                (cut - prev_boundary) as u64,
                "cut {cut}: {recovery:?}"
            );
            assert_eq!(recovery.records_quarantined, 0, "cut {cut}: {recovery:?}");
            for (i, (key, value)) in corpus.iter().enumerate() {
                let got = store.get(KIND, key);
                if i < survivors {
                    assert_eq!(got, Some(value.as_slice()), "cut {cut}: record {i} lost");
                } else {
                    assert_eq!(got, None, "cut {cut}: phantom record {i}");
                }
            }
        });
    }
}

#[test]
fn a_single_bit_flip_anywhere_is_absorbed_and_never_trusted() {
    let (pristine, _) = pristine_segment();
    let corpus = corpus();

    for pos in 0..pristine.len() {
        let mut image = pristine.clone();
        image[pos] ^= 1 << (pos % 8);
        reopen("flip", &image, |store| {
            // Whatever the flip hit — magic, version, a length prefix,
            // a key, a value, a checksum — recovery must notice.
            assert!(
                store.recovery().damaged(),
                "flip at byte {pos} went undetected: {:?}",
                store.recovery()
            );
            // The integrity contract: a damaged record recomputes
            // (reads as absent); it is never served with altered
            // contents.
            for (key, value) in &corpus {
                let got = store.get(KIND, key);
                assert!(
                    got.is_none() || got == Some(value.as_slice()),
                    "flip at byte {pos}: key {:?} served corrupted bytes",
                    String::from_utf8_lossy(key)
                );
            }
        });
    }
}

#[test]
fn an_implausible_length_prefix_abandons_framing_after_the_intact_prefix() {
    let (pristine, ends) = pristine_segment();
    let corpus = corpus();

    // Destroy the length prefix of a mid-segment record: everything
    // before it survives, everything after is classified as lost
    // framing (not silently mis-parsed).
    let victim = ends.len() / 2;
    let prefix_at = ends[victim - 1];
    let mut image = pristine.clone();
    image[prefix_at..prefix_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());

    reopen("framing", &image, |store| {
        let recovery = *store.recovery();
        assert_eq!(recovery.records_recovered, victim as u64, "{recovery:?}");
        assert_eq!(
            recovery.lost_framing_bytes,
            (pristine.len() - prefix_at) as u64,
            "{recovery:?}"
        );
        for (i, (key, value)) in corpus.iter().enumerate() {
            let got = store.get(KIND, key);
            if i < victim {
                assert_eq!(got, Some(value.as_slice()), "record {i} lost");
            } else {
                assert_eq!(got, None, "record {i} survived lost framing");
            }
        }
    });
}

#[test]
fn a_recovered_store_stays_writable_and_reopens_clean() {
    let (pristine, ends) = pristine_segment();
    let corpus = corpus();

    // Tear the tail mid-frame, recover, then write through the repaired
    // store: the truncation must re-establish a well-formed tail that
    // the next open reads back without complaint.
    let cut = ends[ends.len() - 2] + 3;
    let dir = temp_dir("rewrite");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("seg-000000.picstore"), &pristine[..cut]).expect("stage");
    {
        let mut store = Store::open(&dir).expect("recover");
        assert!(store.recovery().torn_tail_bytes > 0);
        store
            .put(KIND, b"after-crash", b"fresh value")
            .expect("put");
        store.sync().expect("sync");
    }
    let store = Store::open(&dir).expect("reopen");
    assert!(
        !store.recovery().damaged(),
        "repair left damage behind: {:?}",
        store.recovery()
    );
    assert_eq!(store.get(KIND, b"after-crash"), Some(&b"fresh value"[..]));
    for (key, value) in corpus.iter().take(ends.len() - 1) {
        assert_eq!(store.get(KIND, key), Some(value.as_slice()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
