//! Replays the checked-in regression corpus (`tests/corpus/*.json`)
//! through every differential axis and every physics oracle on every
//! `cargo test`.
//!
//! A corpus case is a circuit that the conformance harness once found
//! interesting — generator-seeded representatives of each structural
//! family plus hand-seeded edge topologies. Each must keep agreeing
//! across all configuration axes (backends, constant fold, parallelism,
//! cache, canonicalization, naive sweeps) and keep satisfying the
//! physics oracles forever; a solver or cache regression that breaks one
//! fails this test with the offending file named.
//!
//! Reproduce a failure by hand with:
//! `cargo run -p picbench-bench --bin conformance -- --replay tests/corpus/<case>.json`

use picbench::conformance::{check_circuit, load_corpus_dir, DiffRunner, OracleConfig};
use picbench::sim::{Backend, ModelRegistry};
use std::path::Path;

const MIN_CORPUS_SIZE: usize = 10;

#[test]
fn corpus_replays_clean_through_all_axes_and_oracles() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = load_corpus_dir(&dir).expect("corpus directory must load");
    assert!(
        cases.len() >= MIN_CORPUS_SIZE,
        "regression corpus shrank below {MIN_CORPUS_SIZE} cases ({} found) — \
         corpus files must not be deleted without a replacement",
        cases.len()
    );

    let registry = ModelRegistry::with_builtins();
    let oracle = OracleConfig::default();
    let mut failures = Vec::new();
    for (path, case) in &cases {
        let runner = DiffRunner::new(case.grid);
        if let Err(disagreement) = runner.check(&case.netlist) {
            failures.push(format!("{}: {disagreement}", path.display()));
        }
        for backend in Backend::ALL {
            for violation in check_circuit(&case.gen_circuit(), &registry, backend, &oracle) {
                failures.push(format!("{}: {backend}: {violation}", path.display()));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_cases_round_trip_and_stay_structurally_valid() {
    use picbench::conformance::CorpusCase;
    use picbench::sim::Circuit;

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let registry = ModelRegistry::with_builtins();
    for (path, case) in load_corpus_dir(&dir).expect("corpus directory must load") {
        // The stored document round-trips exactly through the corpus
        // serializer, so failures can be re-saved without churn.
        let reparsed = CorpusCase::from_json_str(&case.to_json_string())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(reparsed, case, "{}", path.display());
        // And the embedded netlist still elaborates.
        Circuit::elaborate(&case.netlist, &registry, None)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}
