//! End-to-end error-classification coverage: every corruption operator,
//! staged on every benchmark problem it applies to, must be caught by the
//! evaluation pipeline *and* classified into its intended Table II
//! category.
//!
//! This is the integration contract between `picbench-synthllm` (which
//! manufactures realistic mistakes) and `picbench-core` (which must
//! recognize them): if either side drifts, the feedback loop would start
//! sending wrong categories to the models.

use picbench::core::Evaluator;
use picbench::netlist::{FailureType, Netlist};
use picbench::synthllm::{
    corrupt::{sample_functional_corruption, sample_syntax_corruption},
    Corruption,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn render(netlist: &Netlist, corruption: &Corruption) -> String {
    let mut belief = netlist.clone();
    corruption.apply(&mut belief);
    let mut json = belief.to_json_string();
    json = corruption.apply_text(&json);
    format!("<analysis>\ntest\n</analysis>\n<result>\n{json}\n</result>")
}

#[test]
fn every_syntax_corruption_is_caught_and_classified() {
    let problems = picbench::problems::suite();
    let mut evaluator = Evaluator::default();
    let mut staged = 0usize;
    let mut skipped = 0usize;

    for problem in &problems {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ problem.id.len() as u64);
        for category in FailureType::ALL {
            let Some(corruption) = sample_syntax_corruption(&problem.golden, category, &mut rng)
            else {
                // Not stageable on this design (e.g. no swappable models
                // entry) — legitimate.
                skipped += 1;
                continue;
            };
            staged += 1;
            let response = render(&problem.golden, &corruption);
            let report = evaluator.evaluate_response(problem, &response);
            assert!(
                !report.syntax_pass(),
                "{}: {category:?} corruption went undetected",
                problem.id
            );
            let classified: Vec<FailureType> = report.issues().iter().map(|i| i.failure).collect();
            assert!(
                classified.contains(&category),
                "{}: {category:?} corruption misclassified as {classified:?}",
                problem.id
            );
        }
    }
    // The suite must exercise the overwhelming majority of combinations.
    assert!(
        staged >= 220,
        "too few staged corruptions: {staged} (skipped {skipped})"
    );
}

#[test]
fn every_functional_corruption_fails_functionality_but_not_syntax() {
    let problems = picbench::problems::suite();
    let mut evaluator = Evaluator::default();

    for problem in &problems {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ problem.id.len() as u64);
        let mut detected = 0usize;
        for _attempt in 0..8 {
            let Some(corruption) = sample_functional_corruption(&problem.golden, &mut rng) else {
                panic!("{}: no functional corruption available", problem.id);
            };
            assert!(corruption.is_functional());
            let response = render(&problem.golden, &corruption);
            let report = evaluator.evaluate_response(problem, &response);
            assert!(
                report.syntax_pass(),
                "{}: functional corruption {corruption:?} broke syntax: {:?}",
                problem.id,
                report.issues()
            );
            match report.functional {
                Some(false) => detected += 1,
                Some(true) => {
                    // A tweak can be genuinely unobservable — e.g. flipping
                    // a switch cell that carries no light. The
                    // simulation-based check rightly accepts such designs,
                    // but only if the responses are *identical*.
                    let cmp = report.comparison.expect("compared");
                    assert!(
                        cmp.max_power_diff <= picbench::core::DEFAULT_FUNCTIONAL_TOLERANCE,
                        "{}: accepted corruption {corruption:?} with diff {cmp:?}",
                        problem.id
                    );
                }
                None => unreachable!("syntax passed"),
            }
        }
        // Fabrics with many dark elements (e.g. Spanke trees under
        // identity routing) shrug off most local tweaks; every problem
        // must still expose *some* observable functional corruption.
        assert!(
            detected >= 2,
            "{}: only {detected}/8 functional corruptions were observable",
            problem.id
        );
    }
}

#[test]
fn clean_golden_renders_pass_everywhere() {
    let problems = picbench::problems::suite();
    let mut evaluator = Evaluator::default();
    for problem in &problems {
        let response = format!(
            "<analysis>\nreference\n</analysis>\n<result>\n{}\n</result>",
            problem.golden.to_json_string()
        );
        let report = evaluator.evaluate_response(problem, &response);
        assert!(
            report.functional_pass(),
            "{}: golden failed ({:?})",
            problem.id,
            report.issues()
        );
    }
}
