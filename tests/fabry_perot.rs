//! Multiple-reflection physics validation: a Fabry-Perot cavity (two
//! partial mirrors around a waveguide) simulated by both composition
//! backends must reproduce the analytic Airy transmission
//!
//! ```text
//! T(λ) = t⁴ / |1 − R·e^{2iφ(λ)}|²,   φ = 2π·n_eff(λ)·L/λ
//! ```
//!
//! This is the workload the paper's netlists never build (their circuits
//! are feed-forward), so it is the sharpest test that the interconnect
//! algebra — not just cascade multiplication — is implemented correctly.

use picbench::netlist::NetlistBuilder;
use picbench::sim::{evaluate, Backend, Circuit, ModelRegistry};
use picbench::sparams::models::{effective_index, DEFAULT_NEFF, DEFAULT_NG, DEFAULT_WL0_UM};

fn cavity_netlist(reflectivity: f64, length_um: f64) -> picbench::netlist::Netlist {
    NetlistBuilder::new()
        .instance_with("mirrorIn", "reflector", &[("reflectivity", reflectivity)])
        .instance_with("mirrorOut", "reflector", &[("reflectivity", reflectivity)])
        .instance_with(
            "cavity",
            "waveguide",
            &[("length", length_um), ("loss", 0.0)],
        )
        .connect("mirrorIn,O1", "cavity,I1")
        .connect("cavity,O1", "mirrorOut,I1")
        .port("I1", "mirrorIn,I1")
        .port("O1", "mirrorOut,O1")
        .model("reflector", "reflector")
        .model("waveguide", "waveguide")
        .build()
}

fn airy_transmission(reflectivity: f64, length_um: f64, wl: f64) -> f64 {
    let t_sq = 1.0 - reflectivity;
    let neff = effective_index(wl, DEFAULT_NEFF, DEFAULT_NG, DEFAULT_WL0_UM);
    let phi = 2.0 * std::f64::consts::PI * neff * length_um / wl;
    // |1 − R e^{2iφ}|² = 1 − 2R cos 2φ + R².
    let denom = 1.0 - 2.0 * reflectivity * (2.0 * phi).cos() + reflectivity * reflectivity;
    t_sq * t_sq / denom
}

#[test]
fn cavity_matches_airy_formula_on_both_backends() {
    let registry = ModelRegistry::with_builtins();
    for (reflectivity, length) in [(0.5, 25.0), (0.9, 40.0), (0.3, 10.0)] {
        let netlist = cavity_netlist(reflectivity, length);
        let circuit = Circuit::elaborate(&netlist, &registry, None).unwrap();
        let mut wl = 1.51;
        while wl <= 1.59 {
            let expected = airy_transmission(reflectivity, length, wl);
            for backend in [Backend::PortElimination, Backend::Dense] {
                let s = evaluate(&circuit, wl, backend).unwrap();
                let got = s.s("I1", "O1").unwrap().norm_sqr();
                assert!(
                    (got - expected).abs() < 1e-9,
                    "R={reflectivity} L={length} wl={wl} {backend}: {got} vs Airy {expected}"
                );
            }
            wl += 0.003;
        }
    }
}

#[test]
fn cavity_resonances_reach_unity_transmission() {
    // On resonance a lossless symmetric Fabry-Perot transmits fully even
    // with highly reflective mirrors — only multiple-pass interference
    // can produce this.
    let registry = ModelRegistry::with_builtins();
    let netlist = cavity_netlist(0.9, 40.0);
    let circuit = Circuit::elaborate(&netlist, &registry, None).unwrap();
    let mut best: f64 = 0.0;
    let mut worst: f64 = 1.0;
    let mut wl = 1.54;
    while wl <= 1.56 {
        let s = evaluate(&circuit, wl, Backend::default()).unwrap();
        let t = s.s("I1", "O1").unwrap().norm_sqr();
        best = best.max(t);
        worst = worst.min(t);
        wl += 0.00001;
    }
    assert!(best > 0.999, "resonant peak should reach unity, got {best}");
    assert!(
        worst < 0.01,
        "off-resonance transmission of an R=0.9 cavity should be tiny, got {worst}"
    );
}

#[test]
fn cavity_reflection_conserves_energy() {
    let registry = ModelRegistry::with_builtins();
    let netlist = cavity_netlist(0.7, 30.0);
    let circuit = Circuit::elaborate(&netlist, &registry, None).unwrap();
    for wl in [1.51, 1.53, 1.551, 1.572, 1.59] {
        let s = evaluate(&circuit, wl, Backend::default()).unwrap();
        let t = s.s("I1", "O1").unwrap().norm_sqr();
        let r = s.s("I1", "I1").unwrap().norm_sqr();
        assert!(
            (t + r - 1.0).abs() < 1e-9,
            "lossless cavity must conserve energy at {wl}: T={t} R={r}"
        );
    }
}
