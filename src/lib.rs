//! # picbench
//!
//! Umbrella crate for **PICBench-rs**, a Rust reproduction of
//! *PICBench: Benchmarking LLMs for Photonic Integrated Circuits Design*
//! (DATE 2025). It re-exports the individual subsystem crates:
//!
//! * [`math`] — complex linear algebra and unitary-to-mesh decompositions
//! * [`sparams`] — photonic component S-parameter models
//! * [`netlist`] — JSON netlist schema, parser and Table-II validator
//! * [`sim`] — the frequency-domain circuit simulator (SAX equivalent)
//! * [`problems`] — the 24 benchmark design problems with golden designs
//! * [`prompt`] — system/feedback prompt construction
//! * [`synthllm`] — calibrated synthetic language models
//! * [`core`] — the evaluation framework (syntax/functional checks, error
//!   classification, feedback loop, Pass@k, campaigns)
//! * [`store`] — the crash-safe append-only persistent store under the
//!   evaluation cache and the campaign journal
//! * [`conformance`] — the verification backbone: seeded circuit
//!   generation, physics oracles and cross-configuration differential
//!   fuzzing with counterexample shrinking
//! * [`server`] — benchmark-as-a-service: a dependency-free HTTP
//!   server streaming multi-tenant campaign sessions over a shared
//!   evaluation cache
//!
//! See the repository README for a walkthrough and `DESIGN.md` for the
//! paper-to-code mapping.

pub use picbench_conformance as conformance;
pub use picbench_core as core;
pub use picbench_math as math;
pub use picbench_netlist as netlist;
pub use picbench_problems as problems;
pub use picbench_prompt as prompt;
pub use picbench_server as server;
pub use picbench_sim as sim;
pub use picbench_sparams as sparams;
pub use picbench_store as store;
pub use picbench_synthllm as synthllm;
