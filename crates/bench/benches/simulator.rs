//! Criterion benches for the S-parameter simulator: backend comparison
//! (the DESIGN.md ablation), mesh-size scaling and full-band sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use picbench_math::{decomp, MeshScheme};
use picbench_problems::meshes::mesh_netlist;
use picbench_sim::{
    evaluate, sweep, sweep_naive, sweep_serial, Backend, Circuit, ModelRegistry, SweepPlan,
    WavelengthGrid,
};

fn backend_comparison(c: &mut Criterion) {
    let registry = ModelRegistry::with_builtins();
    let mut group = c.benchmark_group("backend");
    for id in ["mzi-ps", "benes-8x8", "clements-8x8"] {
        let problem = picbench_problems::find(id).expect("problem exists");
        let circuit = Circuit::elaborate(&problem.golden, &registry, None).unwrap();
        for backend in Backend::ALL {
            group.bench_with_input(
                BenchmarkId::new(backend.to_string(), id),
                &circuit,
                |b, circuit| {
                    b.iter(|| evaluate(circuit, 1.55, backend).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn mesh_scaling(c: &mut Criterion) {
    let registry = ModelRegistry::with_builtins();
    let mut group = c.benchmark_group("mesh-scaling");
    for n in [2usize, 4, 6, 8] {
        let target = decomp::dft_matrix(n);
        let mesh = decomp::clements_decompose(&target).unwrap();
        let netlist = mesh_netlist(&mesh);
        let circuit = Circuit::elaborate(&netlist, &registry, None).unwrap();
        group.bench_with_input(BenchmarkId::new("clements", n), &circuit, |b, circuit| {
            b.iter(|| evaluate(circuit, 1.55, Backend::default()).unwrap());
        });
    }
    group.finish();
}

fn full_band_sweep(c: &mut Criterion) {
    let registry = ModelRegistry::with_builtins();
    let problem = picbench_problems::find("wdm-demux").expect("problem exists");
    let circuit = Circuit::elaborate(&problem.golden, &registry, None).unwrap();
    let mut group = c.benchmark_group("sweep");
    for (name, grid) in [
        ("paper-fast-17pt", WavelengthGrid::paper_fast()),
        ("paper-default-81pt", WavelengthGrid::paper_default()),
    ] {
        group.bench_with_input(BenchmarkId::new("wdm-demux", name), &grid, |b, grid| {
            b.iter(|| sweep(&circuit, grid, Backend::default()).unwrap());
        });
    }
    group.finish();
}

/// The tentpole ablation: naive per-point rebuild vs the plan/execute
/// pipeline on the 64-point × 16-port reference mesh (see `sweep_bench`
/// for the committed `BENCH_pipeline.json` numbers).
fn plan_vs_naive_sweep(c: &mut Criterion) {
    let registry = ModelRegistry::with_builtins();
    let target = decomp::dft_matrix(8);
    let mesh = decomp::clements_decompose(&target).unwrap();
    let netlist = mesh_netlist(&mesh);
    let circuit = Circuit::elaborate(&netlist, &registry, None).unwrap();
    let grid = WavelengthGrid::new(1.51, 1.59, 64);
    let mut group = c.benchmark_group("sweep-pipeline");
    group.sample_size(10);
    for backend in Backend::ALL {
        group.bench_with_input(
            BenchmarkId::new("naive", backend.to_string()),
            &grid,
            |b, grid| {
                b.iter(|| sweep_naive(&circuit, grid, backend).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("plan", backend.to_string()),
            &grid,
            |b, grid| {
                b.iter(|| sweep_serial(&circuit, grid, backend).unwrap());
            },
        );
        // Plan construction alone, to show it amortizes after one point.
        group.bench_with_input(
            BenchmarkId::new("plan-build", backend.to_string()),
            &circuit,
            |b, circuit| {
                b.iter(|| SweepPlan::new(circuit, backend).unwrap());
            },
        );
    }
    group.finish();
}

fn decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for n in [4usize, 8, 16] {
        let target = decomp::dft_matrix(n);
        for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
            group.bench_with_input(
                BenchmarkId::new(scheme.to_string(), n),
                &target,
                |b, target| {
                    b.iter(|| decomp::decompose(target, scheme).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    backend_comparison,
    mesh_scaling,
    full_band_sweep,
    plan_vs_naive_sweep,
    decomposition
);
criterion_main!(benches);
