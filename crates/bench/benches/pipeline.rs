//! Criterion benches for the evaluation pipeline: JSON parsing, netlist
//! validation, response evaluation (pass and fail paths) and Pass@k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use picbench_core::{pass_at_k, Evaluator};
use picbench_netlist::{json, validate, Netlist, PortRef};
use picbench_sim::ModelRegistry;

fn json_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("json");
    for id in ["mzi-ps", "spanke-8x8"] {
        let problem = picbench_problems::find(id).expect("problem exists");
        let text = problem.golden.to_json_string();
        group.bench_with_input(
            BenchmarkId::new("parse", format!("{id}-{}B", text.len())),
            &text,
            |b, text| {
                b.iter(|| json::parse(text).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("netlist", id), &text, |b, text| {
            b.iter(|| Netlist::from_json_str(text).unwrap());
        });
    }
    group.finish();
}

fn validation(c: &mut Criterion) {
    let registry = ModelRegistry::with_builtins();
    let mut group = c.benchmark_group("validate");
    for id in ["mzi-ps", "clements-8x8", "spanke-8x8"] {
        let problem = picbench_problems::find(id).expect("problem exists");
        group.bench_with_input(
            BenchmarkId::new("table-ii-rules", id),
            &problem,
            |b, problem| {
                b.iter(|| validate(&problem.golden, &registry, Some(&problem.spec)));
            },
        );
    }
    group.finish();
}

fn response_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate-response");
    group.sample_size(20);
    let problem = picbench_problems::find("mzi-ps").expect("problem exists");

    // Pass path: full simulation + golden comparison.
    let pass_text = format!("<result>\n{}\n</result>", problem.golden.to_json_string());
    group.bench_function("mzi-ps-pass", |b| {
        let mut evaluator = Evaluator::default();
        evaluator.golden_response(&problem); // warm the cache
        b.iter(|| {
            let report = evaluator.evaluate_response(&problem, &pass_text);
            assert!(report.functional_pass());
        });
    });

    // Fail path: validation short-circuits before simulation.
    let mut broken = problem.golden.clone();
    broken.connections[1].b = PortRef::new("mmi2", "I2");
    let fail_text = format!("<result>\n{}\n</result>", broken.to_json_string());
    group.bench_function("mzi-ps-wrong-port", |b| {
        let mut evaluator = Evaluator::default();
        evaluator.golden_response(&problem);
        b.iter(|| {
            let report = evaluator.evaluate_response(&problem, &fail_text);
            assert!(!report.syntax_pass());
        });
    });
    group.finish();
}

fn pass_at_k_bench(c: &mut Criterion) {
    c.bench_function("pass-at-k-sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..=50usize {
                for c in 0..=n {
                    acc += pass_at_k(n, c, 1.max(n / 2));
                }
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    json_parsing,
    validation,
    response_evaluation,
    pass_at_k_bench
);
criterion_main!(benches);
