//! `conformance` — the generative conformance gate.
//!
//! Generates `--cases` seeded circuits across the structural families,
//! sweeps each through every configured differential axis (backends,
//! constant fold, parallelism, cache, canonicalization, naive sweep,
//! SIMD-vs-scalar dispatch) and
//! the physics oracles (reciprocity, passivity, unitarity for lossless
//! mixes, wavelength continuity), shrinks any failure to a minimal
//! counterexample and writes it as a replayable corpus case.
//!
//! Exit status is non-zero on any disagreement or oracle violation, so
//! the binary doubles as the CI tripwire for every future solver or
//! cache change.
//!
//! Usage:
//!
//! ```text
//! conformance [--cases N] [--seed S] [--axes a,b,..] [--families f,g,..]
//!             [--grid-points P] [--oracle-backends all|port-elimination|dense|block-sparse]
//!             [--no-shrink] [--failures-dir DIR] [--replay FILE]
//!             [--emit-corpus DIR] [--out PATH]
//! ```
//!
//! `--replay FILE` re-checks one corpus case (or a directory of them)
//! instead of generating new circuits — the hand tool for reproducing a
//! shrunk failure from a checked-in JSON document. `--axes` and
//! `--oracle-backends` narrow the replay the same way they narrow a
//! sweep (both default to everything).
//!
//! `--emit-corpus DIR` writes `--cases` verified-conformant cases *per
//! enabled family* into `DIR` — how the checked-in seed corpus under
//! `tests/corpus/` was produced.

use picbench_conformance::{
    check_circuit, load_corpus_dir, run_conformance, ConformanceConfig, CorpusCase, DiffAxis,
    DiffRunner, Family,
};
use picbench_sim::{Backend, ModelRegistry, WavelengthGrid};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: conformance [--cases N] [--seed S] [--axes a,b,..] \
                 [--families f,g,..] [--grid-points P] \
                 [--oracle-backends all|port-elimination|dense|block-sparse] [--no-shrink] \
                 [--failures-dir DIR] [--replay FILE] [--emit-corpus DIR] [--out PATH]";
    let mut config = ConformanceConfig {
        cases: 64,
        ..ConformanceConfig::default()
    };
    let mut grid_points = 7usize;
    let mut out_path: Option<String> = None;
    let mut failures_dir: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut emit_corpus: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let fail = |msg: &str| -> ! {
            eprintln!("{msg}; {usage}");
            std::process::exit(2);
        };
        match args[i].as_str() {
            "--cases" => {
                i += 1;
                config.cases = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--cases needs a positive integer"));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--seed needs an integer"));
            }
            "--axes" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| fail("--axes needs a list"));
                config.axes = list
                    .split(',')
                    .map(|token| {
                        token
                            .trim()
                            .parse::<DiffAxis>()
                            .unwrap_or_else(|e| fail(&e))
                    })
                    .collect();
            }
            "--families" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| fail("--families needs a list"));
                config.generator.families = list
                    .split(',')
                    .map(|token| token.trim().parse::<Family>().unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--grid-points" => {
                i += 1;
                grid_points = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 2)
                    .unwrap_or_else(|| fail("--grid-points needs an integer >= 2"));
            }
            "--oracle-backends" => {
                i += 1;
                config.oracle_backends = match args.get(i).map(String::as_str) {
                    // `both` predates the third backend; kept as an
                    // alias so existing invocations keep covering
                    // everything.
                    Some("all" | "both") => Backend::ALL.to_vec(),
                    Some(token) => vec![token.parse::<Backend>().unwrap_or_else(|e| {
                        fail(&format!("--oracle-backends: {e} (or use `all`)"))
                    })],
                    None => fail("--oracle-backends needs all|port-elimination|dense|block-sparse"),
                };
            }
            "--no-shrink" => config.shrink = false,
            "--failures-dir" => {
                i += 1;
                failures_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| fail("--failures-dir needs a path")),
                ));
            }
            "--replay" => {
                i += 1;
                replay = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| fail("--replay needs a path")),
                ));
            }
            "--emit-corpus" => {
                i += 1;
                emit_corpus = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| fail("--emit-corpus needs a path")),
                ));
            }
            "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| fail("--out needs a path")),
                );
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    config.grid = WavelengthGrid::new(1.51, 1.59, grid_points);

    if let Some(path) = replay {
        std::process::exit(replay_cases(&path, &config));
    }
    if let Some(dir) = emit_corpus {
        std::process::exit(emit_corpus_cases(&dir, &config));
    }

    let start = Instant::now();
    let report = run_conformance(&config);
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "conformance: {} cases, seed {}, grid {} pts, axes [{}]",
        report.cases,
        config.seed,
        config.grid.points,
        join_tokens(report.axes.iter().map(DiffAxis::token)),
    );
    for (family, count) in &report.family_counts {
        if *count > 0 {
            println!("  {:<20} {count}", family.token());
        }
    }
    println!(
        "  result: {} failure(s) in {elapsed:.1}s",
        report.failures.len()
    );

    for failure in &report.failures {
        eprintln!(
            "FAIL case {} ({}): {}",
            failure.case_index, failure.family, failure.kind
        );
        let case = failure.to_corpus_case(config.seed, config.grid);
        if let Some(dir) = &failures_dir {
            std::fs::create_dir_all(dir).expect("create failures dir");
            let path = dir.join(format!("{}.json", case.name));
            std::fs::write(&path, case.to_json_string()).expect("write failure case");
            eprintln!("  shrunk counterexample written to {}", path.display());
        } else {
            eprintln!("  shrunk counterexample:\n{}", case.to_json_string());
        }
    }

    if let Some(path) = out_path {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"cases\": {},", report.cases);
        let _ = writeln!(json, "  \"seed\": {},", config.seed);
        let _ = writeln!(json, "  \"grid_points\": {},", config.grid.points);
        let _ = writeln!(json, "  \"failures\": {},", report.failures.len());
        let _ = writeln!(
            json,
            "  \"axes\": [{}],",
            join_tokens(report.axes.iter().map(|a| format!("\"{a}\"")))
        );
        let _ = writeln!(json, "  \"elapsed_s\": {elapsed:.3}");
        json.push('}');
        std::fs::write(&path, json).expect("write report");
        println!("  report written to {path}");
    }

    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

/// Replays one corpus file, or every `*.json` case in a directory.
fn replay_cases(path: &Path, config: &ConformanceConfig) -> i32 {
    let cases: Vec<(PathBuf, CorpusCase)> = if path.is_dir() {
        load_corpus_dir(path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    } else {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
        let case = CorpusCase::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
        vec![(path.to_path_buf(), case)]
    };

    let registry = ModelRegistry::with_builtins();
    let mut failed = 0;
    for (file, case) in &cases {
        let runner = DiffRunner::new(case.grid).with_axes(config.axes.iter().copied());
        let diff = runner.check(&case.netlist).err();
        let violations: Vec<String> = config
            .oracle_backends
            .iter()
            .flat_map(|&backend| {
                check_circuit(&case.gen_circuit(), &registry, backend, &config.oracle)
                    .into_iter()
                    .map(move |v| format!("{backend}: {v}"))
            })
            .collect();
        if diff.is_none() && violations.is_empty() {
            println!("ok   {} ({})", case.name, file.display());
        } else {
            failed += 1;
            eprintln!("FAIL {} ({})", case.name, file.display());
            if let Some(d) = diff {
                eprintln!("  {d}");
            }
            for v in violations {
                eprintln!("  {v}");
            }
        }
    }
    println!("replayed {} case(s), {failed} failing", cases.len());
    i32::from(failed > 0)
}

/// Emits `config.cases` verified-conformant seed cases per enabled
/// family into `dir`. Every case is checked through all axes and both
/// backends' oracles before it is written, so the corpus starts green.
fn emit_corpus_cases(dir: &Path, config: &ConformanceConfig) -> i32 {
    use picbench_conformance::{CircuitStrategy, GeneratorConfig};

    std::fs::create_dir_all(dir).expect("create corpus dir");
    let registry = ModelRegistry::with_builtins();
    let runner = DiffRunner::new(config.grid);
    let mut written = 0;
    for &family in &config.generator.families {
        // Smaller caps than the fuzzing sweep: corpus files should stay
        // reviewable by hand.
        let strategy = CircuitStrategy::new(GeneratorConfig {
            families: vec![family],
            max_stages: 2,
            max_modes: 4,
            ..GeneratorConfig::default()
        });
        for (k, gen) in strategy
            .sample(config.seed, config.cases)
            .into_iter()
            .enumerate()
        {
            if runner.check(&gen.netlist).is_err() {
                eprintln!("refusing to emit a disagreeing case ({family} #{k})");
                return 1;
            }
            for backend in Backend::ALL {
                let violations = check_circuit(&gen, &registry, backend, &config.oracle);
                if !violations.is_empty() {
                    eprintln!("refusing to emit an oracle-violating case ({family} #{k})");
                    return 1;
                }
            }
            let case = CorpusCase {
                name: format!("{family}-{k:02}"),
                seed: config.seed,
                family: Some(family),
                lossless: gen.lossless,
                grid: config.grid,
                note: format!(
                    "seed corpus: generated from seed {} (case {k} of family {family}), \
                     verified conformant on all axes and every backend at emit time",
                    config.seed
                ),
                netlist: gen.netlist,
            };
            let path = dir.join(format!("{}.json", case.name));
            std::fs::write(&path, case.to_json_string()).expect("write corpus case");
            println!("wrote {}", path.display());
            written += 1;
        }
    }
    println!("emitted {written} corpus case(s)");
    0
}

fn join_tokens<T: AsRef<str>>(tokens: impl Iterator<Item = T>) -> String {
    tokens
        .map(|t| t.as_ref().to_string())
        .collect::<Vec<_>>()
        .join(", ")
}
