//! `load_bench` — load generator for the benchmark service, written to
//! `BENCH_server.json`.
//!
//! Boots an in-process [`PicbenchServer`] on an ephemeral port and
//! drives it through the real HTTP client in two phases:
//!
//! 1. **ceiling** — N clients submit *paced* campaigns, open their
//!    event streams, rendezvous on a barrier once every stream is open,
//!    and drain to completion. Because the campaigns are still running
//!    at the rendezvous, all N streams are provably concurrent and the
//!    server's `peak_streams` gauge records the ceiling.
//! 2. **throughput** — the same clients run several rounds of unpaced
//!    submit → stream → complete sessions, spread across tenants
//!    against the one shared evaluation cache. Wall-clock per session
//!    gives p50/p99 latency; total sessions over total wall clock gives
//!    sessions/sec. Identical submissions mean later sessions are
//!    served almost entirely from cache warmed by *other* tenants —
//!    the cross-tenant hit rate lands in the JSON.
//!
//! Usage: `cargo run --release -p picbench-bench --bin load_bench --
//! [--clients N] [--rounds N] [--tenants N] [--pace-ms MS]
//! [--min-concurrent N] [--min-throughput X] [--out PATH]`
//!
//! `--min-concurrent N` exits non-zero unless the measured concurrent
//! streaming ceiling reaches N; `--min-throughput X` exits non-zero
//! below X sessions/sec. CI runs both as tripwires.

use picbench_server::client::ApiClient;
use picbench_server::server::{PicbenchServer, ServerConfig};
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Args {
    clients: usize,
    rounds: usize,
    tenants: usize,
    pace_ms: u64,
    min_concurrent: Option<usize>,
    min_throughput: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let usage = "usage: load_bench [--clients N] [--rounds N] [--tenants N] [--pace-ms MS] \
                 [--min-concurrent N] [--min-throughput X] [--out PATH]";
    let mut args = Args {
        clients: 8,
        rounds: 4,
        tenants: 4,
        pace_ms: 100,
        min_concurrent: None,
        min_throughput: None,
        out: "BENCH_server.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let numeric = |flag: &str, value: Option<&String>| -> usize {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a non-negative integer; {usage}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--clients" => {
                i += 1;
                args.clients = numeric("--clients", argv.get(i)).max(1);
            }
            "--rounds" => {
                i += 1;
                args.rounds = numeric("--rounds", argv.get(i)).max(1);
            }
            "--tenants" => {
                i += 1;
                args.tenants = numeric("--tenants", argv.get(i)).max(1);
            }
            "--pace-ms" => {
                i += 1;
                args.pace_ms = numeric("--pace-ms", argv.get(i)) as u64;
            }
            "--min-concurrent" => {
                i += 1;
                args.min_concurrent = Some(numeric("--min-concurrent", argv.get(i)));
            }
            "--min-throughput" => {
                i += 1;
                args.min_throughput =
                    Some(argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--min-throughput needs a number; {usage}");
                        std::process::exit(2);
                    }));
            }
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path; {usage}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn campaign_body(pace_ms: u64) -> String {
    format!(
        r#"{{"problems": ["mzi-ps", "mzm"], "models": ["GPT-4"], "samples_per_problem": 4,
            "k_values": [1], "feedback_iters": [0, 1], "seed": 99, "restrictions": false,
            "pace_ms": {pace_ms}}}"#
    )
}

fn run_session(client: &ApiClient, body: &str) -> f64 {
    let t = Instant::now();
    let response = client
        .request("POST", "/v1/campaigns", Some(body))
        .expect("submit campaign");
    assert_eq!(response.status, 201, "submit failed: {}", response.body);
    let id = response
        .json()
        .expect("submit response is JSON")
        .get("id")
        .and_then(|v| v.as_str().map(String::from))
        .expect("campaign id");
    let stream = client
        .open_stream(&format!("/v1/campaigns/{id}/events"))
        .expect("open event stream");
    assert_eq!(stream.status, 200);
    let lines = stream.collect_lines().expect("drain event stream");
    assert!(!lines.is_empty(), "stream carried no events");
    t.elapsed().as_secs_f64() * 1e3
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let args = parse_args();
    let server = PicbenchServer::start(ServerConfig {
        workers: args.clients * 2 + 8,
        max_sessions: args.clients * 2 + 8,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    println!(
        "load_bench: {} clients x {} rounds over {} tenants against {addr}",
        args.clients, args.rounds, args.tenants
    );

    // Phase 1: the concurrent-streaming ceiling. Paced campaigns stay
    // alive while every client opens its stream; the barrier after the
    // open proves all streams were concurrently active.
    let barrier = Arc::new(Barrier::new(args.clients));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..args.clients {
            let barrier = Arc::clone(&barrier);
            let body = campaign_body(args.pace_ms);
            let tenant = format!("tenant-{}", client_idx % args.tenants);
            scope.spawn(move || {
                let client = ApiClient::new(addr).with_tenant(tenant);
                let response = client
                    .request("POST", "/v1/campaigns", Some(&body))
                    .expect("submit paced campaign");
                assert_eq!(response.status, 201, "submit failed: {}", response.body);
                let id = response
                    .json()
                    .unwrap()
                    .get("id")
                    .and_then(|v| v.as_str().map(String::from))
                    .unwrap();
                let stream = client
                    .open_stream(&format!("/v1/campaigns/{id}/events"))
                    .expect("open event stream");
                assert_eq!(stream.status, 200);
                barrier.wait();
                stream.collect_lines().expect("drain paced stream");
            });
        }
    });
    let ceiling_ms = t.elapsed().as_secs_f64() * 1e3;

    // Phase 2: throughput. Unpaced sessions, identical submissions, so
    // the shared cache (warmed across tenants in phase 1) serves most
    // of the work.
    let t = Instant::now();
    let (mut latencies, transport_retries): (Vec<f64>, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client_idx| {
                let body = campaign_body(0);
                let tenant = format!("tenant-{}", client_idx % args.tenants);
                let rounds = args.rounds;
                scope.spawn(move || {
                    let client = ApiClient::new(addr).with_tenant(tenant);
                    let latencies: Vec<f64> =
                        (0..rounds).map(|_| run_session(&client, &body)).collect();
                    (latencies, client.retries())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((Vec::new(), 0u64), |(mut all, retries), (latencies, r)| {
                all.extend(latencies);
                (all, retries + r)
            })
    });
    let wall_s = t.elapsed().as_secs_f64();
    let sessions = latencies.len();
    let sessions_per_sec = sessions as f64 / wall_s;
    latencies.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    let stats = ApiClient::new(addr)
        .request("GET", "/v1/stats", None)
        .expect("stats")
        .json()
        .expect("stats JSON");
    let counter = |path: &[&str]| -> f64 {
        let mut v = stats.clone();
        for key in path {
            v = v
                .get(key)
                .cloned()
                .unwrap_or_else(|| panic!("missing {key}"));
        }
        v.as_f64().unwrap_or(0.0)
    };
    let peak_streams = counter(&["sessions", "peak_streams"]) as usize;
    let finished = counter(&["sessions", "finished"]) as usize;
    let hits = counter(&["cache", "response_hits"])
        + counter(&["cache", "report_hits"])
        + counter(&["cache", "sim_hits"])
        + counter(&["cache", "disk_hits"]);
    let misses = counter(&["cache", "misses"]);
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    server.shutdown();

    println!(
        "ceiling: {} concurrent streaming sessions (drained in {ceiling_ms:.0} ms)",
        peak_streams
    );
    println!(
        "throughput: {sessions} sessions in {wall_s:.2} s = {sessions_per_sec:.1} sessions/s, \
         p50 {p50:.1} ms, p99 {p99:.1} ms, {transport_retries} transient-failure \
         retries absorbed by clients"
    );
    println!(
        "shared cache across {} tenants: {:.1}% of lookups served without a sweep \
         ({} sessions finished)",
        args.tenants,
        100.0 * hit_rate,
        finished,
    );

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"picbench-server streaming sessions\",\n  \
         \"workload\": {{\n    \"clients\": {},\n    \"rounds\": {},\n    \
         \"tenants\": {},\n    \"pace_ms\": {},\n    \
         \"submission\": \"2 problems x 1 model x 2 feedback settings x 4 samples\"\n  }},\n  \
         \"host_cpus\": {cpus},\n  \"results\": {{\n    \
         \"concurrent_streaming_ceiling\": {peak_streams},\n    \
         \"sessions\": {sessions},\n    \
         \"sessions_per_sec\": {sessions_per_sec:.2},\n    \
         \"latency_p50_ms\": {p50:.1},\n    \"latency_p99_ms\": {p99:.1},\n    \
         \"transport_retries\": {transport_retries},\n    \
         \"cross_tenant_cache_hit_rate\": {hit_rate:.4}\n  }},\n  \
         \"generated_by\": \"cargo run --release -p picbench-bench --bin load_bench\"\n}}\n",
        args.clients, args.rounds, args.tenants, args.pace_ms,
    );
    std::fs::write(&args.out, json).expect("write benchmark report");
    println!("wrote {}", args.out);

    let mut failed = false;
    if let Some(min) = args.min_concurrent {
        if peak_streams < min {
            eprintln!("FAIL: concurrent streaming ceiling {peak_streams} below required {min}");
            failed = true;
        } else {
            println!("concurrency gate passed: {peak_streams} >= {min}");
        }
    }
    if let Some(min) = args.min_throughput {
        if sessions_per_sec < min {
            eprintln!("FAIL: throughput {sessions_per_sec:.2} sessions/s below required {min:.2}");
            failed = true;
        } else {
            println!("throughput gate passed: {sessions_per_sec:.2} >= {min:.2} sessions/s");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
