//! `crash_recovery` — the kill/resume drill behind the CI crash-safety
//! gate.
//!
//! The parent process runs one campaign three ways:
//!
//! 1. **control** — uninterrupted, fully in-memory;
//! 2. **crash** — re-executes itself as a child with a
//!    [`KillPoint::Abort`] installed: the child journals cells through a
//!    persistent store and hard-aborts (`std::process::abort`, no
//!    destructors) the moment the N-th cell's journal record is fsync'd;
//! 3. **resume** — reopens the store the dead child left behind and
//!    resumes the campaign from its journal.
//!
//! The drill passes only if the child really died abnormally, the resume
//! restored at least the N journalled cells, and the merged report is
//! **bit-identical** to the control run (`CampaignReport::same_results`).
//!
//! A wall-clock watchdog (`--timeout-secs`, default 300) bounds the
//! child: a kill point that never trips would otherwise hang CI with no
//! diagnostic. The child's stderr is captured and folded into every
//! failure message, so a child that panics — instead of aborting at the
//! boundary — names its actual error in the drill output.
//!
//! Usage: `cargo run --release -p picbench-bench --bin crash_recovery --
//! [--kill-after N] [--problems N] [--samples N] [--threads N]
//! [--store-dir PATH] [--timeout-secs N]`

use picbench_core::{Campaign, CampaignConfig, CampaignReport, EvalStore, KillPoint};
use picbench_problems::Problem;
use picbench_sim::WavelengthGrid;
use picbench_synthllm::ModelProfile;
use std::io::Read as _;
use std::path::PathBuf;
use std::process::{ExitStatus, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    kill_after: usize,
    problems: usize,
    samples: usize,
    threads: usize,
    store_dir: Option<PathBuf>,
    timeout_secs: u64,
    /// Internal: set when this process is the crash child.
    child: bool,
}

fn parse_args() -> Args {
    let usage = "usage: crash_recovery [--kill-after N] [--problems N] [--samples N] \
                 [--threads N] [--store-dir PATH] [--timeout-secs N]";
    let mut args = Args {
        kill_after: 3,
        problems: 6,
        samples: 2,
        threads: 2,
        store_dir: None,
        timeout_secs: 300,
        child: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let numeric = |flag: &str, value: Option<&String>| -> usize {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a non-negative integer; {usage}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--kill-after" => {
                i += 1;
                args.kill_after = numeric("--kill-after", argv.get(i));
            }
            "--problems" => {
                i += 1;
                args.problems = numeric("--problems", argv.get(i)).max(1);
            }
            "--samples" => {
                i += 1;
                args.samples = numeric("--samples", argv.get(i)).max(1);
            }
            "--threads" => {
                i += 1;
                args.threads = numeric("--threads", argv.get(i));
            }
            "--store-dir" => {
                i += 1;
                args.store_dir = Some(argv.get(i).map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--store-dir needs a path; {usage}");
                    std::process::exit(2);
                }));
            }
            "--timeout-secs" => {
                i += 1;
                args.timeout_secs = numeric("--timeout-secs", argv.get(i)).max(1) as u64;
            }
            "--child" => args.child = true,
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn workload(args: &Args) -> (Vec<Problem>, Vec<ModelProfile>, CampaignConfig) {
    let mut problems = picbench_problems::suite();
    problems.truncate(args.problems);
    let profiles = vec![ModelProfile::gpt4(), ModelProfile::claude35_sonnet()];
    let config = CampaignConfig {
        samples_per_problem: args.samples,
        k_values: vec![1, args.samples],
        feedback_iters: vec![0, 1],
        restrictions: false,
        seed: 20_250_205,
        grid: WavelengthGrid::paper_fast(),
        threads: args.threads,
        ..CampaignConfig::default()
    };
    (problems, profiles, config)
}

/// The crash child: journal through the store and hard-abort at the
/// configured cell boundary. Reaching the end of `execute` means the
/// kill point never tripped — exit 0 and let the parent flag it.
fn run_child(args: &Args, store_dir: &PathBuf) -> ! {
    let (problems, profiles, config) = workload(args);
    let store = Arc::new(EvalStore::open(store_dir).expect("child: open eval store"));
    let campaign = Campaign::builder()
        .problems(problems)
        .profiles(&profiles)
        .config(config)
        .store(store)
        .kill_point(KillPoint::Abort {
            after_cells: args.kill_after,
        })
        .build()
        .expect("valid campaign definition");
    let _ = campaign.execute();
    std::process::exit(0);
}

fn control_run(args: &Args) -> CampaignReport {
    let (problems, profiles, config) = workload(args);
    Campaign::builder()
        .problems(problems)
        .profiles(&profiles)
        .config(config)
        .build()
        .expect("valid campaign definition")
        .run()
}

/// Runs the crash child under a wall-clock watchdog, draining its
/// stderr on a reader thread. On timeout the child is killed and the
/// drill panics with whatever the child managed to say — a kill point
/// that never trips must not hang CI silently.
fn supervise_child(cmd: &mut std::process::Command, timeout: Duration) -> (ExitStatus, String) {
    let mut child = cmd
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crash child");
    let mut pipe = child.stderr.take().expect("child stderr is piped");
    let reader = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = pipe.read_to_string(&mut buf);
        buf
    });
    let deadline = Instant::now() + timeout;
    let status = loop {
        match child.try_wait().expect("poll crash child") {
            Some(status) => break status,
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                let stderr = reader.join().unwrap_or_default();
                panic!(
                    "crash child exceeded the {}s watchdog and was killed — \
                     the kill point likely never tripped{}",
                    timeout.as_secs(),
                    render_stderr(&stderr)
                );
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    (status, reader.join().unwrap_or_default())
}

/// Indents captured child stderr for inclusion in drill messages;
/// empty when the child said nothing.
fn render_stderr(stderr: &str) -> String {
    if stderr.trim().is_empty() {
        return String::new();
    }
    let indented: String = stderr
        .trim_end()
        .lines()
        .map(|line| format!("\n  | {line}"))
        .collect();
    format!("\n  child stderr:{indented}")
}

/// Claims a fresh ephemeral directory under the system temp dir.
///
/// The name mixes the wall clock, the PID and a process-local counter,
/// and creation is fail-closed (`create_dir`, not `create_dir_all`): a
/// nonce collision — pid reuse against a leftover dir, a coarse or
/// backwards clock, two claims inside one process — surfaces as a retry
/// with a bumped counter instead of two runs silently sharing a store.
fn claim_ephemeral_dir(prefix: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let pid = std::process::id();
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    for _ in 0..64 {
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("{prefix}-{pid}-{stamp}-{seq}"));
        match std::fs::create_dir(&dir) {
            Ok(()) => return dir,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => panic!("create ephemeral dir {}: {e}", dir.display()),
        }
    }
    panic!(
        "could not claim an ephemeral directory under {} after 64 attempts",
        std::env::temp_dir().display()
    );
}

fn main() {
    let args = parse_args();
    let store_dir = args
        .store_dir
        .clone()
        .unwrap_or_else(|| claim_ephemeral_dir("picbench-crash-recovery"));
    if args.child {
        run_child(&args, &store_dir);
    }
    let ephemeral = args.store_dir.is_none();

    let (problems, profiles, config) = workload(&args);
    let cells = problems.len() * profiles.len() * config.feedback_iters.len();
    let kill_after = args.kill_after.min(cells.saturating_sub(1));
    println!(
        "workload: {} problems x {} models x {} feedback settings = {cells} cells; \
         child aborts after cell {kill_after}",
        problems.len(),
        profiles.len(),
        config.feedback_iters.len(),
    );

    println!("control: uninterrupted in-memory run...");
    let control = control_run(&args);

    println!("crash: spawning child with an abort kill point...");
    let exe = std::env::current_exe().expect("current_exe");
    let (status, child_stderr) = supervise_child(
        std::process::Command::new(exe)
            .args([
                "--child",
                "--kill-after",
                &kill_after.to_string(),
                "--problems",
                &args.problems.to_string(),
                "--samples",
                &args.samples.to_string(),
                "--threads",
                &args.threads.to_string(),
                "--store-dir",
            ])
            .arg(&store_dir),
        Duration::from_secs(args.timeout_secs),
    );
    assert!(
        !status.success(),
        "child was expected to abort mid-campaign but exited cleanly ({status}); \
         is --kill-after within the cell count?{}",
        render_stderr(&child_stderr)
    );
    println!(
        "crash: child died as expected ({status}){}",
        render_stderr(&child_stderr)
    );

    println!("resume: reopening the journal the dead child left behind...");
    let store = Arc::new(EvalStore::open(&store_dir).expect("reopen eval store"));
    assert!(
        !store.recovery().damaged(),
        "store recovery reported damage after a boundary abort: {:?}",
        store.recovery()
    );
    let outcome = Campaign::builder()
        .problems(problems)
        .profiles(&profiles)
        .config(config)
        .resume_from(store)
        .build()
        .expect("valid campaign definition")
        .execute();
    let resumed = outcome.report.expect("resumed run completes");

    assert!(
        outcome.cells_restored >= kill_after,
        "resume restored {} cells but the child journalled at least {kill_after}",
        outcome.cells_restored
    );
    assert!(
        outcome.cells_restored < cells || kill_after == cells,
        "resume restored every cell — the child cannot have aborted mid-campaign"
    );
    assert!(
        resumed.same_results(&control),
        "resumed report differs from the uninterrupted control run"
    );
    if ephemeral {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    println!(
        "resume: restored {} of {cells} cells from the journal, re-ran the rest; \
         merged report bit-identical to control: true",
        outcome.cells_restored
    );
}
