//! `sweep_bench` — before/after numbers for the plan/execute sweep
//! pipeline, written to `BENCH_pipeline.json`.
//!
//! Workload: the Clements 8×8 mesh golden (16 external ports, 36
//! instances, 128 global ports) swept over 64 wavelength points — the
//! reference "64-point × 16-port mesh" configuration. Both composition
//! backends are measured twice per repetition:
//!
//! * **naive** — [`sweep_naive`]: the original per-point rebuild
//!   (re-partition, re-permute, re-allocate, re-factor at every point);
//! * **plan** — the [`SweepPlan`]/`SolveWorkspace` pipeline driven point
//!   by point (structure frozen once, allocation-free in-place solves,
//!   memoized dispersionless models). The point loop is driven directly
//!   so the *per-point solve* is what gets timed: the production
//!   [`sweep`] entry point additionally recognizes this fully
//!   dispersionless mesh as wavelength-independent and folds the whole
//!   sweep into a single solve — wall-clock `points×` faster, but a
//!   degenerate measurement of the solver.
//!
//! The median over `--reps` repetitions (default 5) is reported, the two
//! paths are cross-checked to 1e-9, and the parallel executor is
//! verified element-wise identical to the serial one on `--threads`
//! workers (recorded in the JSON alongside the host CPU count).
//!
//! Usage: `cargo run --release -p picbench-bench --bin sweep_bench
//! [-- --reps N --threads N --out PATH]`
//!
//! [`sweep`]: picbench_sim::sweep

use picbench_math::{decomp, CMatrix};
use picbench_problems::meshes::mesh_netlist;
use picbench_sim::{
    sweep_naive, sweep_parallel, sweep_serial, Backend, Circuit, ModelRegistry, SweepPlan,
    WavelengthGrid,
};
use std::fmt::Write as _;
use std::time::Instant;

const GRID_POINTS: usize = 64;
const MESH_SIZE: usize = 8; // 8 inputs + 8 outputs = 16 external ports

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5usize;
    let mut threads = 4usize;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let usage = "usage: sweep_bench [--reps N --threads N --out PATH]";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--reps needs a positive integer; {usage}");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer; {usage}");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path; {usage}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let registry = ModelRegistry::with_builtins();
    let target = decomp::dft_matrix(MESH_SIZE);
    let mesh = decomp::clements_decompose(&target).expect("DFT is unitary");
    let netlist = mesh_netlist(&mesh);
    let circuit = Circuit::elaborate(&netlist, &registry, None).expect("golden mesh elaborates");
    let grid = WavelengthGrid::new(1.51, 1.59, GRID_POINTS);
    let wavelengths = grid.wavelengths();

    let memoized = SweepPlan::new(&circuit, Backend::Dense)
        .expect("plan builds")
        .memoized_instance_count();
    println!(
        "workload: clements-{MESH_SIZE}x{MESH_SIZE} mesh, {} instances ({} memoized), \
         {} global ports, {} external ports, {GRID_POINTS} grid points, {reps} reps",
        circuit.instance_count(),
        memoized,
        circuit.total_ports,
        circuit.externals.len(),
    );

    let mut results = String::new();
    for (index, backend) in [Backend::Dense, Backend::PortElimination]
        .iter()
        .enumerate()
    {
        let mut naive_ms = Vec::with_capacity(reps);
        let mut plan_ms = Vec::with_capacity(reps);
        let mut max_diff = 0.0f64;
        for _ in 0..reps {
            let t = Instant::now();
            let naive = sweep_naive(&circuit, &grid, *backend).expect("naive sweep");
            naive_ms.push(t.elapsed().as_secs_f64() * 1e3);

            // Drive the per-point solve directly (plan construction
            // included, as in the naive path) so the timing measures the
            // solver rather than the wavelength-independence fold. The
            // cross-check against naive runs after the clock stops.
            let n_ext = circuit.externals.len();
            let mut outs: Vec<CMatrix> = (0..wavelengths.len())
                .map(|_| CMatrix::zeros(n_ext, n_ext))
                .collect();
            let t = Instant::now();
            let plan = SweepPlan::new(&circuit, *backend).expect("plan builds");
            let mut ws = plan.workspace();
            for (i, &wl) in wavelengths.iter().enumerate() {
                plan.evaluate_into(&mut ws, wl, &mut outs[i])
                    .expect("planned point solve");
            }
            plan_ms.push(t.elapsed().as_secs_f64() * 1e3);

            let mut rep_diff = 0.0f64;
            for (i, out) in outs.iter().enumerate() {
                let reference = naive.sample(i).expect("sample exists").matrix();
                rep_diff = rep_diff.max(out.max_abs_diff(reference));
            }
            assert!(
                rep_diff < 1e-9,
                "{backend}: plan disagrees with naive by {rep_diff:.3e}"
            );
            max_diff = max_diff.max(rep_diff);
        }
        let naive = median_ms(naive_ms);
        let plan = median_ms(plan_ms);
        let speedup = naive / plan;
        println!(
            "{backend}: naive {naive:.2} ms -> plan {plan:.2} ms ({speedup:.2}x, \
             max |dS| vs naive {max_diff:.2e})"
        );
        if index > 0 {
            results.push_str(",\n");
        }
        let _ = write!(
            results,
            "    {{\n      \"backend\": \"{backend}\",\n      \"naive_ms\": {naive:.3},\n      \
             \"plan_ms\": {plan:.3},\n      \"speedup\": {speedup:.2},\n      \
             \"max_abs_diff_vs_naive\": {max_diff:.3e}\n    }}"
        );
    }

    // Determinism: the parallel executor must reproduce the serial sweep
    // bit for bit (on a single-CPU host this still exercises the code
    // path via an explicit worker count).
    let serial = sweep_serial(&circuit, &grid, Backend::Dense).expect("serial sweep");
    let parallel =
        sweep_parallel(&circuit, &grid, Backend::Dense, threads).expect("parallel sweep");
    let identical = serial == parallel;
    assert!(identical, "parallel sweep deviates from serial sweep");
    println!("parallel ({threads} workers) element-wise identical to serial: {identical}");

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"wavelength-sweep plan/execute pipeline\",\n  \
         \"workload\": {{\n    \"mesh\": \"clements-{MESH_SIZE}x{MESH_SIZE}\",\n    \
         \"instances\": {},\n    \"memoized_instances\": {memoized},\n    \
         \"global_ports\": {},\n    \"external_ports\": {},\n    \
         \"grid_points\": {GRID_POINTS}\n  }},\n  \"repetitions\": {reps},\n  \
         \"metric\": \"median wall-clock per full sweep, milliseconds (per-point solve; \
         the production sweep() folds this fully dispersionless mesh to a single point)\",\n  \
         \"host_cpus\": {cpus},\n  \"threads_used\": {threads},\n  \"results\": [\n{results}\n  ],\n  \
         \"parallel_identical_to_serial\": {identical},\n  \
         \"generated_by\": \"cargo run --release -p picbench-bench --bin sweep_bench\"\n}}\n",
        circuit.instance_count(),
        circuit.total_ports,
        circuit.externals.len(),
    );
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");
}
