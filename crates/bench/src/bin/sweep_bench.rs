//! `sweep_bench` — before/after numbers for the plan/execute sweep
//! pipeline across all composition backends, written to
//! `BENCH_pipeline.json`.
//!
//! Two workloads:
//!
//! * **clements-8x8** — the reference "64-point × 16-port mesh" (36
//!   instances, 128 global ports) from PR 1;
//! * **clements-16x16** — the scaling workload (136 instances, 512
//!   global ports, 480 internal ports) over 16 points, where the gap
//!   between the dense O(n³) solve and the topology-aware block-sparse
//!   factorization widens decisively.
//!
//! For every backend (`dense`, `port-elimination`, `block-sparse`) both
//! paths are measured:
//!
//! * **naive** — [`sweep_naive`]: the original per-point rebuild
//!   (re-partition, re-analyze, re-allocate, re-factor at every point);
//! * **plan** — the [`SweepPlan`]/`SolveWorkspace` pipeline driven
//!   stripe by stripe ([`SweepPlan::evaluate_stripe_into`]; structure
//!   and symbolic analysis frozen once, allocation-free in-place
//!   solves, memoized dispersionless models, batched panel solves). The
//!   point loop is driven directly so the *per-point solve* is what
//!   gets timed: the production [`sweep`] entry point additionally
//!   recognizes these fully dispersionless meshes as
//!   wavelength-independent and folds the whole sweep into a single
//!   solve — wall-clock `points×` faster, but a degenerate measurement
//!   of the solver. For the same reason the block-sparse stripe is
//!   driven point by point here (its factor-once batching would
//!   likewise degenerate on a dispersionless mesh).
//!
//! The block-sparse plan is additionally re-measured with kernel
//! dispatch pinned to the scalar tier
//! (`picbench_math::simd::with_forced_scalar`), producing per-ISA rows
//! (`plan_by_isa`) and the `simd_speedup` of the detected vector tier
//! over scalar; the report records the active tier in `simd_level`.
//!
//! The median over `--reps` repetitions is reported; every backend is
//! cross-checked against the naive dense reference (the
//! `max_abs_diff_vs_dense` column — the conformance oracle tolerance is
//! 1e-8) and against its own naive path. `--min-speedup X` turns the
//! run into a CI tripwire: it fails unless the block-sparse plan beats
//! the *naive dense* baseline by at least `X×` on the largest measured
//! workload.
//!
//! Usage: `cargo run --release -p picbench-bench --bin sweep_bench
//! [-- --reps N --threads N --out PATH --backend LIST --mesh 8x8|16x16|both
//!  --min-speedup X]`
//!
//! [`sweep`]: picbench_sim::sweep

use picbench_math::simd::{active_level, with_forced_scalar, SimdLevel};
use picbench_math::{decomp, CMatrix};
use picbench_problems::meshes::mesh_netlist;
use picbench_sim::{
    sweep_naive, sweep_parallel, sweep_serial, Backend, Circuit, FrequencyResponse, ModelRegistry,
    SweepPlan, WavelengthGrid,
};
use std::fmt::Write as _;
use std::time::Instant;

/// `(mesh size, grid points)` per workload. 8×8 keeps the historical
/// 64-point configuration; 16×16 uses a shorter grid (per-point cost is
/// what is compared, and the dense baseline is ~30× dearer per point).
const WORKLOADS: [(usize, usize); 2] = [(8, 64), (16, 16)];

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct BackendResult {
    backend: Backend,
    naive_ms: f64,
    plan_ms: f64,
    /// The same plan loop with kernel dispatch forced to the scalar
    /// tier — block-sparse only, `None` when the ambient tier already
    /// is scalar (the row would duplicate `plan_ms`).
    scalar_plan_ms: Option<f64>,
    max_abs_diff_vs_naive: f64,
    max_abs_diff_vs_dense: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5usize;
    let mut threads = 4usize;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut backends: Vec<Backend> = Backend::ALL.to_vec();
    let mut meshes: Vec<(usize, usize)> = WORKLOADS.to_vec();
    let mut min_speedup: Option<f64> = None;
    let usage = "usage: sweep_bench [--reps N --threads N --out PATH \
                 --backend all|dense,port-elimination,block-sparse \
                 --mesh 8x8|16x16|both --min-speedup X]";
    let mut i = 0;
    while i < args.len() {
        let fail = |msg: &str| -> ! {
            eprintln!("{msg}; {usage}");
            std::process::exit(2);
        };
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--reps needs a positive integer"));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--threads needs a positive integer"));
            }
            "--out" => {
                i += 1;
                out_path = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| fail("--out needs a path"));
            }
            "--backend" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| fail("--backend needs a list"));
                if list == "all" {
                    backends = Backend::ALL.to_vec();
                } else {
                    backends = list
                        .split(',')
                        .map(|t| t.trim().parse::<Backend>().unwrap_or_else(|e| fail(&e)))
                        .collect();
                }
            }
            "--mesh" => {
                i += 1;
                meshes = match args.get(i).map(String::as_str) {
                    Some("8x8") => vec![WORKLOADS[0]],
                    Some("16x16") => vec![WORKLOADS[1]],
                    Some("both") => WORKLOADS.to_vec(),
                    _ => fail("--mesh needs 8x8|16x16|both"),
                };
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&x: &f64| x > 0.0)
                        .unwrap_or_else(|| fail("--min-speedup needs a positive number")),
                );
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let registry = ModelRegistry::with_builtins();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workload_json = String::new();
    let mut tripwire_speedup: Option<f64> = None;

    for (w_index, &(mesh_size, grid_points)) in meshes.iter().enumerate() {
        let target = decomp::dft_matrix(mesh_size);
        let mesh = decomp::clements_decompose(&target).expect("DFT is unitary");
        let netlist = mesh_netlist(&mesh);
        let circuit =
            Circuit::elaborate(&netlist, &registry, None).expect("golden mesh elaborates");
        let grid = WavelengthGrid::new(1.51, 1.59, grid_points);
        let wavelengths = grid.wavelengths();
        let n_ext = circuit.externals.len();

        let memoized = SweepPlan::new(&circuit, Backend::Dense)
            .expect("plan builds")
            .memoized_instance_count();
        println!(
            "workload: clements-{mesh_size}x{mesh_size} mesh, {} instances ({memoized} memoized), \
             {} global ports, {n_ext} external ports, {grid_points} grid points, {reps} reps",
            circuit.instance_count(),
            circuit.total_ports,
        );

        // The physics reference every backend is compared against.
        let dense_reference: FrequencyResponse =
            sweep_naive(&circuit, &grid, Backend::Dense).expect("naive dense sweep");

        let mut results: Vec<BackendResult> = Vec::new();
        for &backend in &backends {
            let mut naive_ms = Vec::with_capacity(reps);
            let mut plan_ms = Vec::with_capacity(reps);
            // Per-ISA comparison: only the block-sparse solve dispatches
            // through the SIMD kernel table, and the scalar row is only
            // interesting when a vector tier is actually active.
            let isa_row = backend == Backend::BlockSparse && active_level() != SimdLevel::Scalar;
            let mut scalar_ms = Vec::with_capacity(if isa_row { reps } else { 0 });
            let mut diff_vs_own_naive = 0.0f64;
            let mut diff_vs_dense = 0.0f64;
            for _ in 0..reps {
                let t = Instant::now();
                let naive = sweep_naive(&circuit, &grid, backend).expect("naive sweep");
                naive_ms.push(t.elapsed().as_secs_f64() * 1e3);

                // Drive the per-point solve directly (plan construction
                // included, as in the naive path): see the module docs
                // for why the stripe batching and the constant fold are
                // deliberately bypassed. The cross-checks run after the
                // clock stops.
                let mut outs: Vec<CMatrix> = (0..wavelengths.len())
                    .map(|_| CMatrix::zeros(n_ext, n_ext))
                    .collect();
                let t = Instant::now();
                let plan = SweepPlan::new(&circuit, backend).expect("plan builds");
                let mut ws = plan.workspace();
                for (k, &wl) in wavelengths.iter().enumerate() {
                    plan.evaluate_into(&mut ws, wl, &mut outs[k])
                        .expect("planned point solve");
                }
                plan_ms.push(t.elapsed().as_secs_f64() * 1e3);

                if isa_row {
                    let mut scalar_outs: Vec<CMatrix> = (0..wavelengths.len())
                        .map(|_| CMatrix::zeros(n_ext, n_ext))
                        .collect();
                    let t = Instant::now();
                    with_forced_scalar(|| {
                        let plan = SweepPlan::new(&circuit, backend).expect("plan builds");
                        let mut ws = plan.workspace();
                        for (k, &wl) in wavelengths.iter().enumerate() {
                            plan.evaluate_into(&mut ws, wl, &mut scalar_outs[k])
                                .expect("forced-scalar point solve");
                        }
                    });
                    scalar_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    // The cross-tier contract (FMA contraction only):
                    // the `simd` conformance axis tolerance.
                    let mut tier_diff = 0.0f64;
                    for (out, scalar) in outs.iter().zip(&scalar_outs) {
                        tier_diff = tier_diff.max(out.max_abs_diff(scalar));
                    }
                    assert!(
                        tier_diff < 1e-9,
                        "{backend}: {} tier disagrees with forced scalar by {tier_diff:.3e}",
                        active_level().token()
                    );
                }

                for (k, out) in outs.iter().enumerate() {
                    let own = naive.sample(k).expect("sample exists").matrix();
                    diff_vs_own_naive = diff_vs_own_naive.max(out.max_abs_diff(own));
                    let dense = dense_reference.sample(k).expect("sample exists").matrix();
                    diff_vs_dense = diff_vs_dense.max(out.max_abs_diff(dense));
                }
                assert!(
                    diff_vs_own_naive < 1e-9,
                    "{backend}: plan disagrees with its naive path by {diff_vs_own_naive:.3e}"
                );
                assert!(
                    diff_vs_dense < 1e-8,
                    "{backend}: plan disagrees with the dense reference by {diff_vs_dense:.3e}"
                );
            }
            let naive = median_ms(naive_ms);
            let plan = median_ms(plan_ms);
            println!(
                "{backend}: naive {naive:.2} ms -> plan {plan:.2} ms ({:.2}x, \
                 max |dS| vs dense {diff_vs_dense:.2e})",
                naive / plan
            );
            let scalar_plan = (!scalar_ms.is_empty()).then(|| median_ms(scalar_ms));
            if let Some(s) = scalar_plan {
                println!(
                    "{backend} ISA dispatch: scalar {s:.2} ms -> {} {plan:.2} ms ({:.2}x)",
                    active_level().token(),
                    s / plan
                );
            }
            results.push(BackendResult {
                backend,
                naive_ms: naive,
                plan_ms: plan,
                scalar_plan_ms: scalar_plan,
                max_abs_diff_vs_naive: diff_vs_own_naive,
                max_abs_diff_vs_dense: diff_vs_dense,
            });
        }

        // Determinism: the parallel executor must reproduce the serial
        // sweep bit for bit on every measured backend — the run aborts on
        // any deviation, so a written report always records `true`.
        for &backend in &backends {
            let serial = sweep_serial(&circuit, &grid, backend).expect("serial sweep");
            let parallel =
                sweep_parallel(&circuit, &grid, backend, threads).expect("parallel sweep");
            assert_eq!(serial, parallel, "{backend}: parallel deviates from serial");
        }
        println!("parallel ({threads} workers) element-wise identical to serial on all backends");

        let dense_plan = results
            .iter()
            .find(|r| r.backend == Backend::Dense)
            .map(|r| r.plan_ms);
        let pe_plan = results
            .iter()
            .find(|r| r.backend == Backend::PortElimination)
            .map(|r| r.plan_ms);
        let bs = results.iter().find(|r| r.backend == Backend::BlockSparse);
        if let Some(bs) = bs {
            if let Some(d) = dense_plan {
                println!("block-sparse vs dense (plan): {:.2}x", d / bs.plan_ms);
            }
            // Tripwire numerator: the naive dense baseline of the
            // largest measured workload.
            let naive_dense = results
                .iter()
                .find(|r| r.backend == Backend::Dense)
                .map(|r| r.naive_ms);
            if let Some(nd) = naive_dense {
                tripwire_speedup = Some(nd / bs.plan_ms);
            }
        }

        let mut results_json = String::new();
        for (k, r) in results.iter().enumerate() {
            if k > 0 {
                results_json.push_str(",\n");
            }
            // Per-ISA rows: the plan time under each measured dispatch
            // tier, plus the vector tier's speedup over forced scalar.
            let isa_json = match r.scalar_plan_ms {
                Some(s) => format!(
                    ",\n          \"plan_by_isa\": {{\n            \"scalar\": {:.3},\n            \
                     \"{}\": {:.3}\n          }},\n          \"simd_speedup\": {:.2}",
                    s,
                    active_level().token(),
                    r.plan_ms,
                    s / r.plan_ms
                ),
                None => String::new(),
            };
            let _ = write!(
                results_json,
                "        {{\n          \"backend\": \"{}\",\n          \"naive_ms\": {:.3},\n          \
                 \"plan_ms\": {:.3},\n          \"speedup_vs_naive\": {:.2},\n          \
                 \"max_abs_diff_vs_naive\": {:.3e},\n          \
                 \"max_abs_diff_vs_dense\": {:.3e}{isa_json}\n        }}",
                r.backend,
                r.naive_ms,
                r.plan_ms,
                r.naive_ms / r.plan_ms,
                r.max_abs_diff_vs_naive,
                r.max_abs_diff_vs_dense
            );
        }
        if w_index > 0 {
            workload_json.push_str(",\n");
        }
        let derived = match (bs, dense_plan, pe_plan) {
            (Some(bs), Some(d), Some(p)) => format!(
                ",\n      \"block_sparse_speedup_vs_dense\": {:.2},\n      \
                 \"block_sparse_speedup_vs_port_elimination\": {:.2}",
                d / bs.plan_ms,
                p / bs.plan_ms
            ),
            _ => String::new(),
        };
        let _ = write!(
            workload_json,
            "    {{\n      \"mesh\": \"clements-{mesh_size}x{mesh_size}\",\n      \
             \"instances\": {},\n      \"memoized_instances\": {memoized},\n      \
             \"global_ports\": {},\n      \"external_ports\": {n_ext},\n      \
             \"grid_points\": {grid_points},\n      \"results\": [\n{results_json}\n      ],\n      \
             \"parallel_identical_to_serial\": true{derived}\n    }}",
            circuit.instance_count(),
            circuit.total_ports,
        );
    }

    let level = active_level().token();
    let json = format!(
        "{{\n  \"benchmark\": \"wavelength-sweep plan/execute pipeline\",\n  \
         \"metric\": \"median wall-clock per full sweep, milliseconds (per-point solve; \
         the production sweep() folds these fully dispersionless meshes to a single point)\",\n  \
         \"repetitions\": {reps},\n  \"host_cpus\": {cpus},\n  \"threads_used\": {threads},\n  \
         \"simd_level\": \"{level}\",\n  \
         \"workloads\": [\n{workload_json}\n  ],\n  \
         \"generated_by\": \"cargo run --release -p picbench-bench --bin sweep_bench\"\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");

    if let Some(min) = min_speedup {
        match tripwire_speedup {
            Some(got) if got >= min => {
                println!(
                    "min-speedup tripwire: block-sparse plan is {got:.2}x naive dense (>= {min})"
                );
            }
            Some(got) => {
                eprintln!(
                    "min-speedup tripwire FAILED: block-sparse plan is only {got:.2}x \
                     the naive dense baseline (required {min})"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("min-speedup tripwire needs both dense and block-sparse in --backend");
                std::process::exit(2);
            }
        }
    }
}
