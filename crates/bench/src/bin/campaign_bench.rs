//! `campaign_bench` — end-to-end campaign throughput, written to
//! `BENCH_campaign.json`.
//!
//! Two engine configurations run the identical synthetic campaign
//! (`problems × models × feedback settings × samples`):
//!
//! * **baseline** — the PR-1 engine: one work unit per problem
//!   ([`CampaignGrain::PerProblem`]), no evaluation cache, legacy sweep
//!   semantics (every grid point solved, per-sweep internal
//!   parallelism);
//! * **cached** — the content-addressed engine: fine-grained
//!   `(problem × model × feedback)` work units
//!   ([`CampaignGrain::PerCell`]), a shared sharded [`EvalCache`](picbench_core::EvalCache) seeded
//!   with the golden responses, serial sweeps (the campaign parallelizes
//!   across cells instead).
//!
//! Both must produce **bit-identical** [`CampaignReport`]s — the bench
//! asserts it, and additionally re-runs the cached engine at several
//! thread counts to assert scheduling independence. The median wall
//! clock over `--reps` repetitions is reported along with cell/sample
//! throughput and the cache hit rate.
//!
//! Usage: `cargo run --release -p picbench-bench --bin campaign_bench --
//! [--problems N] [--samples N] [--points N] [--reps N] [--threads N]
//! [--min-speedup X] [--out PATH] [--store-dir PATH] [--resume]
//! [--events ndjson]`
//!
//! `--events ndjson` mirrors the cold store campaign's events to stderr
//! in the canonical `picbench-server` wire format; the cumulative
//! [`EvalStoreStats`](picbench_core::EvalStoreStats) counters of the
//! warm store handle are printed and land in the JSON either way.
//!
//! `--min-speedup X` exits non-zero when the cached engine is not at
//! least `X`× faster than the baseline — CI runs a small workload with
//! `--min-speedup 1.0` as a tripwire against silently disabling the
//! cache.
//!
//! The bench also measures the **warm-start** path of the persistent
//! store: a cold campaign populates a store (journal + disk cache
//! tier), a second campaign over a freshly reopened store handle then
//! reads it back; the disk-tier hit rate and both wall clocks land in
//! the JSON. `--store-dir` pins the store location (default: a
//! temporary directory, removed afterwards); `--resume` makes the warm
//! run replay journalled cells outright instead of re-evaluating
//! through the disk tier.

use picbench_core::{
    run_campaign, Campaign, CampaignConfig, CampaignGrain, CampaignReport, EvalStore,
    SharedEvalStore,
};
use picbench_problems::Problem;
use picbench_sim::WavelengthGrid;
use picbench_synthllm::ModelProfile;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Builds the cached-engine campaign with a persistent store attached —
/// journalling (and resuming, when asked) through it.
fn store_campaign(
    problems: &[Problem],
    profiles: &[ModelProfile],
    config: &CampaignConfig,
    store: SharedEvalStore,
    resume: bool,
    events_ndjson: bool,
) -> Campaign {
    let mut builder = Campaign::builder()
        .problems(problems.iter().cloned())
        .profiles(profiles)
        .config(config.clone());
    if events_ndjson {
        builder = builder.observer(picbench_bench::ndjson_stderr_observer());
    }
    let builder = if resume {
        builder.resume_from(store)
    } else {
        builder.store(store)
    };
    builder.build().expect("valid campaign definition")
}

struct Args {
    problems: usize,
    samples: usize,
    points: usize,
    reps: usize,
    threads: usize,
    min_speedup: Option<f64>,
    out: String,
    store_dir: Option<PathBuf>,
    resume: bool,
    events_ndjson: bool,
}

fn parse_args() -> Args {
    let usage = "usage: campaign_bench [--problems N] [--samples N] [--points N] [--reps N] \
                 [--threads N] [--min-speedup X] [--out PATH] [--store-dir PATH] [--resume] \
                 [--events ndjson]";
    let mut args = Args {
        problems: usize::MAX,
        samples: 5,
        points: WavelengthGrid::paper_fast().points,
        reps: 3,
        threads: 0,
        min_speedup: None,
        out: "BENCH_campaign.json".to_string(),
        store_dir: None,
        resume: false,
        events_ndjson: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let numeric = |flag: &str, value: Option<&String>| -> usize {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a non-negative integer; {usage}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--problems" => {
                i += 1;
                args.problems = numeric("--problems", argv.get(i)).max(1);
            }
            "--samples" => {
                i += 1;
                args.samples = numeric("--samples", argv.get(i)).max(1);
            }
            "--points" => {
                i += 1;
                args.points = numeric("--points", argv.get(i)).max(1);
            }
            "--reps" => {
                i += 1;
                args.reps = numeric("--reps", argv.get(i)).max(1);
            }
            "--threads" => {
                i += 1;
                args.threads = numeric("--threads", argv.get(i));
            }
            "--min-speedup" => {
                i += 1;
                args.min_speedup =
                    Some(argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--min-speedup needs a number; {usage}");
                        std::process::exit(2);
                    }));
            }
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path; {usage}");
                    std::process::exit(2);
                });
            }
            "--store-dir" => {
                i += 1;
                args.store_dir = Some(argv.get(i).map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--store-dir needs a path; {usage}");
                    std::process::exit(2);
                }));
            }
            "--resume" => {
                args.resume = true;
            }
            "--events" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("ndjson") => args.events_ndjson = true,
                    _ => {
                        eprintln!("--events supports exactly one format: ndjson; {usage}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let profiles = ModelProfile::all_paper_models();
    let mut problems = picbench_problems::suite();
    problems.truncate(args.problems);
    let grid = WavelengthGrid::new(1.51, 1.59, args.points);

    let base_config = CampaignConfig {
        samples_per_problem: args.samples,
        k_values: vec![1, args.samples],
        feedback_iters: vec![0, 1, 3],
        restrictions: false,
        seed: 20_250_205,
        grid,
        threads: args.threads,
        ..CampaignConfig::default()
    };
    let baseline_config = CampaignConfig {
        grain: CampaignGrain::PerProblem,
        cache: false,
        legacy_sweeps: true,
        ..base_config.clone()
    };
    let cached_config = CampaignConfig {
        grain: CampaignGrain::PerCell,
        cache: true,
        legacy_sweeps: false,
        ..base_config.clone()
    };

    let cells = problems.len() * profiles.len() * base_config.feedback_iters.len();
    let samples_total = cells * args.samples;
    let worker_cap = if args.threads > 0 {
        args.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    println!(
        "workload: {} problems x {} models x {} feedback settings x {} samples \
         ({cells} cells, {samples_total} samples), {}-point grid, {} reps, {} worker(s)",
        problems.len(),
        profiles.len(),
        base_config.feedback_iters.len(),
        args.samples,
        args.points,
        args.reps,
        worker_cap.min(cells),
    );

    let mut baseline_ms = Vec::with_capacity(args.reps);
    let mut cached_ms = Vec::with_capacity(args.reps);
    let mut baseline_report: Option<CampaignReport> = None;
    let mut cached_report: Option<CampaignReport> = None;
    for rep in 0..args.reps {
        let t = Instant::now();
        let report = run_campaign(&profiles, &problems, &baseline_config);
        baseline_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if let Some(reference) = &baseline_report {
            assert!(reference.same_results(&report), "baseline not reproducible");
        }
        baseline_report = Some(report);

        let t = Instant::now();
        let report = run_campaign(&profiles, &problems, &cached_config);
        cached_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if let Some(reference) = &cached_report {
            assert!(
                reference.same_results(&report),
                "cached run not reproducible"
            );
        }
        cached_report = Some(report);
        eprintln!(
            "rep {}/{}: baseline {:.0} ms, cached {:.0} ms",
            rep + 1,
            args.reps,
            baseline_ms[rep],
            cached_ms[rep],
        );
    }
    let baseline_report = baseline_report.expect("at least one rep");
    let cached_report = cached_report.expect("at least one rep");

    // Determinism: cached+fine-grained must reproduce the baseline bit
    // for bit, at every thread count.
    assert!(
        baseline_report.same_results(&cached_report),
        "cache/grain changed campaign results"
    );
    let mut identical_across_threads = true;
    for threads in [1usize, 2, 4] {
        let report = run_campaign(
            &profiles,
            &problems,
            &CampaignConfig {
                threads,
                ..cached_config.clone()
            },
        );
        identical_across_threads &= report.same_results(&cached_report);
    }
    assert!(identical_across_threads, "thread count changed results");
    println!("report bit-identical to uncached baseline and across thread counts: true");

    // Warm-start through the persistent store: a cold campaign populates
    // the journal and the disk cache tier, then a second campaign over a
    // freshly reopened store handle reads it back. With --resume the
    // warm run replays journalled cells outright; otherwise it
    // re-evaluates through the disk tier and the disk hit rate shows how
    // much work the store absorbed.
    let store_path = args.store_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "picbench-campaign-bench-store-{}",
            std::process::id()
        ))
    });
    let ephemeral_store = args.store_dir.is_none();
    let t = Instant::now();
    let cold_store = Arc::new(EvalStore::open(&store_path).expect("open eval store"));
    let cold_report = store_campaign(
        &problems,
        &profiles,
        &cached_config,
        Arc::clone(&cold_store),
        false,
        args.events_ndjson,
    )
    .run();
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    cold_store.sync();
    drop(cold_store);
    assert!(
        cold_report.same_results(&cached_report),
        "attaching a store changed campaign results"
    );

    let t = Instant::now();
    let warm_store = Arc::new(EvalStore::open(&store_path).expect("reopen eval store"));
    let warm_outcome = store_campaign(
        &problems,
        &profiles,
        &cached_config,
        Arc::clone(&warm_store),
        args.resume,
        false,
    )
    .execute();
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let warm_report = warm_outcome.report.expect("uninterrupted warm run");
    assert!(
        warm_report.same_results(&cached_report),
        "warm start changed campaign results"
    );
    let warm_stats = warm_report.cache_stats.expect("cached run has stats");
    let warm_lookups = warm_stats.lookups();
    let warm_disk_hits = warm_stats.disk_hits;
    let warm_start_hit_rate = if warm_lookups > 0 {
        warm_disk_hits as f64 / warm_lookups as f64
    } else {
        0.0
    };
    let cells_restored = warm_outcome.cells_restored;
    let store_stats = warm_store.stats();
    drop(warm_store);
    if ephemeral_store {
        let _ = std::fs::remove_dir_all(&store_path);
    }
    println!(
        "store warm start: cold {cold_ms:.0} ms -> warm {warm_ms:.0} ms; \
         {warm_disk_hits} of {warm_lookups} warm lookups served from disk ({:.1}%), \
         {cells_restored} cells restored from journal",
        100.0 * warm_start_hit_rate,
    );
    println!(
        "store counters (warm handle): {} reads ({} hits), {} writes, {} syncs, \
         {} write errors, degraded: {}",
        store_stats.reads,
        store_stats.read_hits,
        store_stats.writes,
        store_stats.syncs,
        store_stats.write_errors,
        store_stats.degraded,
    );

    let baseline = median_ms(baseline_ms);
    let cached = median_ms(cached_ms);
    let speedup = baseline / cached;
    let stats = cached_report.cache_stats.expect("cached run has stats");
    let hit_rate = stats.hit_rate();
    println!(
        "baseline (PR-1 engine: per-problem, uncached, legacy sweeps): {baseline:.0} ms \
         ({:.2} cells/s)",
        cells as f64 / (baseline / 1e3)
    );
    println!(
        "cached (per-cell, content-addressed): {cached:.0} ms ({:.2} cells/s)",
        cells as f64 / (cached / 1e3)
    );
    println!(
        "speedup: {speedup:.2}x; cache: {} lookups, {:.1}% served without a sweep \
         ({} response hits, {} report hits, {} sim hits, {} misses)",
        stats.lookups(),
        100.0 * hit_rate,
        stats.response_hits,
        stats.report_hits,
        stats.sim_hits,
        stats.misses,
    );

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"content-addressed campaign engine\",\n  \
         \"workload\": {{\n    \"problems\": {},\n    \"models\": {},\n    \
         \"feedback_settings\": {},\n    \"samples_per_problem\": {},\n    \
         \"cells\": {cells},\n    \"samples\": {samples_total},\n    \
         \"grid_points\": {}\n  }},\n  \"repetitions\": {},\n  \
         \"metric\": \"median wall-clock per full campaign, milliseconds\",\n  \
         \"host_cpus\": {cpus},\n  \"threads_used\": {},\n  \
         \"baseline_definition\": \"PR-1 engine: per-problem work queue, no evaluation \
         cache, legacy sweep semantics (every grid point solved)\",\n  \"results\": {{\n    \
         \"baseline_pr1_engine_ms\": {baseline:.1},\n    \
         \"cached_per_cell_ms\": {cached:.1},\n    \"speedup\": {speedup:.2},\n    \
         \"baseline_cells_per_sec\": {:.2},\n    \"cached_cells_per_sec\": {:.2}\n  }},\n  \
         \"cache\": {{\n    \"lookups\": {},\n    \"response_hits\": {},\n    \
         \"report_hits\": {},\n    \"sim_hits\": {},\n    \"misses\": {},\n    \
         \"hit_rate\": {hit_rate:.4}\n  }},\n  \
         \"store\": {{\n    \"cold_ms\": {cold_ms:.1},\n    \"warm_ms\": {warm_ms:.1},\n    \
         \"warm_lookups\": {warm_lookups},\n    \"warm_disk_hits\": {warm_disk_hits},\n    \
         \"warm_start_hit_rate\": {warm_start_hit_rate:.4},\n    \
         \"cells_restored\": {cells_restored},\n    \"resume\": {},\n    \
         \"reads\": {},\n    \"read_hits\": {},\n    \"writes\": {},\n    \"syncs\": {},\n    \
         \"write_errors\": {},\n    \
         \"warm_report_identical\": true\n  }},\n  \
         \"report_identical_to_uncached_and_across_threads\": true,\n  \
         \"generated_by\": \"cargo run --release -p picbench-bench --bin campaign_bench\"\n}}\n",
        problems.len(),
        profiles.len(),
        base_config.feedback_iters.len(),
        args.samples,
        args.points,
        args.reps,
        worker_cap.min(cells),
        cells as f64 / (baseline / 1e3),
        cells as f64 / (cached / 1e3),
        stats.lookups(),
        stats.response_hits,
        stats.report_hits,
        stats.sim_hits,
        stats.misses,
        args.resume,
        store_stats.reads,
        store_stats.read_hits,
        store_stats.writes,
        store_stats.syncs,
        store_stats.write_errors,
    );
    std::fs::write(&args.out, json).expect("write benchmark report");
    println!("wrote {}", args.out);

    if let Some(min) = args.min_speedup {
        if speedup < min {
            eprintln!("FAIL: speedup {speedup:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        println!("speedup gate passed: {speedup:.2}x >= {min:.2}x");
    }
}
