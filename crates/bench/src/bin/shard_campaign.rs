//! `shard_campaign` — the sharded-campaign chaos drill behind the CI
//! fault-tolerance gate, and the bench writing the `"shards"` section of
//! `BENCH_campaign.json`.
//!
//! The parent process runs one campaign two ways:
//!
//! 1. **control** — uninterrupted, single-process, in-memory;
//! 2. **sharded** — partitioned over `--shards` real worker processes
//!    (this binary re-executed with `--worker-shard`), with a seeded
//!    [`ChaosPlan`]: `--kill-random` workers are SIGKILLed mid-shard once
//!    their journals show progress, and `--stall-random` workers hold
//!    without heartbeats past the lease TTL — forcing one lease-expiry
//!    reassignment — then revive into their fenced generation.
//!
//! The drill passes only if every injected fault produced a shard loss
//! and reassignment, and the merged report is **bit-identical** to the
//! control run (`CampaignReport::same_results`). The `"shards"` section
//! (fault counts, reassignments, redundant-cell ratio, wall clocks) is
//! spliced into an existing `BENCH_campaign.json` or written standalone.
//!
//! With `--transport http` the drill becomes a *network* chaos drill:
//! the parent embeds a coordinator ([`PicbenchServer`] with
//! `/v1/coord/*` routes over the shard-journal root) and workers
//! journal over real TCP through a fault-injecting transport —
//! `--net-partitions` workers get a partition window long enough to
//! exhaust their retry budgets (the first one during its lease claim),
//! every `--net-duplicate-period`-th delivery is duplicated (the
//! coordinator must dedup each one exactly), and `--coord-restart`
//! bounces the coordinator process-equivalent mid-campaign (same
//! journal root, same port). The pass condition is unchanged: every
//! injected fault costs a reassignment and the merged report stays
//! bit-identical.
//!
//! Usage: `cargo run --release -p picbench-bench --bin shard_campaign --
//! [--shards N] [--kill-random N] [--stall-random N] [--stall-ms MS]
//! [--lease-ttl-ms MS] [--problems N] [--samples N] [--threads N]
//! [--seed S] [--chaos-seed S] [--models a,b] [--shard-root PATH]
//! [--transport process|http] [--net-partitions N] [--net-partition-ms MS]
//! [--net-duplicate-period N] [--net-seed S] [--net-timeout-ms MS]
//! [--coord-restart] [--out PATH]`
//!
//! `--shard-root` pins the per-shard journals to a known directory so CI
//! can upload them as artifacts when the drill fails (default: a
//! temporary directory, removed on success).

use picbench_coord::{
    CoordClient, FaultyTransport, HttpTransport, NetFaultPlan, RemoteJournal, RemoteLauncher,
};
use picbench_core::{
    run_shard_worker, run_shard_worker_with, Campaign, CampaignConfig, CampaignEvent,
    CampaignReport, ChaosPlan, LeaseConfig, ProcessLauncher, ShardLauncher, ShardLossReason,
    ShardWorkerConfig, ShardWorkload, WorkerStall,
};
use picbench_problems::Problem;
use picbench_prompt::Conversation;
use picbench_server::{PicbenchServer, ServerConfig, ServerHandle};
use picbench_sim::WavelengthGrid;
use picbench_store::xorshift64;
use picbench_synthllm::{LanguageModel, ModelProfile, ModelProvider, RetryPolicy};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    shards: u32,
    kill_random: usize,
    stall_random: usize,
    stall_ms: Option<u64>,
    lease_ttl_ms: u64,
    problems: usize,
    samples: usize,
    threads: usize,
    seed: u64,
    chaos_seed: u64,
    models: Vec<String>,
    cell_delay_ms: u64,
    shard_root: Option<PathBuf>,
    out: String,
    /// `process` (shared-filesystem journals) or `http` (workers
    /// journal through the embedded network coordinator).
    transport: String,
    /// Network-chaos knobs (http transport only).
    net_partitions: usize,
    net_partition_ms: Option<u64>,
    net_duplicate_period: u64,
    net_seed: u64,
    net_timeout_ms: u64,
    coord_restart: bool,
    /// Internal: set (with generation/root) when this process is a
    /// shard worker spawned by the supervisor's [`ProcessLauncher`].
    worker_shard: Option<u32>,
    worker_generation: u32,
    stall_after_cells: Option<usize>,
    /// Internal (http workers): coordinator address and the partition
    /// schedule `shard:op:hold_ms[,...]` the parent armed.
    coord_addr: Option<SocketAddr>,
    net_partition_spec: String,
}

fn parse_args() -> Args {
    let usage = "usage: shard_campaign [--shards N] [--kill-random N] [--stall-random N] \
                 [--stall-ms MS] [--lease-ttl-ms MS] [--problems N] [--samples N] \
                 [--threads N] [--seed S] [--chaos-seed S] [--models a,b] \
                 [--cell-delay-ms MS] [--shard-root PATH] [--transport process|http] \
                 [--net-partitions N] [--net-partition-ms MS] [--net-duplicate-period N] \
                 [--net-seed S] [--net-timeout-ms MS] [--coord-restart] [--out PATH]";
    let mut args = Args {
        shards: 4,
        kill_random: 2,
        stall_random: 1,
        stall_ms: None,
        lease_ttl_ms: 5_000,
        problems: 6,
        samples: 2,
        threads: 2,
        seed: 20_250_205,
        chaos_seed: 7,
        models: vec!["GPT-4".to_string(), "Claude 3.5 Sonnet".to_string()],
        cell_delay_ms: 150,
        shard_root: None,
        out: "BENCH_campaign.json".to_string(),
        transport: "process".to_string(),
        net_partitions: 2,
        net_partition_ms: None,
        net_duplicate_period: 7,
        net_seed: 11,
        net_timeout_ms: 2_000,
        coord_restart: false,
        worker_shard: None,
        worker_generation: 0,
        stall_after_cells: None,
        coord_addr: None,
        net_partition_spec: String::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let numeric = |flag: &str, value: Option<&String>| -> u64 {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a non-negative integer; {usage}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--shards" => {
                i += 1;
                args.shards = numeric("--shards", argv.get(i)).max(1) as u32;
            }
            "--kill-random" => {
                i += 1;
                args.kill_random = numeric("--kill-random", argv.get(i)) as usize;
            }
            "--stall-random" => {
                i += 1;
                args.stall_random = numeric("--stall-random", argv.get(i)) as usize;
            }
            "--stall-ms" => {
                i += 1;
                args.stall_ms = Some(numeric("--stall-ms", argv.get(i)));
            }
            "--lease-ttl-ms" => {
                i += 1;
                args.lease_ttl_ms = numeric("--lease-ttl-ms", argv.get(i)).max(1);
            }
            "--problems" => {
                i += 1;
                args.problems = numeric("--problems", argv.get(i)).max(1) as usize;
            }
            "--samples" => {
                i += 1;
                args.samples = numeric("--samples", argv.get(i)).max(1) as usize;
            }
            "--threads" => {
                i += 1;
                args.threads = numeric("--threads", argv.get(i)) as usize;
            }
            "--seed" => {
                i += 1;
                args.seed = numeric("--seed", argv.get(i));
            }
            "--chaos-seed" => {
                i += 1;
                args.chaos_seed = numeric("--chaos-seed", argv.get(i));
            }
            "--models" => {
                i += 1;
                let names: Vec<String> = argv
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(str::trim)
                            .filter(|n| !n.is_empty())
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                if names.is_empty() {
                    eprintln!("--models needs a comma-separated list of profile names; {usage}");
                    std::process::exit(2);
                }
                args.models = names;
            }
            "--cell-delay-ms" => {
                i += 1;
                args.cell_delay_ms = numeric("--cell-delay-ms", argv.get(i));
            }
            "--shard-root" => {
                i += 1;
                args.shard_root = Some(argv.get(i).map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("--shard-root needs a path; {usage}");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path; {usage}");
                    std::process::exit(2);
                });
            }
            "--transport" => {
                i += 1;
                args.transport = argv.get(i).cloned().unwrap_or_default();
                if args.transport != "process" && args.transport != "http" {
                    eprintln!("--transport must be `process` or `http`; {usage}");
                    std::process::exit(2);
                }
            }
            "--net-partitions" => {
                i += 1;
                args.net_partitions = numeric("--net-partitions", argv.get(i)) as usize;
            }
            "--net-partition-ms" => {
                i += 1;
                args.net_partition_ms = Some(numeric("--net-partition-ms", argv.get(i)));
            }
            "--net-duplicate-period" => {
                i += 1;
                args.net_duplicate_period = numeric("--net-duplicate-period", argv.get(i));
            }
            "--net-seed" => {
                i += 1;
                args.net_seed = numeric("--net-seed", argv.get(i));
            }
            "--net-timeout-ms" => {
                i += 1;
                args.net_timeout_ms = numeric("--net-timeout-ms", argv.get(i)).max(1);
            }
            "--coord-restart" => {
                args.coord_restart = true;
            }
            "--coord-addr" => {
                i += 1;
                args.coord_addr =
                    Some(argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--coord-addr needs host:port; {usage}");
                        std::process::exit(2);
                    }));
            }
            "--net-partition-spec" => {
                i += 1;
                args.net_partition_spec = argv.get(i).cloned().unwrap_or_default();
            }
            "--worker-shard" => {
                i += 1;
                args.worker_shard = Some(numeric("--worker-shard", argv.get(i)) as u32);
            }
            "--worker-generation" => {
                i += 1;
                args.worker_generation = numeric("--worker-generation", argv.get(i)) as u32;
            }
            "--stall-after-cells" => {
                i += 1;
                args.stall_after_cells = Some(numeric("--stall-after-cells", argv.get(i)) as usize);
            }
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// The campaign definition shared — bit for bit — by the control run,
/// the supervisor, and every worker process: the worker re-derives the
/// same fingerprint and cell keys from the same flags.
fn workload(args: &Args) -> (Vec<Problem>, Vec<ModelProfile>, CampaignConfig) {
    let mut problems = picbench_problems::suite();
    problems.truncate(args.problems);
    let profiles: Vec<ModelProfile> = args
        .models
        .iter()
        .map(|name| {
            ModelProfile::by_name(name).unwrap_or_else(|| {
                eprintln!("unknown model profile {name:?} (see ModelProfile::all_paper_models)");
                std::process::exit(2);
            })
        })
        .collect();
    let config = CampaignConfig {
        samples_per_problem: args.samples,
        k_values: vec![1, args.samples],
        feedback_iters: vec![0, 1],
        restrictions: false,
        seed: args.seed,
        grid: WavelengthGrid::paper_fast(),
        threads: args.threads,
        ..CampaignConfig::default()
    };
    (problems, profiles, config)
}

/// Worker-only pacing: the same provider, plus a fixed sleep before
/// every model response. Chaos kills are delivered by the supervisor
/// once a victim's journal shows progress, so a worker must stay
/// killable for several 50 ms poll ticks per cell — purely additive
/// latency keeps the window open without touching names, seeding or
/// responses, so the merged report stays bit-identical to the un-paced
/// control run.
struct PacedProvider {
    inner: Arc<dyn ModelProvider>,
    delay: Duration,
}

struct PacedLlm {
    inner: Box<dyn LanguageModel>,
    delay: Duration,
}

impl ModelProvider for PacedProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn spawn(&self) -> Box<dyn LanguageModel> {
        Box::new(PacedLlm {
            inner: self.inner.spawn(),
            delay: self.delay,
        })
    }

    fn spawn_seeded(&self, seed: u64) -> Box<dyn LanguageModel> {
        Box::new(PacedLlm {
            inner: self.inner.spawn_seeded(seed),
            delay: self.delay,
        })
    }
}

impl LanguageModel for PacedLlm {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn begin_sample(&mut self, problem: &Problem, sample_index: u64) {
        self.inner.begin_sample(problem, sample_index);
    }

    fn respond(&mut self, conversation: &Conversation) -> String {
        std::thread::sleep(self.delay);
        self.inner.respond(conversation)
    }
}

/// How long an http worker keeps retrying a dead wire before it
/// degrades and exits unclean. Injected partition windows default to
/// out-lasting this, so a partitioned worker reliably costs its shard a
/// generation (the reassignment the drill asserts on).
const WORKER_NET_BUDGET_MS: u64 = 2_500;

/// The http worker's retry stance: enough attempts to absorb transient
/// weather (a coordinator restart, a refused connect during rebind)
/// inside the budget, deterministic backoff jitter from `seed`.
fn worker_net_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff_ms: 50,
        max_backoff_ms: 400,
        budget_ms: WORKER_NET_BUDGET_MS,
        seed,
        sleep: true,
    }
}

/// Parses the parent's partition schedule `shard:op:hold_ms[,...]`.
fn parse_partition_spec(spec: &str) -> Vec<(u32, u64, u64)> {
    spec.split(',')
        .filter(|entry| !entry.is_empty())
        .filter_map(|entry| {
            let mut parts = entry.split(':');
            let shard = parts.next()?.parse().ok()?;
            let op = parts.next()?.parse().ok()?;
            let hold = parts.next()?.parse().ok()?;
            Some((shard, op, hold))
        })
        .collect()
}

/// A worker process: run one shard generation to completion and exit
/// non-zero when the shard's journal is left incomplete (fenced, killed
/// or degraded) — the supervisor reads that as an unclean loss.
fn run_worker(args: &Args, shard: u32, root: PathBuf) -> ! {
    let (problems, profiles, config) = workload(args);
    let delay = Duration::from_millis(args.cell_delay_ms);
    let load = ShardWorkload {
        problems,
        providers: profiles
            .iter()
            .map(|p| {
                let inner = Arc::new(p.clone()) as Arc<dyn ModelProvider>;
                if delay.is_zero() {
                    inner
                } else {
                    Arc::new(PacedProvider { inner, delay }) as Arc<dyn ModelProvider>
                }
            })
            .collect(),
        config,
    };
    let stall = args.stall_after_cells.map(|after_cells| WorkerStall {
        after_cells,
        hold_ms: args.stall_ms.unwrap_or(0),
    });
    let config = ShardWorkerConfig {
        shard,
        generation: args.worker_generation,
        shards: args.shards,
        root,
        worker_id: u64::from(std::process::id()),
        stall,
    };
    let report = if args.transport == "http" {
        let addr = args.coord_addr.unwrap_or_else(|| {
            eprintln!("worker shard {shard}: --transport http needs --coord-addr");
            std::process::exit(2);
        });
        // The fault plan this worker was armed with: partitions only hit
        // generation 0 (the takeover must be able to finish the shard),
        // duplicated deliveries hit every generation (dedup is cheap and
        // the coordinator must absorb them anywhere).
        let partitions: Vec<(u64, u64)> = parse_partition_spec(&args.net_partition_spec)
            .into_iter()
            .filter(|(victim, _, _)| *victim == shard && args.worker_generation == 0)
            .map(|(_, op, hold)| (op, hold))
            .collect();
        let plan = NetFaultPlan {
            partitions,
            duplicate_period: (args.net_duplicate_period > 0).then_some(args.net_duplicate_period),
            ..NetFaultPlan::default()
        };
        let transport = Arc::new(FaultyTransport::new(
            Arc::new(HttpTransport::new(
                addr,
                Duration::from_millis(args.net_timeout_ms),
            )),
            plan,
        ));
        let seed = args.net_seed ^ (u64::from(shard) << 8) ^ u64::from(args.worker_generation);
        let client = Arc::new(CoordClient::with_policy(transport, worker_net_policy(seed)));
        let journal = RemoteJournal::new(client, shard, args.worker_generation);
        run_shard_worker_with(&load, &config, &journal)
    } else {
        run_shard_worker(&load, &config)
    }
    .unwrap_or_else(|e| {
        eprintln!("worker shard {shard}: {e}");
        std::process::exit(3);
    });
    std::process::exit(i32::from(!report.completed));
}

fn control_run(args: &Args) -> CampaignReport {
    let (problems, profiles, config) = workload(args);
    Campaign::builder()
        .problems(problems)
        .profiles(&profiles)
        .config(config)
        .build()
        .expect("valid campaign definition")
        .run()
}

/// Splices the `"shards"` section into an existing `BENCH_campaign.json`
/// (immediately before its trailing `"generated_by"` key) or writes a
/// standalone report when the file is absent or foreign.
fn write_report(out: &str, section: &str) {
    let spliced = std::fs::read_to_string(out).ok().and_then(|text| {
        let marker = "  \"generated_by\"";
        let at = text.rfind(marker)?;
        let mut spliced = String::with_capacity(text.len() + section.len());
        spliced.push_str(&text[..at]);
        spliced.push_str(section);
        spliced.push_str(&text[at..]);
        Some(spliced)
    });
    let json = spliced.unwrap_or_else(|| {
        format!(
            "{{\n  \"benchmark\": \"fault-tolerant sharded campaign execution\",\n{section}  \
             \"generated_by\": \"cargo run --release -p picbench-bench --bin shard_campaign\"\n}}\n"
        )
    });
    std::fs::write(out, json).expect("write benchmark report");
    println!("wrote {out}");
}

/// Claims a fresh ephemeral directory under the system temp dir.
///
/// The name mixes the wall clock, the PID and a process-local counter,
/// and creation is fail-closed (`create_dir`, not `create_dir_all`): a
/// nonce collision — pid reuse against a leftover dir, a coarse or
/// backwards clock, two claims inside one process — surfaces as a retry
/// with a bumped counter instead of two runs silently sharing journals.
fn claim_ephemeral_dir(prefix: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let pid = std::process::id();
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    for _ in 0..64 {
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("{prefix}-{pid}-{stamp}-{seq}"));
        match std::fs::create_dir(&dir) {
            Ok(()) => return dir,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => panic!("create ephemeral dir {}: {e}", dir.display()),
        }
    }
    panic!(
        "could not claim an ephemeral directory under {} after 64 attempts",
        std::env::temp_dir().display()
    );
}

/// Takes the live coordinator down and rebinds a fresh instance on the
/// *same* address over the *same* journal root — the process-restart
/// drill. Workers see refused connections for the gap and ride it out
/// on retries; the replacement rebuilds its dedup set from the journal.
fn restart_coordinator(slot: &Arc<Mutex<Option<ServerHandle>>>, root: &Path) {
    let Some(handle) = slot.lock().expect("coordinator slot poisoned").take() else {
        return;
    };
    let addr = handle.addr();
    eprintln!("  coordinator: restarting (same addr {addr}, same journal root)...");
    handle.shutdown();
    for _ in 0..100 {
        match PicbenchServer::start(ServerConfig {
            addr,
            coord_root: Some(root.to_path_buf()),
            ..ServerConfig::default()
        }) {
            Ok(fresh) => {
                *slot.lock().expect("coordinator slot poisoned") = Some(fresh);
                eprintln!("  coordinator: back up on {addr}");
                return;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("coordinator could not rebind {addr} after restart");
}

fn main() {
    let args = parse_args();
    let shard_root = args
        .shard_root
        .clone()
        .unwrap_or_else(|| claim_ephemeral_dir("picbench-shard-campaign"));
    if let Some(shard) = args.worker_shard {
        run_worker(&args, shard, shard_root);
    }
    let ephemeral = args.shard_root.is_none();
    let stall_ms = args.stall_ms.unwrap_or(args.lease_ttl_ms + 3_000);
    let http = args.transport == "http";

    let (problems, profiles, config) = workload(&args);
    let cells = problems.len() * profiles.len() * config.feedback_iters.len();
    let chaos = ChaosPlan::seeded(
        args.chaos_seed,
        args.shards,
        args.kill_random,
        args.stall_random,
        stall_ms,
    );
    let kills_injected = chaos.kills.len();
    let stalls_injected = chaos.stalls.len();

    // Network-chaos schedule (http transport): partition victims are
    // shards the process-chaos plan left alone, so every partition buys
    // its own reassignment on top of the kill/stall ones. The first
    // victim is partitioned during its lease claim (op 0); the rest at
    // seed-drawn points mid-journal. Windows default to out-lasting the
    // worker retry budget — the partitioned worker must degrade, exit
    // unclean, and hand the shard to a fresh generation.
    let partition_ms = args
        .net_partition_ms
        .unwrap_or(WORKER_NET_BUDGET_MS + 1_500);
    let mut partition_plan: Vec<(u32, u64, u64)> = Vec::new();
    if http {
        let chaos_victims: HashSet<u32> = chaos
            .kills
            .iter()
            .map(|k| k.shard)
            .chain(chaos.stalls.iter().map(|(shard, _)| *shard))
            .collect();
        let mut rng = (args.net_seed << 1) | 1;
        for shard in 0..args.shards {
            if partition_plan.len() >= args.net_partitions {
                break;
            }
            if chaos_victims.contains(&shard) {
                continue;
            }
            let op = if partition_plan.is_empty() {
                0 // partition during claim
            } else {
                rng = xorshift64(rng);
                3 + rng % 6
            };
            partition_plan.push((shard, op, partition_ms));
        }
        if partition_plan.len() < args.net_partitions {
            eprintln!(
                "note: only {} of {} requested partitions scheduled — not enough shards \
                 free of process chaos (use more --shards)",
                partition_plan.len(),
                args.net_partitions
            );
        }
    }
    let partitions_injected = partition_plan.len();

    println!(
        "workload: {} problems x {} models x {} feedback settings = {cells} cells \
         over {} shards; chaos: {kills_injected} SIGKILL(s), {stalls_injected} stall(s) \
         of {stall_ms} ms against a {} ms lease TTL",
        problems.len(),
        profiles.len(),
        config.feedback_iters.len(),
        args.shards,
        args.lease_ttl_ms,
    );
    if http {
        println!(
            "network chaos: transport http, {partitions_injected} partition(s) of \
             {partition_ms} ms {:?} (first during claim), duplicate period {}, \
             coordinator restart: {}",
            partition_plan
                .iter()
                .map(|(shard, _, _)| *shard)
                .collect::<Vec<_>>(),
            args.net_duplicate_period,
            args.coord_restart,
        );
    }

    println!("control: uninterrupted single-process run...");
    let t = Instant::now();
    let control = control_run(&args);
    let single_process_ms = t.elapsed().as_secs_f64() * 1e3;

    println!("sharded: spawning worker processes under chaos...");
    let events: Arc<Mutex<Vec<CampaignEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut base_args = vec![
        "--problems".to_string(),
        args.problems.to_string(),
        "--samples".to_string(),
        args.samples.to_string(),
        "--threads".to_string(),
        args.threads.to_string(),
        "--seed".to_string(),
        args.seed.to_string(),
        "--models".to_string(),
        args.models.join(","),
        "--cell-delay-ms".to_string(),
        args.cell_delay_ms.to_string(),
    ];
    let program = std::env::current_exe().expect("current_exe");

    // In http mode the parent doubles as the coordinator: an embedded
    // server owning `/v1/coord/*` over the shard-journal root. The
    // supervisor keeps polling the same directory for heartbeats and
    // merging from it — only the *workers* lose filesystem access.
    let coord_server: Arc<Mutex<Option<ServerHandle>>> = Arc::new(Mutex::new(None));
    let launcher: Arc<dyn ShardLauncher> = if http {
        let handle = PicbenchServer::start(ServerConfig {
            coord_root: Some(shard_root.clone()),
            ..ServerConfig::default()
        })
        .expect("start embedded coordinator server");
        let coord_addr = handle.addr();
        println!("coordinator: embedded server on {coord_addr}");
        *coord_server.lock().expect("coordinator slot poisoned") = Some(handle);
        let spec = partition_plan
            .iter()
            .map(|(shard, op, hold)| format!("{shard}:{op}:{hold}"))
            .collect::<Vec<_>>()
            .join(",");
        base_args.extend([
            "--net-partition-spec".to_string(),
            spec,
            "--net-duplicate-period".to_string(),
            args.net_duplicate_period.to_string(),
            "--net-seed".to_string(),
            args.net_seed.to_string(),
            "--net-timeout-ms".to_string(),
            args.net_timeout_ms.to_string(),
        ]);
        Arc::new(RemoteLauncher::new(program, base_args, coord_addr))
    } else {
        Arc::new(ProcessLauncher { program, base_args })
    };

    // The coordinator-restart drill: once any shard journals real
    // progress, bounce the coordinator on its own thread while workers
    // are mid-flight. Their retries ride out the gap (or cost a
    // reassignment — also acceptable); the journal makes the
    // replacement's dedup set exact.
    let restart_armed = Arc::new(AtomicBool::new(args.coord_restart && http));
    let restart_slot = Arc::clone(&coord_server);
    let restart_root = shard_root.clone();

    let t = Instant::now();
    let campaign = Campaign::builder()
        .problems(problems)
        .profiles(&profiles)
        .config(config)
        .shards(args.shards)
        .shard_dir(&shard_root)
        .shard_launcher(launcher)
        .lease_config(LeaseConfig {
            ttl_ms: args.lease_ttl_ms,
            poll_ms: 50,
            max_takeovers: 16,
        })
        .chaos(chaos)
        .observer(Arc::new(move |event: &CampaignEvent| {
            if let CampaignEvent::ShardHeartbeat { cells_done, .. } = event {
                if *cells_done >= 1 && restart_armed.swap(false, Ordering::SeqCst) {
                    let slot = Arc::clone(&restart_slot);
                    let root = restart_root.clone();
                    std::thread::spawn(move || restart_coordinator(&slot, &root));
                }
            }
            match event {
                CampaignEvent::ShardStarted {
                    shard,
                    generation,
                    cells,
                } => eprintln!("  shard {shard} gen {generation}: started ({cells} cells)"),
                CampaignEvent::ShardLost {
                    shard,
                    generation,
                    reason,
                    cells_done,
                } => eprintln!(
                    "  shard {shard} gen {generation}: LOST ({reason:?}) after {cells_done} cells"
                ),
                CampaignEvent::ShardReassigned {
                    shard,
                    from_generation,
                    to_generation,
                } => eprintln!(
                    "  shard {shard}: reassigned gen {from_generation} -> {to_generation}"
                ),
                CampaignEvent::ShardMerged {
                    shard,
                    generation,
                    cells,
                    quarantined,
                } => eprintln!(
                    "  shard {shard} gen {generation}: merged {cells} cells \
                     ({quarantined} stale quarantined)"
                ),
                _ => {}
            }
            sink.lock()
                .expect("event sink poisoned")
                .push(event.clone());
        }))
        .build()
        .expect("valid sharded campaign definition");
    let fingerprint = campaign.fingerprint();
    let outcome = campaign.execute();
    let sharded_ms = t.elapsed().as_secs_f64() * 1e3;
    let sharded = outcome.report.expect("sharded campaign completes");

    // Read the coordinator's own accounting (through the same public
    // wire the workers used), then retire it. Counters are in-memory,
    // so after a `--coord-restart` they cover the post-restart window —
    // which still must contain deduped duplicates when duplication is
    // on, because every worker duplicates deliveries for the whole
    // campaign.
    let duplicates_deduped = if http {
        let handle = coord_server
            .lock()
            .expect("coordinator slot poisoned")
            .take()
            .expect("coordinator alive at end of campaign");
        let client = CoordClient::with_policy(
            Arc::new(HttpTransport::new(handle.addr(), Duration::from_secs(2))),
            worker_net_policy(args.net_seed),
        );
        let state = client
            .fetch_state(fingerprint)
            .expect("coordinator state readable after campaign");
        handle.shutdown();
        Some(state.counters.duplicates)
    } else {
        None
    };

    // Tally the drill from the event stream.
    let events = events.lock().expect("event sink poisoned");
    let mut expected: HashMap<u32, usize> = HashMap::new();
    let mut unclean_exits = 0usize;
    let mut lease_expiries = 0usize;
    let mut reassignments = 0usize;
    let mut cells_reassigned = 0usize;
    let mut quarantined = 0usize;
    for event in events.iter() {
        match event {
            CampaignEvent::ShardStarted { shard, cells, .. } => {
                expected.entry(*shard).or_insert(*cells);
            }
            CampaignEvent::ShardLost {
                shard,
                reason,
                cells_done,
                ..
            } => {
                match reason {
                    ShardLossReason::LeaseExpired => lease_expiries += 1,
                    ShardLossReason::WorkerExited { clean: false } => unclean_exits += 1,
                    ShardLossReason::WorkerExited { clean: true } => {}
                }
                cells_reassigned += expected
                    .get(shard)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(*cells_done);
            }
            CampaignEvent::ShardReassigned { .. } => reassignments += 1,
            CampaignEvent::ShardMerged {
                quarantined: stale, ..
            } => quarantined += stale,
            _ => {}
        }
    }
    drop(events);

    assert!(
        sharded.same_results(&control),
        "sharded report differs from the single-process control run"
    );
    assert!(
        unclean_exits >= kills_injected,
        "injected {kills_injected} SIGKILLs but observed only {unclean_exits} unclean exits"
    );
    if stalls_injected > 0 && stall_ms > args.lease_ttl_ms {
        assert!(
            lease_expiries >= stalls_injected,
            "injected {stalls_injected} over-TTL stalls but observed only \
             {lease_expiries} lease expiries"
        );
    }
    let faults_injected = kills_injected + stalls_injected + partitions_injected;
    assert!(
        reassignments >= faults_injected,
        "every injected fault must cost its shard a generation: \
         {reassignments} reassignments for {faults_injected} faults"
    );
    if let Some(duplicates) = duplicates_deduped {
        if args.net_duplicate_period > 0 {
            assert!(
                duplicates >= 1,
                "duplicated deliveries were scheduled but the coordinator deduped none"
            );
        }
        println!(
            "network: {partitions_injected} partition(s) injected, {duplicates} duplicated \
             deliveries deduped, coordinator restarts: {}",
            u64::from(args.coord_restart),
        );
    }

    let redundant_ratio = quarantined as f64 / cells as f64;
    println!(
        "sharded report bit-identical to single-process control: true \
         ({} unclean exits, {lease_expiries} lease expiries, {reassignments} reassignments)",
        unclean_exits,
    );
    println!(
        "cells: {cells} total, {} inherited across takeovers, {cells_reassigned} reassigned, \
         {quarantined} stale writes quarantined (redundancy ratio {redundant_ratio:.3})",
        outcome.cells_restored,
    );
    println!(
        "wall clock: single-process {single_process_ms:.0} ms, \
         sharded-under-chaos {sharded_ms:.0} ms"
    );

    let section = format!(
        "  \"shards\": {{\n    \"shards\": {},\n    \"transport\": \"{}\",\n    \
         \"kills_injected\": {kills_injected},\n    \
         \"stalls_injected\": {stalls_injected},\n    \
         \"partitions_injected\": {partitions_injected},\n    \
         \"duplicates_deduped\": {},\n    \"coord_restarts\": {},\n    \
         \"lease_ttl_ms\": {},\n    \
         \"unclean_exits\": {unclean_exits},\n    \"lease_expiries\": {lease_expiries},\n    \
         \"reassignments\": {reassignments},\n    \"cells_total\": {cells},\n    \
         \"cells_reassigned\": {cells_reassigned},\n    \"cells_inherited\": {},\n    \
         \"cells_quarantined\": {quarantined},\n    \
         \"redundant_cell_ratio\": {redundant_ratio:.4},\n    \
         \"single_process_ms\": {single_process_ms:.1},\n    \
         \"sharded_chaos_ms\": {sharded_ms:.1},\n    \
         \"report_identical_to_single_process\": true\n  }},\n",
        args.shards,
        args.transport,
        duplicates_deduped.unwrap_or(0),
        u64::from(args.coord_restart && http),
        args.lease_ttl_ms,
        outcome.cells_restored,
    );
    write_report(&args.out, &section);

    if ephemeral {
        let _ = std::fs::remove_dir_all(&shard_root);
    } else {
        println!("shard journals kept at {}", shard_root.display());
    }
}
