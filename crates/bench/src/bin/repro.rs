//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro table1|table2|table3|table4|fig1|fig2|fig3|fig4|all \
//!     [--samples N] [--seed S] [--threads N] [--problems id,id,...] \
//!     [--store-dir PATH] [--resume] [--shards N] [--events ndjson]
//! repro --list-problems
//! ```
//!
//! The Monte-Carlo tables (III/IV) honour `--samples` (default 5, as in
//! the paper), `--seed` and `--threads` (campaign workers; the tables are
//! bit-identical for every worker count); everything else is
//! deterministic. Build with `--release` — the campaign tables simulate
//! thousands of circuits.
//!
//! `--store-dir` journals campaign progress through a crash-safe
//! persistent store (doubling as the evaluation cache's disk tier);
//! `--resume` additionally replays cells completed by a previous,
//! identically-configured run, so an interrupted table regeneration
//! picks up where it left off and still prints bit-identical numbers.
//! `--shards` runs the Monte-Carlo campaigns partitioned over N
//! supervised worker shards with lease-fenced journals; the tables stay
//! bit-identical for every shard count. `--events ndjson` mirrors every
//! campaign event to stderr in the canonical wire format that
//! `picbench-server` streams, one JSON object per line.

use picbench_bench::{
    error_histograms, fig1, fig2, fig3, fig4, list_problems, restriction_ablation_table, table1,
    table2, table3, table4, ReproScale,
};

/// Unwraps a Monte-Carlo artifact or exits with its error message.
fn ok_or_exit(result: Result<String, String>) -> String {
    result.unwrap_or_else(|message| {
        eprintln!("{message}");
        std::process::exit(2);
    })
}

fn print_usage() {
    eprintln!(
        "usage: repro <artifact> [--samples N] [--seed S] [--threads N] [--problems id,id,...]\n\
         \x20             [--store-dir PATH] [--resume] [--shards N] [--events ndjson]\n\
         artifacts: table1 table2 table3 table4 fig1 fig2 fig3 fig4 all\n\
         extensions: errors (failure-category histogram), ablation (leave-one-out restrictions)\n\
         --list-problems prints the registry inventory and exits\n\
         --problems restricts the Monte-Carlo artifacts (table3/table4/errors/ablation)\n\
         --threads 0 (default) uses one worker per core; tables are bit-identical either way\n\
         --store-dir journals campaign cells through a crash-safe persistent store\n\
         --resume replays cells journalled by a previous identical run from --store-dir\n\
         --shards N (>1) partitions campaigns over N supervised worker shards with\n\
         \x20        lease-fenced journals; tables are bit-identical for every shard count\n\
         --events ndjson mirrors every campaign event to stderr in the picbench-server\n\
         \x20        wire format (one JSON object per line)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut scale = ReproScale::default();
    let mut artifacts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                i += 1;
                scale.samples = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                scale.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                scale.threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--problems" => {
                i += 1;
                let ids: Vec<String> = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(str::trim)
                            .filter(|id| !id.is_empty())
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                if ids.is_empty() {
                    eprintln!("--problems needs a comma-separated list of problem ids");
                    std::process::exit(2);
                }
                scale.problems = Some(ids);
            }
            "--store-dir" => {
                i += 1;
                scale.store_dir = Some(args.get(i).map(std::path::PathBuf::from).unwrap_or_else(
                    || {
                        eprintln!("--store-dir needs a directory path");
                        std::process::exit(2);
                    },
                ));
            }
            "--resume" => {
                scale.resume = true;
            }
            "--shards" => {
                i += 1;
                scale.shards = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--events" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("ndjson") => scale.events_ndjson = true,
                    _ => {
                        eprintln!("--events supports exactly one format: ndjson");
                        std::process::exit(2);
                    }
                }
            }
            "--list-problems" => {
                print!("{}", list_problems());
                return;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => artifacts.push(other.to_string()),
        }
        i += 1;
    }
    if scale.resume && scale.store_dir.is_none() {
        eprintln!("--resume needs --store-dir");
        std::process::exit(2);
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for artifact in &artifacts {
        let started = std::time::Instant::now();
        let text = match artifact.as_str() {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => ok_or_exit(table3(&scale)),
            "table4" => ok_or_exit(table4(&scale)),
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "errors" => ok_or_exit(error_histograms(&scale)),
            "ablation" => ok_or_exit(restriction_ablation_table(&scale)),
            other => {
                eprintln!("unknown artifact: {other}");
                print_usage();
                std::process::exit(2);
            }
        };
        println!("{text}");
        eprintln!("[{artifact} generated in {:.1?}]", started.elapsed());
        println!();
    }
}
