//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro table1|table2|table3|table4|fig1|fig2|fig3|fig4|all \
//!     [--samples N] [--seed S] [--threads N]
//! ```
//!
//! The Monte-Carlo tables (III/IV) honour `--samples` (default 5, as in
//! the paper), `--seed` and `--threads` (campaign workers; the tables are
//! bit-identical for every worker count); everything else is
//! deterministic. Build with `--release` — the campaign tables simulate
//! thousands of circuits.

use picbench_bench::{
    error_histograms, fig1, fig2, fig3, fig4, restriction_ablation_table, table1, table2, table3,
    table4, ReproScale,
};

fn print_usage() {
    eprintln!(
        "usage: repro <artifact> [--samples N] [--seed S] [--threads N]\n\
         artifacts: table1 table2 table3 table4 fig1 fig2 fig3 fig4 all\n\
         extensions: errors (failure-category histogram), ablation (leave-one-out restrictions)\n\
         --threads 0 (default) uses one worker per core; tables are bit-identical either way"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut scale = ReproScale::default();
    let mut artifacts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                i += 1;
                scale.samples = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                scale.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                scale.threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => artifacts.push(other.to_string()),
        }
        i += 1;
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for artifact in &artifacts {
        let started = std::time::Instant::now();
        let text = match artifact.as_str() {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(scale),
            "table4" => table4(scale),
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "errors" => error_histograms(scale),
            "ablation" => restriction_ablation_table(scale),
            other => {
                eprintln!("unknown artifact: {other}");
                print_usage();
                std::process::exit(2);
            }
        };
        println!("{text}");
        eprintln!("[{artifact} generated in {:.1?}]", started.elapsed());
        println!();
    }
}
