//! # picbench-bench
//!
//! Reproduction harness: every table and figure of the paper can be
//! regenerated as text via the functions in this crate (wired to the
//! `repro` binary), and the Criterion benches measure the simulator and
//! evaluation pipeline.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table I (benchmark description) | [`table1`] |
//! | Table II (failure types & restrictions) | [`table2`] |
//! | Table III (Pass@k without restrictions) | [`table3`] |
//! | Table IV (Pass@k with restrictions) | [`table4`] |
//! | Fig. 1 (framework flow) | [`fig1`] |
//! | Fig. 2 (problem description) | [`fig2`] |
//! | Fig. 3 (system prompt template) | [`fig3`] |
//! | Fig. 4 (feedback session example) | [`fig4`] |

#![warn(missing_docs)]

use picbench_core::{
    collect_error_histogram, render_table, restriction_ablation, run_sample, Campaign,
    CampaignConfig, CampaignEvent, CampaignReport, EvalStore, Evaluator, LoopConfig,
};
use picbench_netlist::{FailureType, PortRef};
use picbench_prompt::{render_system_prompt, syntax_feedback, SystemPromptConfig};
use picbench_sim::WavelengthGrid;
use picbench_synthllm::{ModelProfile, SyntheticLlm};
use std::fmt::Write as _;

/// Campaign scale knobs for the table reproductions.
#[derive(Debug, Clone)]
pub struct ReproScale {
    /// Samples per problem (paper: 5).
    pub samples: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Campaign worker threads (0 = one per available core). The report
    /// is bit-identical for every thread count.
    pub threads: usize,
    /// Restrict Monte-Carlo artifacts to these registry problem ids
    /// (`None` = the full built-in suite, as in the paper).
    pub problems: Option<Vec<String>>,
    /// Directory of a persistent [`EvalStore`]: campaigns journal
    /// completed cells through it and use it as the disk tier under the
    /// evaluation cache (`None` = fully in-memory).
    pub store_dir: Option<std::path::PathBuf>,
    /// Resume from the journal in `store_dir`: cells completed by a
    /// previous identically-configured run are replayed instead of
    /// re-evaluated. No effect without `store_dir`.
    pub resume: bool,
    /// Above 1, the Monte-Carlo campaigns run sharded: the cell matrix
    /// is partitioned over this many supervised in-process workers,
    /// each journalling through its own lease-fenced directory, and the
    /// tables are merged deterministically — bit-identical for every
    /// shard count. Journals land under `store_dir/shards` when a store
    /// directory is set, else in a temporary directory.
    pub shards: u32,
    /// Emit every [`CampaignEvent`] to stderr as a canonical NDJSON
    /// wire line (the exact bytes `picbench-server` streams over
    /// `GET /v1/campaigns/{id}/events`), one line per event. Stdout
    /// stays reserved for the artifact text.
    pub events_ndjson: bool,
}

impl Default for ReproScale {
    fn default() -> Self {
        ReproScale {
            samples: 5,
            seed: 20_250_205,
            threads: 0,
            problems: None,
            store_dir: None,
            resume: false,
            shards: 0,
            events_ndjson: false,
        }
    }
}

/// An observer that prints each event's canonical NDJSON wire line to
/// stderr (`eprintln!` holds the stderr lock per line, so lines stay
/// whole even from parallel campaign workers).
pub fn ndjson_stderr_observer() -> std::sync::Arc<dyn picbench_core::CampaignObserver> {
    std::sync::Arc::new(|event: &CampaignEvent| {
        eprintln!("{}", picbench_server::wire::encode_event(event));
    })
}

/// Resolves the scale's problem selection against the registry.
///
/// # Errors
///
/// Returns the first unknown or repeated id, so the CLI can fail with a
/// usable message instead of silently shrinking (or double-weighting)
/// the matrix.
pub fn resolve_problems(scale: &ReproScale) -> Result<Vec<picbench_problems::Problem>, String> {
    match &scale.problems {
        None => Ok(picbench_problems::suite()),
        Some(ids) => {
            let mut seen = std::collections::HashSet::new();
            ids.iter()
                .map(|id| {
                    if !seen.insert(id.as_str()) {
                        return Err(format!(
                            "problem id {id:?} listed more than once in --problems"
                        ));
                    }
                    picbench_problems::find(id)
                        .ok_or_else(|| format!("unknown problem id {id:?} (see --list-problems)"))
                })
                .collect()
        }
    }
}

/// Renders the problem inventory of the global registry — id, display
/// name, category and golden size — for `repro --list-problems`.
pub fn list_problems() -> String {
    let registry = picbench_problems::ProblemRegistry::global();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:<22} {:<22} {:>9}",
        "Id", "Name", "Category", "Instances"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    for p in registry.all() {
        let _ = writeln!(
            out,
            "{:<18} {:<22} {:<22} {:>9}",
            p.id,
            p.name,
            p.category.to_string(),
            p.golden_instance_count()
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(74));
    let _ = writeln!(out, "Total: {} problems", registry.len());
    out
}

/// Regenerates Table I: the 24-problem inventory with categories, golden
/// design sizes and port counts. Every golden design is elaborated and
/// simulated at one wavelength before printing, so the table doubles as a
/// health check.
pub fn table1() -> String {
    let problems = picbench_problems::suite();
    let mut evaluator = Evaluator::default();
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I: Benchmark Description (24 problems)");
    let _ = writeln!(
        out,
        "{:<22} {:<22} {:>9} {:>7} {:>8}",
        "Design", "Category", "Instances", "Inputs", "Outputs"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    let mut current_category = None;
    for p in &problems {
        // Simulating the golden guarantees the row describes a live design.
        let _ = evaluator.golden_response(p);
        if current_category != Some(p.category) {
            let _ = writeln!(out, "--- {} ---", p.category);
            current_category = Some(p.category);
        }
        let _ = writeln!(
            out,
            "{:<22} {:<22} {:>9} {:>7} {:>8}",
            p.name,
            p.category.to_string(),
            p.golden_instance_count(),
            p.spec.inputs,
            p.spec.outputs
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(72));
    let _ = writeln!(out, "Total: {} problems", problems.len());
    out
}

/// Regenerates Table II: the failure taxonomy with restriction texts.
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II: Restrictions for the PIC design task (failure types and constraints)"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for failure in FailureType::ALL {
        let _ = writeln!(out, "Failure type: {}", failure.label());
        let restriction = failure.restriction();
        if restriction.is_empty() {
            let _ = writeln!(out, "Restriction : (none)");
        } else {
            let _ = writeln!(out, "Restriction : {restriction}");
        }
        let _ = writeln!(out, "{}", "-".repeat(78));
    }
    out
}

fn campaign(restrictions: bool, scale: &ReproScale) -> Result<CampaignReport, String> {
    let profiles = ModelProfile::all_paper_models();
    let problems = resolve_problems(scale)?;
    let config = CampaignConfig {
        samples_per_problem: scale.samples,
        k_values: vec![1, scale.samples],
        feedback_iters: vec![0, 1, 3],
        restrictions,
        seed: scale.seed,
        grid: WavelengthGrid::paper_fast(),
        threads: scale.threads,
        ..CampaignConfig::default()
    };
    let mut builder = Campaign::builder()
        .problems(problems)
        .profiles(&profiles)
        .config(config);
    if scale.events_ndjson {
        builder = builder.observer(ndjson_stderr_observer());
    }
    if let Some(dir) = &scale.store_dir {
        let store = EvalStore::open(dir)
            .map_err(|e| format!("cannot open eval store at {}: {e}", dir.display()))?;
        let store = std::sync::Arc::new(store);
        builder = if scale.resume {
            builder.resume_from(store)
        } else {
            builder.store(store)
        };
    }
    // Sharded execution supersedes the in-process engine (and its store
    // journalling): each worker journals through its own lease-fenced
    // shard directory instead, and an interrupted run resumes from those
    // journals when pointed at the same directory again.
    let mut ephemeral_shard_dir = None;
    if scale.shards > 1 {
        let dir = match &scale.store_dir {
            Some(store_dir) => store_dir.join("shards"),
            None => {
                static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "picbench-repro-shards-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                ));
                ephemeral_shard_dir = Some(dir.clone());
                dir
            }
        };
        builder = builder.shards(scale.shards).shard_dir(dir);
    }
    let session = builder.build().map_err(|e| e.to_string())?;
    let report = session.run();
    if let Some(dir) = ephemeral_shard_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(report)
}

/// Regenerates Table III: Pass@1/Pass@n syntax and functionality for the
/// five model profiles at 0/1/3 feedback iterations, restrictions OFF.
///
/// # Errors
///
/// Returns a message naming the first unknown id in `scale.problems`.
pub fn table3(scale: &ReproScale) -> Result<String, String> {
    Ok(render_table(
        &campaign(false, scale)?,
        "TABLE III: Syntax and Functionality evaluation (without restrictions)",
    ))
}

/// Regenerates Table IV: the same matrix with the Table II restrictions
/// in the system prompt.
///
/// # Errors
///
/// Returns a message naming the first unknown id in `scale.problems`.
pub fn table4(scale: &ReproScale) -> Result<String, String> {
    Ok(render_table(
        &campaign(true, scale)?,
        "TABLE IV: Syntax and Functionality evaluation (with restrictions)",
    ))
}

/// Regenerates Fig. 1 as an annotated end-to-end trace of the framework
/// flow: generation → syntax check → classification → feedback →
/// re-generation → functionality check.
pub fn fig1() -> String {
    let problem = picbench_problems::find("clements-4x4").expect("problem exists");
    let mut evaluator = Evaluator::default();
    let mut out = String::new();
    let _ = writeln!(out, "FIG. 1: PICBench framework flow (live trace)");
    let _ = writeln!(out, "Problem: {} ({})", problem.name, problem.id);

    // Find a sample whose trajectory exercises the feedback loop and ends
    // in a pass — the canonical Fig. 1 story.
    let mut llm = SyntheticLlm::new(ModelProfile::claude35_sonnet(), 7);
    for sample in 0..200 {
        let result = run_sample(
            &mut llm,
            &problem,
            &mut evaluator,
            LoopConfig {
                max_feedback_iters: 3,
                restrictions: true,
            },
            sample,
        );
        if result.feedback_rounds_used() >= 1 && result.functional_pass() {
            for attempt in &result.attempts {
                let _ = writeln!(out, "\n--- Iter {} ---", attempt.iteration);
                match (&attempt.report.syntax, attempt.report.functional) {
                    (Err(issues), _) => {
                        let _ = writeln!(out, "Syntax valid? NO");
                        for issue in issues {
                            let _ = writeln!(out, "  classified: {issue}");
                        }
                        let _ = writeln!(out, "  -> error feedback loop engaged");
                    }
                    (Ok(()), Some(false)) => {
                        let _ = writeln!(out, "Syntax valid? YES");
                        let _ = writeln!(out, "Consistent with golden? NO");
                        let _ = writeln!(out, "  -> functional feedback sent");
                    }
                    (Ok(()), _) => {
                        let _ = writeln!(out, "Syntax valid? YES");
                        let _ = writeln!(out, "Consistent with golden? YES  => PASS");
                    }
                }
            }
            let _ = writeln!(
                out,
                "\nSample {} of model {} passed after {} feedback round(s).",
                sample,
                result.model,
                result.feedback_rounds_used()
            );
            return out;
        }
    }
    let _ = writeln!(out, "(no multi-round passing trace found — unexpected)");
    out
}

/// Regenerates Fig. 2: the example problem description (`MZI ps`).
pub fn fig2() -> String {
    let problem = picbench_problems::find("mzi-ps").expect("problem exists");
    format!(
        "FIG. 2: Example of problem description\n\nProblem Description ({}):\n{}\n",
        problem.name, problem.description
    )
}

/// Regenerates Fig. 3: the system prompt template (with restrictions).
pub fn fig3() -> String {
    let models = picbench_sparams::builtin_models();
    let infos: Vec<_> = models.iter().map(|m| m.info().clone()).collect();
    let prompt = render_system_prompt(
        infos.iter(),
        SystemPromptConfig {
            include_restrictions: true,
        },
    );
    format!("FIG. 3: System prompt template for code generation\n\n{prompt}\n")
}

/// Regenerates Fig. 4: the `MZI ps` feedback session — the initial
/// response wires `phaseShifter,O1` to the non-existent `mmi2,I2`, the
/// evaluator classifies the Wrong-ports error with the exact message from
/// the figure, and the corrected netlist passes.
pub fn fig4() -> String {
    let problem = picbench_problems::find("mzi-ps").expect("problem exists");
    let mut evaluator = Evaluator::default();
    let mut out = String::new();
    let _ = writeln!(out, "FIG. 4: Solving MZI ps with correction feedback\n");

    // Iter 0: the figure's faulty netlist (connects to mmi2,I2).
    let mut faulty = problem.golden.clone();
    faulty.connections[1].b = PortRef::new("mmi2", "I2");
    let faulty_text = format!("<result>\n{}\n</result>", faulty.to_json_string());
    let report = evaluator.evaluate_response(&problem, &faulty_text);
    let _ = writeln!(out, "Iter 0: LLM initial response and evaluation");
    let _ = writeln!(out, "{}\n", faulty.to_json_string());
    let _ = writeln!(out, "Evaluation: Syntax Error");
    let _ = writeln!(out, "Evaluation information:");
    let _ = writeln!(out, "{}", syntax_feedback(&problem.id, report.issues()));

    // Iter 1: the corrected response (the golden design).
    let fixed_text = format!("<result>\n{}\n</result>", problem.golden.to_json_string());
    let report = evaluator.evaluate_response(&problem, &fixed_text);
    let _ = writeln!(out, "\nIter 1: Correction feedback applied");
    let _ = writeln!(out, "{}\n", problem.golden.to_json_string());
    let _ = writeln!(
        out,
        "Evaluation: {}",
        if report.functional_pass() {
            "PASS"
        } else {
            "FAIL (unexpected)"
        }
    );
    out
}

/// Extension experiment: the failure-category histogram per model — the
/// measurement behind the paper's error-classification loop (§III-D).
/// Shows which Table II categories each model actually commits, with and
/// without restrictions.
pub fn error_histograms(scale: &ReproScale) -> Result<String, String> {
    let problems = resolve_problems(scale)?;
    let mut evaluator = Evaluator::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXT-1: Classified failure-category incidence per model \
         (first attempts, {} samples/problem)",
        scale.samples
    );
    for restrictions in [false, true] {
        let _ = writeln!(
            out,
            "\n=== restrictions {} ===",
            if restrictions { "ON" } else { "OFF" }
        );
        for profile in ModelProfile::all_paper_models() {
            let histogram = collect_error_histogram(
                &profile,
                &problems,
                &mut evaluator,
                scale.samples as u64,
                restrictions,
                scale.seed,
            );
            let _ = writeln!(
                out,
                "\n{} — {}/{} first attempts failed syntax:",
                histogram.model, histogram.failing_attempts, histogram.attempts
            );
            for (category, count) in histogram.ranked() {
                let _ = writeln!(out, "  {:>4}  {}", count, category.label());
            }
        }
    }
    Ok(out)
}

/// Extension experiment: leave-one-out restriction ablation — how much
/// syntax Pass@1 drops when each single Table II restriction is removed
/// from the system prompt.
pub fn restriction_ablation_table(scale: &ReproScale) -> Result<String, String> {
    let problems = resolve_problems(scale)?;
    let mut evaluator = Evaluator::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXT-2: Leave-one-out restriction ablation ({} samples/problem)",
        scale.samples
    );
    for profile in [ModelProfile::gemini15_pro(), ModelProfile::gpt4o()] {
        let rows = restriction_ablation(
            &profile,
            &problems,
            &mut evaluator,
            scale.samples as u64,
            scale.seed,
        );
        let baseline = rows[0].syntax_pass1;
        let _ = writeln!(
            out,
            "\nModel: {} (full set: {:.2}% syntax Pass@1)",
            profile.name, baseline
        );
        let _ = writeln!(
            out,
            "{:<45} {:>8} {:>8}",
            "removed restriction", "Pass@1", "delta"
        );
        for row in rows.iter().skip(1) {
            let label = row.removed.map(|f| f.label()).unwrap_or("(none)");
            let _ = writeln!(
                out,
                "{:<45} {:>7.2}% {:>+7.2}",
                label,
                row.syntax_pass1,
                row.syntax_pass1 - baseline
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_problems_covers_the_registry() {
        let listing = list_problems();
        assert!(listing.contains("mzi-ps"));
        assert!(listing.contains("spankebenes-8x8"));
        assert!(listing.contains("Total: "));
    }

    #[test]
    fn resolve_problems_filters_and_rejects_unknown_ids() {
        let all = resolve_problems(&ReproScale::default()).unwrap();
        assert_eq!(all.len(), 24);
        let filtered = resolve_problems(&ReproScale {
            problems: Some(vec!["mzm".to_string(), "mzi-ps".to_string()]),
            ..ReproScale::default()
        })
        .unwrap();
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered[0].id, "mzm");
        assert_eq!(filtered[1].id, "mzi-ps");
        let err = resolve_problems(&ReproScale {
            problems: Some(vec!["warp-core".to_string()]),
            ..ReproScale::default()
        })
        .unwrap_err();
        assert!(err.contains("warp-core"));
        // Repeated ids would double-weight Pass@k and silently collapse
        // in the id-keyed tallies — rejected up front instead.
        let err = resolve_problems(&ReproScale {
            problems: Some(vec!["mzm".to_string(), "mzm".to_string()]),
            ..ReproScale::default()
        })
        .unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn filtered_table3_runs_on_the_selected_problems_only() {
        let scale = ReproScale {
            samples: 1,
            problems: Some(vec!["mzi-ps".to_string()]),
            ..ReproScale::default()
        };
        let table = table3(&scale).unwrap();
        assert!(table.contains("TABLE III"));
        assert!(table.contains("GPT-4"));
        let err = table3(&ReproScale {
            problems: Some(vec!["warp-core".to_string()]),
            ..scale
        })
        .unwrap_err();
        assert!(err.contains("warp-core"));
    }

    #[test]
    fn sharded_table3_is_bit_identical_to_single_process() {
        let scale = ReproScale {
            samples: 1,
            problems: Some(vec!["mzi-ps".to_string()]),
            ..ReproScale::default()
        };
        let single = table3(&scale).unwrap();
        let sharded = table3(&ReproScale { shards: 3, ..scale }).unwrap();
        assert_eq!(single, sharded);
    }

    #[test]
    fn table1_lists_all_24() {
        let t = table1();
        assert!(t.contains("Total: 24 problems"));
        assert!(t.contains("Clements 4x4"));
        assert!(t.contains("Spanke-Benes 8x8"));
        assert!(t.contains("MZI ps"));
    }

    #[test]
    fn table2_lists_all_categories() {
        let t = table2();
        for f in FailureType::ALL {
            assert!(t.contains(f.label()), "missing {}", f.label());
        }
    }

    #[test]
    fn fig2_is_the_mzi_ps_brief() {
        let f = fig2();
        assert!(f.contains("Mach-Zehnder interferometer"));
        assert!(f.contains("Parameters:"));
    }

    #[test]
    fn fig3_contains_prompt_sections() {
        let f = fig3();
        assert!(f.contains("<<<JSON format>>>"));
        assert!(f.contains("<<<API document>>>"));
        assert!(f.contains("Restrictions"));
    }

    #[test]
    fn fig4_reproduces_the_wrong_ports_error() {
        let f = fig4();
        assert!(f.contains("Wrong ports error"));
        assert!(f.contains("Instance mmi2 does not contain port I2"));
        assert!(f.contains("Evaluation: PASS"));
    }
}
