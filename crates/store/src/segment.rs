//! Segment encoding and recovery scanning.
//!
//! A segment is a header followed by a run of checksummed, length-
//! prefixed records (see the crate docs for the exact byte layout and
//! its invariants). This module owns the byte-level encode/decode and
//! the recovery scan that classifies damage into *torn tails* (truncate)
//! and *corrupt records* (quarantine).

/// Segment magic: identifies the file type and major layout.
pub const MAGIC: &[u8; 8] = b"PICSTOR1";
/// Format version written after the magic.
pub const VERSION: u32 = 1;
/// Header length: magic + version.
pub const HEADER_LEN: usize = 12;
/// Reserved record kind carrying the seal footer of a rotated segment.
pub const KIND_FOOTER: u8 = 0;
/// Sanity cap on one record's payload; a length prefix beyond this is
/// treated as lost framing, not an allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// FNV-1a (64-bit) over a byte slice — the per-record checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// One xorshift64* step — the store's only source of (deterministic)
/// randomness, used by fault plans and jitter schedules.
pub fn xorshift64(mut x: u64) -> u64 {
    x = x.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Renders the 12-byte segment header.
pub fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(MAGIC);
    h[8..].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// Encodes one record frame: `len | kind | key_len | key | value | checksum`.
pub fn encode_record(kind: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let payload_len = 1 + 4 + key.len() + value.len();
    assert!(
        payload_len as u64 <= MAX_RECORD_LEN as u64,
        "record exceeds MAX_RECORD_LEN"
    );
    let mut frame = Vec::with_capacity(4 + payload_len + 8);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
    frame.extend_from_slice(key);
    frame.extend_from_slice(value);
    let checksum = fnv1a64(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

/// The footer value of a sealed segment: record count + cumulative
/// digest of every record checksum, in write order.
pub fn encode_footer_value(records: u64, digest: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&records.to_le_bytes());
    v.extend_from_slice(&digest.to_le_bytes());
    v
}

/// One record recovered from a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Record kind (never [`KIND_FOOTER`]; footers are consumed by the
    /// scanner).
    pub kind: u8,
    /// The record key.
    pub key: Vec<u8>,
    /// The record value.
    pub value: Vec<u8>,
}

/// What a scan found in one segment.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// Records that passed their checksum, in write order.
    pub records: Vec<ScannedRecord>,
    /// Byte length of the valid prefix (records after this point are
    /// damaged or missing; the active segment is truncated here).
    pub valid_len: u64,
    /// Records whose checksum failed but whose framing survived — they
    /// are skipped, never trusted, and their entries recompute.
    pub quarantined: u64,
    /// Trailing bytes that do not form a complete record (a crash
    /// mid-append) — truncated away on the active segment.
    pub torn_tail_bytes: u64,
    /// Bytes abandoned because a length prefix was implausible (framing
    /// lost mid-segment; everything after recomputes).
    pub lost_framing_bytes: u64,
    /// Whether the header was missing or unrecognized (the whole
    /// segment is then quarantined).
    pub bad_header: bool,
    /// Whether a seal footer was present and its counts matched.
    pub sealed: bool,
    /// Whether a seal footer was present but disagreed with the scan.
    pub bad_seal: bool,
    /// Cumulative digest of the recovered record checksums (what a
    /// future seal footer must match).
    pub digest: u64,
}

/// Scans one segment image, classifying every byte as recovered record,
/// quarantined record, torn tail, or lost framing. Never panics on any
/// input.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan::default();
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != MAGIC
        || bytes[8..HEADER_LEN] != VERSION.to_le_bytes()
    {
        // Wrong magic *or* an unrecognized version: this scanner only
        // understands layout v1, so parsing anything else would be a
        // guess. Quarantine the whole segment instead.
        scan.bad_header = true;
        scan.valid_len = 0;
        return scan;
    }
    let mut offset = HEADER_LEN;
    scan.valid_len = offset as u64;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 4 {
            scan.torn_tail_bytes = remaining as u64;
            return scan;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        if !(5..=MAX_RECORD_LEN).contains(&len) {
            // The length prefix itself is implausible: framing is lost
            // from here on. Give up on the rest of the segment; the
            // dropped entries recompute on demand.
            scan.lost_framing_bytes = remaining as u64;
            return scan;
        }
        let frame_len = 4 + len as usize + 8;
        if remaining < frame_len {
            scan.torn_tail_bytes = remaining as u64;
            return scan;
        }
        let payload = &bytes[offset + 4..offset + 4 + len as usize];
        let stored = u64::from_le_bytes(
            bytes[offset + 4 + len as usize..offset + frame_len]
                .try_into()
                .expect("8 bytes"),
        );
        let computed = fnv1a64(&bytes[offset..offset + 4 + len as usize]);
        offset += frame_len;
        if stored != computed {
            scan.quarantined += 1;
            // Framing looked intact, so keep scanning at the next frame;
            // the damaged record itself is never trusted.
            scan.valid_len = offset as u64;
            continue;
        }
        scan.valid_len = offset as u64;
        let kind = payload[0];
        let key_len = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
        if 5 + key_len > payload.len() {
            // Checksum passed but the interior framing is inconsistent —
            // only possible through an encoder bug or an engineered
            // collision. Quarantine rather than trust it.
            scan.quarantined += 1;
            continue;
        }
        let key = payload[5..5 + key_len].to_vec();
        let value = payload[5 + key_len..].to_vec();
        if kind == KIND_FOOTER {
            if value.len() == 16 {
                let records = u64::from_le_bytes(value[..8].try_into().expect("8 bytes"));
                let digest = u64::from_le_bytes(value[8..].try_into().expect("8 bytes"));
                if records == scan.records.len() as u64 && digest == scan.digest {
                    scan.sealed = true;
                } else {
                    scan.bad_seal = true;
                }
            } else {
                scan.bad_seal = true;
            }
            continue;
        }
        scan.digest = fold_digest(scan.digest, stored);
        scan.records.push(ScannedRecord { kind, key, value });
    }
    scan
}

/// Folds one record checksum into a segment's cumulative digest (the
/// incremental form of what [`scan_segment`] recomputes).
pub fn fold_digest(digest: u64, record_checksum: u64) -> u64 {
    let mut acc = digest.to_le_bytes().to_vec();
    acc.extend_from_slice(&record_checksum.to_le_bytes());
    fnv1a64(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_with(records: &[(u8, &[u8], &[u8])]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        for (kind, key, value) in records {
            bytes.extend_from_slice(&encode_record(*kind, key, value));
        }
        bytes
    }

    #[test]
    fn roundtrip_scan_recovers_all_records() {
        let bytes = segment_with(&[(1, b"alpha", b"one"), (2, b"beta", b"two")]);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].key, b"alpha");
        assert_eq!(scan.records[1].value, b"two");
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.quarantined, 0);
        assert_eq!(scan.torn_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_at_every_cut_point_truncates_cleanly() {
        let full = segment_with(&[(1, b"k1", b"v1"), (1, b"k2", b"v2")]);
        let first_record_end = HEADER_LEN + encode_record(1, b"k1", b"v1").len();
        for cut in HEADER_LEN..full.len() {
            let scan = scan_segment(&full[..cut]);
            assert!(!scan.bad_header);
            let expect_records = usize::from(cut >= first_record_end);
            assert_eq!(scan.records.len(), expect_records, "cut at {cut}");
            let expected_valid = if cut >= first_record_end {
                first_record_end
            } else {
                HEADER_LEN
            };
            assert_eq!(scan.valid_len, expected_valid as u64, "cut at {cut}");
            assert_eq!(
                scan.torn_tail_bytes,
                (cut - expected_valid) as u64,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_is_quarantined_and_scan_continues() {
        let r1 = encode_record(1, b"k1", b"value-one");
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&r1);
        bytes.extend_from_slice(&encode_record(1, b"k2", b"value-two"));
        // Flip a bit inside the first record's value.
        bytes[HEADER_LEN + 12] ^= 0x10;
        let scan = scan_segment(&bytes);
        assert_eq!(scan.quarantined, 1);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].key, b"k2");
    }

    #[test]
    fn implausible_length_prefix_abandons_rest() {
        let mut bytes = segment_with(&[(1, b"k1", b"v1")]);
        let good_len = bytes.len();
        let mut broken = encode_record(1, b"k2", b"v2");
        broken[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&broken);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good_len as u64);
        assert!(scan.lost_framing_bytes > 0);
    }

    #[test]
    fn bad_magic_quarantines_whole_segment() {
        let mut bytes = segment_with(&[(1, b"k", b"v")]);
        bytes[0] = b'X';
        let scan = scan_segment(&bytes);
        assert!(scan.bad_header);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn valid_footer_marks_sealed() {
        let r = encode_record(7, b"k", b"v");
        let checksum = fnv1a64(&r[..r.len() - 8]);
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&r);
        let digest = fold_digest(0, checksum);
        bytes.extend_from_slice(&encode_record(
            KIND_FOOTER,
            b"",
            &encode_footer_value(1, digest),
        ));
        let scan = scan_segment(&bytes);
        assert!(scan.sealed);
        assert!(!scan.bad_seal);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn mismatched_footer_flags_bad_seal() {
        let mut bytes = segment_with(&[(7, b"k", b"v")]);
        bytes.extend_from_slice(&encode_record(
            KIND_FOOTER,
            b"",
            &encode_footer_value(99, 12345),
        ));
        let scan = scan_segment(&bytes);
        assert!(!scan.sealed);
        assert!(scan.bad_seal);
    }
}
