//! The [`Store`]: a crash-safe, append-only, last-write-wins key/value
//! log with an in-memory index.

use crate::io::{FileIo, SegmentFile, StoreIo};
use crate::segment::{
    self, encode_footer_value, encode_record, fnv1a64, fold_digest, header_bytes, scan_segment,
    KIND_FOOTER,
};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Default rotation threshold for the active segment.
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 64 << 20;

/// The in-memory index: `(kind, key)` → last value written.
type Index = HashMap<(u8, Box<[u8]>), Box<[u8]>>;

/// What recovery found (and repaired) while opening a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments present on open.
    pub segments: u32,
    /// Records that passed their checksum and entered the index.
    pub records_recovered: u64,
    /// Records whose checksum failed — skipped, their entries recompute.
    pub records_quarantined: u64,
    /// Torn-tail bytes truncated from the active segment.
    pub torn_tail_bytes: u64,
    /// Bytes abandoned to lost framing (an implausible length prefix).
    pub lost_framing_bytes: u64,
    /// Segments with a missing/unrecognized header, quarantined whole.
    pub corrupt_segments: u32,
    /// Segments carrying a valid seal footer.
    pub sealed_segments: u32,
    /// Segments whose seal footer disagreed with their contents.
    pub bad_seals: u32,
}

impl RecoveryReport {
    /// Whether recovery found any damage at all.
    pub fn damaged(&self) -> bool {
        self.records_quarantined > 0
            || self.torn_tail_bytes > 0
            || self.lost_framing_bytes > 0
            || self.corrupt_segments > 0
            || self.bad_seals > 0
    }
}

/// A crash-safe, append-only key/value store over numbered segments.
///
/// Writes append checksummed records to the active segment ([`Store::put`])
/// and become durable at the next [`Store::sync`]. Reads are served from
/// an in-memory index rebuilt on open by scanning every segment
/// (last write wins). Damage never aborts an open: torn tails are
/// truncated, corrupt records quarantined — see the crate docs for the
/// recovery semantics.
pub struct Store {
    io: Box<dyn StoreIo>,
    active: Box<dyn SegmentFile>,
    active_id: u32,
    active_len: u64,
    active_records: u64,
    active_digest: u64,
    max_segment_bytes: u64,
    index: Index,
    recovery: RecoveryReport,
    dirty: bool,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("entries", &self.index.len())
            .field("active_segment", &self.active_id)
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl Store {
    /// Opens (creating if needed) a store in the given directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open_with_io(Box::new(FileIo::new(dir.as_ref())?))
    }

    /// Opens a store over an arbitrary [`StoreIo`] — the seam the
    /// fault-injection harness uses.
    pub fn open_with_io(mut io: Box<dyn StoreIo>) -> io::Result<Store> {
        let ids = io.list_segments()?;
        let mut recovery = RecoveryReport {
            segments: ids.len() as u32,
            ..RecoveryReport::default()
        };
        let mut index = HashMap::new();
        let mut active_state: Option<(u32, u64, u64, u64, bool)> = None;
        for (position, &id) in ids.iter().enumerate() {
            let mut segment = io.open_segment(id)?;
            let bytes = segment.read_all()?;
            let scan = scan_segment(&bytes);
            if scan.bad_header {
                recovery.corrupt_segments += 1;
                continue;
            }
            recovery.records_recovered += scan.records.len() as u64;
            recovery.records_quarantined += scan.quarantined;
            recovery.lost_framing_bytes += scan.lost_framing_bytes;
            recovery.sealed_segments += u32::from(scan.sealed);
            recovery.bad_seals += u32::from(scan.bad_seal);
            let is_last = position == ids.len() - 1;
            if is_last {
                recovery.torn_tail_bytes += scan.torn_tail_bytes;
                if bytes.len() as u64 != scan.valid_len {
                    // Truncate the damage so appended records re-establish
                    // a well-formed tail.
                    segment.truncate_to(scan.valid_len)?;
                }
                active_state = Some((
                    id,
                    scan.valid_len,
                    scan.records.len() as u64 + scan.quarantined,
                    scan.digest,
                    scan.sealed,
                ));
            } else {
                // Sealed (or abandoned) older segments are read-only; any
                // trailing damage just means those bytes never made it.
                recovery.torn_tail_bytes += scan.torn_tail_bytes;
            }
            for record in scan.records {
                index.insert(
                    (record.kind, record.key.into_boxed_slice()),
                    record.value.into_boxed_slice(),
                );
            }
        }

        // Resolve the active segment: continue the last unsealed one, or
        // start fresh after a sealed/missing tail.
        let (active_id, fresh) = match active_state {
            Some((id, _, _, _, sealed)) if sealed => (id + 1, true),
            Some((id, _, _, _, _)) => (id, false),
            None => (ids.last().map_or(0, |id| id + 1), true),
        };
        let mut active = io.open_segment(active_id)?;
        let (active_len, active_records, active_digest) = if fresh {
            active.append(&header_bytes())?;
            (segment::HEADER_LEN as u64, 0, 0)
        } else {
            let (_, len, records, digest, _) = active_state.expect("unsealed active");
            (len, records, digest)
        };

        Ok(Store {
            io,
            active,
            active_id,
            active_len,
            active_records,
            active_digest,
            max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
            index,
            recovery,
            dirty: fresh,
        })
    }

    /// Overrides the active-segment rotation threshold.
    pub fn with_max_segment_bytes(mut self, bytes: u64) -> Self {
        self.max_segment_bytes = bytes.max(segment::HEADER_LEN as u64 + 1);
        self
    }

    /// What recovery found while opening this store.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The value last written for `(kind, key)`, if any.
    pub fn get(&self, kind: u8, key: &[u8]) -> Option<&[u8]> {
        self.index.get(&(kind, Box::from(key))).map(|v| &**v)
    }

    /// Visits every live entry of one kind (iteration order is
    /// unspecified).
    pub fn for_each(&self, kind: u8, mut f: impl FnMut(&[u8], &[u8])) {
        for ((k, key), value) in &self.index {
            if *k == kind {
                f(key, value);
            }
        }
    }

    /// Appends one entry. Returns `false` (writing nothing) when the
    /// identical value is already stored under the key — warm re-runs
    /// re-put everything they read, and the dedup keeps the log from
    /// growing on replay.
    ///
    /// # Panics
    ///
    /// Panics on the reserved footer kind (`0`).
    ///
    /// # Errors
    ///
    /// Propagates IO failures from the segment append; the in-memory
    /// index is only updated after the bytes reached the segment.
    pub fn put(&mut self, kind: u8, key: &[u8], value: &[u8]) -> io::Result<bool> {
        assert!(kind != KIND_FOOTER, "kind 0 is reserved for seal footers");
        if self.get(kind, key) == Some(value) {
            return Ok(false);
        }
        let frame = encode_record(kind, key, value);
        self.active.append(&frame)?;
        let checksum = fnv1a64(&frame[..frame.len() - 8]);
        self.active_digest = fold_digest(self.active_digest, checksum);
        self.active_records += 1;
        self.active_len += frame.len() as u64;
        self.dirty = true;
        self.index.insert((kind, Box::from(key)), Box::from(value));
        if self.active_len >= self.max_segment_bytes {
            self.rotate()?;
        }
        Ok(true)
    }

    /// Seals the active segment (footer + fsync) and starts the next one.
    fn rotate(&mut self) -> io::Result<()> {
        let footer = encode_record(
            KIND_FOOTER,
            b"",
            &encode_footer_value(self.active_records, self.active_digest),
        );
        self.active.append(&footer)?;
        self.active.sync()?;
        self.active_id += 1;
        self.active = self.io.open_segment(self.active_id)?;
        self.active.append(&header_bytes())?;
        self.active_len = segment::HEADER_LEN as u64;
        self.active_records = 0;
        self.active_digest = 0;
        self.dirty = true;
        Ok(())
    }

    /// Compare-and-put: appends `value` under `(kind, key)` only when
    /// the currently indexed value equals `expected` (`None` meaning the
    /// key must be absent). Returns whether the swap landed.
    ///
    /// The comparison and the append happen under the store's
    /// single-writer discipline, so two callers racing through the same
    /// `Store` handle serialize: exactly one of two conflicting claims
    /// for an absent key wins. This is the primitive lease claims build
    /// on — claim with `expected = None`, renew with `expected =
    /// Some(previous lease bytes)`.
    ///
    /// # Panics
    ///
    /// Panics on the reserved footer kind (`0`).
    ///
    /// # Errors
    ///
    /// Propagates IO failures from the segment append; on error the
    /// index is unchanged and the swap did not land.
    pub fn compare_and_put(
        &mut self,
        kind: u8,
        key: &[u8],
        expected: Option<&[u8]>,
        value: &[u8],
    ) -> io::Result<bool> {
        if self.get(kind, key) != expected {
            return Ok(false);
        }
        // `put` dedups an identical value; the swap still "landed" then
        // because the stored state equals the requested state.
        self.put(kind, key, value)?;
        Ok(true)
    }

    /// Flushes and fsyncs the active segment — the durability barrier.
    /// Records appended before a completed `sync` survive any crash.
    ///
    /// # Errors
    ///
    /// Propagates the underlying fsync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.active.sync()?;
            self.dirty = false;
        }
        Ok(())
    }
}

/// A read-only, point-in-time view of a store directory.
///
/// Unlike [`Store::open`], loading a snapshot never creates files and
/// never truncates torn tails, so it is safe to point at a directory
/// another process is *actively appending to*: a partially written
/// record at the tail is skipped logically (classified as torn, exactly
/// as a full open would), not repaired on disk. A missing directory
/// loads as an empty snapshot — a worker that has not started yet looks
/// the same as one that has journalled nothing.
///
/// Supervisors poll worker journals through snapshots; the owning
/// worker keeps sole write access through its [`Store`].
pub struct Snapshot {
    index: Index,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("entries", &self.index.len())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl Snapshot {
    /// Loads a read-only view of the segments currently in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates IO failures reading existing segment files. A missing
    /// directory is not an error (empty snapshot).
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Snapshot> {
        let dir = dir.as_ref();
        let mut ids: Vec<u32> = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for entry in entries {
                    let name = entry?.file_name();
                    let name = name.to_string_lossy();
                    if let Some(rest) = name
                        .strip_prefix("seg-")
                        .and_then(|r| r.strip_suffix(".picstore"))
                    {
                        if let Ok(id) = rest.parse::<u32>() {
                            ids.push(id);
                        }
                    }
                }
            }
            Err(err) if err.kind() == io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }
        ids.sort_unstable();

        let mut recovery = RecoveryReport {
            segments: ids.len() as u32,
            ..RecoveryReport::default()
        };
        let mut index: Index = HashMap::new();
        for &id in &ids {
            let bytes = std::fs::read(dir.join(format!("seg-{id:06}.picstore")))?;
            let scan = scan_segment(&bytes);
            if scan.bad_header {
                recovery.corrupt_segments += 1;
                continue;
            }
            recovery.records_recovered += scan.records.len() as u64;
            recovery.records_quarantined += scan.quarantined;
            recovery.lost_framing_bytes += scan.lost_framing_bytes;
            recovery.torn_tail_bytes += scan.torn_tail_bytes;
            recovery.sealed_segments += u32::from(scan.sealed);
            recovery.bad_seals += u32::from(scan.bad_seal);
            for record in scan.records {
                index.insert(
                    (record.kind, record.key.into_boxed_slice()),
                    record.value.into_boxed_slice(),
                );
            }
        }
        Ok(Snapshot { index, recovery })
    }

    /// What the scan classified (nothing was repaired).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The value last written for `(kind, key)`, if any.
    pub fn get(&self, kind: u8, key: &[u8]) -> Option<&[u8]> {
        self.index.get(&(kind, Box::from(key))).map(|v| &**v)
    }

    /// Visits every live entry of one kind (iteration order is
    /// unspecified).
    pub fn for_each(&self, kind: u8, mut f: impl FnMut(&[u8], &[u8])) {
        for ((k, key), value) in &self.index {
            if *k == kind {
                f(key, value);
            }
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; crashes are what the
        // recovery scan is for.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultPlan, FaultyIo};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "picbench-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let mut store = Store::open(&dir).unwrap();
            assert!(store.put(1, b"alpha", b"one").unwrap());
            assert!(store.put(2, b"beta", b"two").unwrap());
            assert!(store.put(1, b"alpha", b"uno").unwrap(), "overwrite appends");
            store.sync().unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get(1, b"alpha"), Some(&b"uno"[..]));
        assert_eq!(store.get(2, b"beta"), Some(&b"two"[..]));
        assert_eq!(store.get(3, b"beta"), None, "kinds are namespaces");
        assert!(!store.recovery().damaged());
        assert_eq!(store.recovery().records_recovered, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_put_is_deduplicated() {
        let dir = temp_dir("dedup");
        let mut store = Store::open(&dir).unwrap();
        assert!(store.put(1, b"k", b"v").unwrap());
        assert!(!store.put(1, b"k", b"v").unwrap());
        let before = store.active_len;
        assert!(!store.put(1, b"k", b"v").unwrap());
        assert_eq!(store.active_len, before, "dedup writes nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_and_survives_reopen() {
        let dir = temp_dir("rotate");
        {
            let mut store = Store::open(&dir).unwrap().with_max_segment_bytes(256);
            for i in 0..32u32 {
                store
                    .put(1, &i.to_le_bytes(), format!("value-{i}").as_bytes())
                    .unwrap();
            }
            store.sync().unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 32);
        assert!(store.recovery().segments > 1, "rotation produced segments");
        assert!(store.recovery().sealed_segments >= 1);
        assert_eq!(store.recovery().bad_seals, 0);
        for i in 0..32u32 {
            assert_eq!(
                store.get(1, &i.to_le_bytes()),
                Some(format!("value-{i}").as_bytes())
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_write_recovers_as_torn_tail() {
        let dir = temp_dir("shortwrite");
        {
            let io = FaultyIo::new(
                Box::new(FileIo::new(&dir).unwrap()),
                FaultPlan {
                    seed: 42,
                    // Append 1 is the fresh segment header; fail the third
                    // record append.
                    short_write_at: Some(4),
                    ..FaultPlan::default()
                },
            );
            let mut store = Store::open_with_io(Box::new(io)).unwrap();
            store.put(1, b"k1", b"v1").unwrap();
            store.put(1, b"k2", b"v2").unwrap();
            let err = store.put(1, b"k3", b"v3").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WriteZero);
            // Simulated crash: drop without sync.
            std::mem::forget(store);
        }
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.get(1, b"k1"), Some(&b"v1"[..]));
        assert_eq!(store.get(1, b"k2"), Some(&b"v2"[..]));
        assert_eq!(store.get(1, b"k3"), None, "torn record never surfaces");
        // The truncated tail must be appendable again.
        store.put(1, b"k3", b"v3-recomputed").unwrap();
        store.sync().unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get(1, b"k3"), Some(&b"v3-recomputed"[..]));
        assert!(!store.recovery().damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_error_surfaces_without_corrupting_index() {
        let dir = temp_dir("ioerror");
        let io = FaultyIo::new(
            Box::new(FileIo::new(&dir).unwrap()),
            FaultPlan {
                seed: 7,
                io_error_at: Some((3, io::ErrorKind::Other)),
                ..FaultPlan::default()
            },
        );
        let mut store = Store::open_with_io(Box::new(io)).unwrap();
        store.put(1, b"k1", b"v1").unwrap();
        let err = store.put(1, b"k2", b"v2").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(store.get(1, b"k2"), None, "failed put leaves no entry");
        store.put(1, b"k2", b"retry").unwrap();
        assert_eq!(store.get(1, b"k2"), Some(&b"retry"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_time_bit_flip_quarantines_one_record() {
        let dir = temp_dir("bitflip");
        {
            let mut store = Store::open(&dir).unwrap();
            store.put(1, b"k1", b"v1").unwrap();
            store.put(1, b"k2", b"v2").unwrap();
            store.sync().unwrap();
        }
        // Flip a bit inside the first record's frame on read.
        let io = FaultyIo::new(
            Box::new(FileIo::new(&dir).unwrap()),
            FaultPlan {
                seed: 1,
                flip_bit_on_read: Some((segment::HEADER_LEN as u64 + 6) * 8),
                ..FaultPlan::default()
            },
        );
        let store = Store::open_with_io(Box::new(io)).unwrap();
        assert_eq!(store.recovery().records_quarantined, 1);
        assert_eq!(store.get(1, b"k1"), None, "damaged record never trusted");
        assert_eq!(store.get(1, b"k2"), Some(&b"v2"[..]), "rest recovered");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_and_put_claims_and_fences() {
        let dir = temp_dir("cas");
        let mut store = Store::open(&dir).unwrap();
        // Claim an absent key.
        assert!(store.compare_and_put(5, b"lease", None, b"gen-0").unwrap());
        // A second claim against "absent" loses.
        assert!(!store.compare_and_put(5, b"lease", None, b"rival").unwrap());
        assert_eq!(store.get(5, b"lease"), Some(&b"gen-0"[..]));
        // Renew against the exact current bytes wins...
        assert!(store
            .compare_and_put(5, b"lease", Some(b"gen-0"), b"gen-1")
            .unwrap());
        // ...and a renew against stale bytes is fenced off.
        assert!(!store
            .compare_and_put(5, b"lease", Some(b"gen-0"), b"late")
            .unwrap());
        assert_eq!(store.get(5, b"lease"), Some(&b"gen-1"[..]));
        // Swapping to the value already stored is a successful no-op.
        assert!(store
            .compare_and_put(5, b"lease", Some(b"gen-1"), b"gen-1")
            .unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_reads_live_unsynced_appends_without_mutating() {
        let dir = temp_dir("snapshot");
        let mut store = Store::open(&dir).unwrap();
        store.put(1, b"k1", b"v1").unwrap();
        store.put(1, b"k2", b"v2").unwrap();
        // No sync: the snapshot still sees the appended bytes through
        // the page cache, like a supervisor polling a live worker.
        let snap = Snapshot::load(&dir).unwrap();
        assert_eq!(snap.get(1, b"k1"), Some(&b"v1"[..]));
        assert_eq!(snap.get(1, b"k2"), Some(&b"v2"[..]));
        assert_eq!(snap.len(), 2);
        assert!(!snap.recovery().damaged());
        // The writer keeps appending afterwards, unaffected.
        store.put(1, b"k3", b"v3").unwrap();
        store.sync().unwrap();
        assert_eq!(Snapshot::load(&dir).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_of_missing_dir_is_empty() {
        let dir = temp_dir("snapshot-missing");
        let snap = Snapshot::load(&dir).unwrap();
        assert!(snap.is_empty());
        assert_eq!(snap.recovery().segments, 0);
        assert!(!dir.exists(), "loading a snapshot must not create files");
    }

    #[test]
    fn snapshot_skips_torn_tail_without_truncating() {
        let dir = temp_dir("snapshot-torn");
        {
            let mut store = Store::open(&dir).unwrap();
            store.put(1, b"k1", b"v1").unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash mid-append by tacking garbage onto the tail.
        let seg = dir.join("seg-000000.picstore");
        let mut bytes = std::fs::read(&seg).unwrap();
        let intact_len = bytes.len() as u64;
        // Three bytes cannot even hold a length prefix: a torn tail.
        bytes.extend_from_slice(&[0x2a; 3]);
        std::fs::write(&seg, &bytes).unwrap();

        let snap = Snapshot::load(&dir).unwrap();
        assert_eq!(snap.get(1, b"k1"), Some(&b"v1"[..]));
        assert!(snap.recovery().torn_tail_bytes > 0);
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            intact_len + 3,
            "snapshot must never repair the file"
        );
        // A full open afterwards still truncates as usual.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get(1, b"k1"), Some(&b"v1"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_fault_plans_never_panic_recovery() {
        for seed in 0..16u64 {
            let dir = temp_dir(&format!("seeded-{seed}"));
            {
                let io = FaultyIo::new(
                    Box::new(FileIo::new(&dir).unwrap()),
                    FaultPlan::seeded(seed, 12),
                );
                // The fault may hit the very first append (the fresh
                // segment header), failing open itself — also a crash
                // recovery below must cope with.
                if let Ok(mut store) = Store::open_with_io(Box::new(io)) {
                    for i in 0..10u32 {
                        // Faults may surface as errors; recovery below
                        // must cope with whatever landed on disk.
                        let _ = store.put(1, &i.to_le_bytes(), &[seed as u8; 24]);
                    }
                    std::mem::forget(store);
                }
            }
            let mut store = Store::open(&dir).unwrap();
            // Whatever was lost recomputes: every put must succeed now.
            for i in 0..10u32 {
                store.put(1, &i.to_le_bytes(), &[seed as u8; 24]).unwrap();
            }
            store.sync().unwrap();
            let store = Store::open(&dir).unwrap();
            // Quarantined bytes may persist in the append-only log, but
            // after repair no tail damage remains and every entry reads.
            assert_eq!(store.recovery().torn_tail_bytes, 0, "seed {seed}");
            assert_eq!(store.recovery().lost_framing_bytes, 0, "seed {seed}");
            assert_eq!(store.len(), 10, "seed {seed}");
            for i in 0..10u32 {
                assert_eq!(
                    store.get(1, &i.to_le_bytes()),
                    Some(&[seed as u8; 24][..]),
                    "seed {seed}"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
