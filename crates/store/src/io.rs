//! The injectable IO layer under the store.
//!
//! [`Store`](crate::Store) never touches the filesystem directly: every
//! byte flows through a [`StoreIo`] (a directory of numbered segments)
//! and the [`SegmentFile`]s it opens. [`FileIo`] is the production
//! implementation; [`FaultyIo`] decorates any other implementation with
//! deterministic fault injection — short writes that simulate a crash
//! mid-append, bit flips that simulate media corruption on read, and
//! outright `io::Error`s at scheduled points — so recovery paths are
//! testable without real power cuts.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One open segment file: an append-only byte sequence that can be read
/// back in full, truncated (recovery only) and fsync'd.
pub trait SegmentFile: Send {
    /// Reads the entire segment.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Truncates the segment to `len` bytes (torn-tail recovery).
    fn truncate_to(&mut self, len: u64) -> io::Result<()>;
    /// Appends bytes at the end of the segment.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Flushes and fsyncs the segment to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A directory of numbered segments.
pub trait StoreIo: Send {
    /// The segment ids present, in ascending order.
    fn list_segments(&mut self) -> io::Result<Vec<u32>>;
    /// Opens (creating if absent) the segment with the given id.
    fn open_segment(&mut self, id: u32) -> io::Result<Box<dyn SegmentFile>>;
}

/// Production [`StoreIo`]: segments are `seg-NNNNNN.picstore` files in
/// one directory (created on open if missing).
#[derive(Debug)]
pub struct FileIo {
    dir: PathBuf,
}

impl FileIo {
    /// Opens (creating if needed) the store directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileIo { dir })
    }

    fn segment_path(&self, id: u32) -> PathBuf {
        self.dir.join(format!("seg-{id:06}.picstore"))
    }
}

impl StoreIo for FileIo {
    fn list_segments(&mut self) -> io::Result<Vec<u32>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".picstore"))
            {
                if let Ok(id) = rest.parse::<u32>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn open_segment(&mut self, id: u32) -> io::Result<Box<dyn SegmentFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.segment_path(id))?;
        Ok(Box::new(FileSegment { file }))
    }
}

struct FileSegment {
    file: File,
}

impl SegmentFile for FileSegment {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// The deterministic fault schedule of a [`FaultyIo`].
///
/// Ordinals are 1-based and counted across every segment the decorated
/// IO opens, so a plan addresses "the Nth append since the store opened"
/// regardless of rotation.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the injected-fault geometry (short-write prefix length).
    pub seed: u64,
    /// The Nth append writes only a seeded prefix of its bytes and then
    /// fails — the on-disk image is exactly what a crash mid-write
    /// leaves behind (a torn tail).
    pub short_write_at: Option<u64>,
    /// The Nth IO operation (append or sync) fails outright with the
    /// given [`io::ErrorKind`], writing nothing.
    pub io_error_at: Option<(u64, io::ErrorKind)>,
    /// On every `read_all`, flip the bit at this absolute bit offset (if
    /// inside the segment) — simulated media corruption, which recovery
    /// must quarantine via the per-record checksum.
    pub flip_bit_on_read: Option<u64>,
}

impl FaultPlan {
    /// A seeded plan: one short write and one bit flip at
    /// xorshift-derived points within the given horizon of operations.
    pub fn seeded(seed: u64, op_horizon: u64) -> Self {
        let horizon = op_horizon.max(1);
        let a = crate::segment::xorshift64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let b = crate::segment::xorshift64(a);
        FaultPlan {
            seed,
            short_write_at: Some(a % horizon + 1),
            io_error_at: None,
            flip_bit_on_read: Some(b % (horizon * 64).max(1)),
        }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    appends: u64,
    ops: u64,
}

/// A [`StoreIo`] decorator that injects faults per a [`FaultPlan`].
pub struct FaultyIo {
    inner: Box<dyn StoreIo>,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyIo {
    /// Decorates an IO layer with the given fault schedule.
    pub fn new(inner: Box<dyn StoreIo>, plan: FaultPlan) -> Self {
        FaultyIo {
            inner,
            plan,
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }
}

impl StoreIo for FaultyIo {
    fn list_segments(&mut self) -> io::Result<Vec<u32>> {
        self.inner.list_segments()
    }

    fn open_segment(&mut self, id: u32) -> io::Result<Box<dyn SegmentFile>> {
        let inner = self.inner.open_segment(id)?;
        Ok(Box::new(FaultySegment {
            inner,
            plan: self.plan.clone(),
            state: Arc::clone(&self.state),
        }))
    }
}

struct FaultySegment {
    inner: Box<dyn SegmentFile>,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultySegment {
    fn next_op(&self) -> u64 {
        let mut state = self.state.lock().expect("fault state poisoned");
        state.ops += 1;
        state.ops
    }
}

impl SegmentFile for FaultySegment {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read_all()?;
        if let Some(bit) = self.plan.flip_bit_on_read {
            let (byte, shift) = ((bit / 8) as usize, (bit % 8) as u32);
            if byte < bytes.len() {
                bytes[byte] ^= 1 << shift;
            }
        }
        Ok(bytes)
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate_to(len)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let op = self.next_op();
        let append_no = {
            let mut state = self.state.lock().expect("fault state poisoned");
            state.appends += 1;
            state.appends
        };
        if let Some((at, kind)) = self.plan.io_error_at {
            if op == at {
                return Err(io::Error::new(kind, "injected io error"));
            }
        }
        if self.plan.short_write_at == Some(append_no) && !data.is_empty() {
            // Crash mid-write: a seeded prefix lands on disk, the rest is
            // lost, and the caller sees the failure.
            let keep =
                (crate::segment::xorshift64(self.plan.seed ^ append_no) as usize) % data.len();
            self.inner.append(&data[..keep])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write (crash mid-append)",
            ));
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        let op = self.next_op();
        if let Some((at, kind)) = self.plan.io_error_at {
            if op == at {
                return Err(io::Error::new(kind, "injected io error"));
            }
        }
        self.inner.sync()
    }
}
