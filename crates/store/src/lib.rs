//! Crash-safe, append-only, content-addressed storage for PICBench-rs.
//!
//! This crate is a generic byte-level key/value log: it knows nothing
//! about netlists, verdicts or campaigns. `picbench-core` layers typed
//! codecs on top (see `picbench_core::persist`) and uses it as the disk
//! tier under the evaluation cache and as the campaign cell journal.
//!
//! # Segment format (version 1)
//!
//! A store is a directory of numbered segment files
//! (`seg-000000.picstore`, `seg-000001.picstore`, ...). Each segment is:
//!
//! ```text
//! header:  "PICSTOR1" (8 bytes) | version u32 LE (= 1)
//! record*: len u32 LE           -- payload length (kind..value)
//!          kind u8              -- record namespace; 0 is reserved
//!          key_len u32 LE
//!          key  [u8; key_len]
//!          value [u8; len - 5 - key_len]
//!          checksum u64 LE      -- FNV-1a over (len bytes ++ payload)
//! ```
//!
//! The last record of a *sealed* (rotated) segment is a footer
//! (`kind = 0`, empty key) whose value is the record count (`u64 LE`)
//! followed by the cumulative digest of every record checksum in write
//! order. Only the newest segment accepts appends; older segments are
//! immutable.
//!
//! # Invariants
//!
//! 1. **Append-only.** Bytes in a segment are never rewritten in place;
//!    an update appends a new record and last-write-wins at read time.
//!    The only mutation is truncating a torn tail off the *active*
//!    segment during recovery.
//! 2. **Checksummed.** Every record carries an FNV-1a checksum over its
//!    length prefix and payload; a record is only trusted if it
//!    verifies. Sealed segments additionally carry a footer digest over
//!    all record checksums.
//! 3. **Durability barrier.** [`Store::sync`] fsyncs the active segment.
//!    Records appended before a completed `sync` survive any crash;
//!    records after the last `sync` may be lost (and then recompute).
//! 4. **Recovery never panics.** Opening a store classifies damage
//!    instead of failing:
//!    - a *torn tail* (incomplete frame at the end of the active
//!      segment — a crash mid-append) is truncated away;
//!    - a *corrupt record* (checksum mismatch with intact framing — a
//!      bit flip) is quarantined and the scan continues at the next
//!      frame;
//!    - an *implausible length prefix* means framing is lost: the rest
//!      of that segment is abandoned;
//!    - a segment with a bad header is quarantined whole.
//!
//!    Everything quarantined simply recomputes on demand; corruption
//!    costs time, never correctness.
//!
//! # Fault injection
//!
//! All IO flows through the [`StoreIo`]/[`SegmentFile`] traits.
//! [`FaultyIo`] decorates any implementation with a deterministic
//! [`FaultPlan`] — short writes, scheduled `io::Error`s and read-time
//! bit flips — so every recovery path above is exercised in tests
//! without real power cuts.

mod io;
mod segment;
mod store;

pub use io::{FaultPlan, FaultyIo, FileIo, SegmentFile, StoreIo};
pub use segment::{fnv1a64, scan_segment, xorshift64, ScannedRecord, SegmentScan, KIND_FOOTER};
pub use store::{RecoveryReport, Snapshot, Store, DEFAULT_MAX_SEGMENT_BYTES};
