//! Property-based tests for the math kernels.

use picbench_math::{decomp, CMatrix, Complex, LuDecomposition, MeshScheme};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn complex_strategy() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

fn matrix_strategy(n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(complex_strategy(), n * n).prop_map(move |data| {
        CMatrix::from_fn(n, n, |r, c| data[r * n + c])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_multiplication_is_commutative_and_distributive(
        a in complex_strategy(),
        b in complex_strategy(),
        c in complex_strategy(),
    ) {
        prop_assert!((a * b - b * a).abs() < 1e-9);
        prop_assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-9);
    }

    #[test]
    fn complex_polar_roundtrip(z in complex_strategy()) {
        prop_assume!(z.abs() > 1e-9);
        let back = Complex::from_polar(z.abs(), z.arg());
        prop_assert!(back.approx_eq(z, 1e-9 * z.abs().max(1.0)));
    }

    #[test]
    fn matrix_transpose_involution(m in matrix_strategy(4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn dagger_reverses_products(a in matrix_strategy(3), b in matrix_strategy(3)) {
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn lu_solve_has_small_residual(m in matrix_strategy(5), seed in 0u64..1000) {
        // Skip (rare) near-singular draws.
        let lu = match LuDecomposition::factor(&m) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        prop_assume!(lu.det().abs() > 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let b: Vec<Complex> = (0..5)
            .map(|_| Complex::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let x = lu.solve(&b);
        let r = m.mul_vec(&x);
        for i in 0..5 {
            prop_assert!((r[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_is_two_sided(m in matrix_strategy(4)) {
        let lu = match LuDecomposition::factor(&m) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        prop_assume!(lu.det().abs() > 1e-6);
        let inv = lu.inverse();
        prop_assert!((&m * &inv).is_identity(1e-6));
        prop_assert!((&inv * &m).is_identity(1e-6));
    }

    #[test]
    fn decomposition_roundtrips_random_unitaries(
        seed in 0u64..10_000,
        n in 2usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = decomp::random_unitary(n, &mut rng);
        for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
            let mesh = decomp::decompose(&u, scheme).expect("unitary input");
            prop_assert_eq!(mesh.stage_count(), n * (n - 1) / 2);
            let err = mesh.rebuild().max_abs_diff(&u);
            prop_assert!(err < 1e-8, "{} rebuild error {err:.2e}", scheme);
        }
    }

    #[test]
    fn unitary_products_stay_unitary(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = decomp::random_unitary(4, &mut rng);
        let b = decomp::random_unitary(4, &mut rng);
        prop_assert!((&a * &b).is_unitary(1e-8));
    }
}
