//! Property-based tests for the math kernels.

use picbench_math::{decomp, CMatrix, Complex, LuDecomposition, MeshScheme};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn complex_strategy() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

fn matrix_strategy(n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(complex_strategy(), n * n)
        .prop_map(move |data| CMatrix::from_fn(n, n, |r, c| data[r * n + c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_multiplication_is_commutative_and_distributive(
        a in complex_strategy(),
        b in complex_strategy(),
        c in complex_strategy(),
    ) {
        prop_assert!((a * b - b * a).abs() < 1e-9);
        prop_assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-9);
    }

    #[test]
    fn complex_polar_roundtrip(z in complex_strategy()) {
        prop_assume!(z.abs() > 1e-9);
        let back = Complex::from_polar(z.abs(), z.arg());
        prop_assert!(back.approx_eq(z, 1e-9 * z.abs().max(1.0)));
    }

    #[test]
    fn matrix_transpose_involution(m in matrix_strategy(4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn dagger_reverses_products(a in matrix_strategy(3), b in matrix_strategy(3)) {
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn lu_solve_has_small_residual(m in matrix_strategy(5), seed in 0u64..1000) {
        // Skip (rare) near-singular draws.
        let lu = match LuDecomposition::factor(&m) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        prop_assume!(lu.det().abs() > 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let b: Vec<Complex> = (0..5)
            .map(|_| Complex::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let x = lu.solve(&b);
        let r = m.mul_vec(&x);
        for i in 0..5 {
            prop_assert!((r[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_is_two_sided(m in matrix_strategy(4)) {
        let lu = match LuDecomposition::factor(&m) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        prop_assume!(lu.det().abs() > 1e-6);
        let inv = lu.inverse();
        prop_assert!((&m * &inv).is_identity(1e-6));
        prop_assert!((&inv * &m).is_identity(1e-6));
    }

    #[test]
    fn decomposition_roundtrips_random_unitaries(
        seed in 0u64..10_000,
        n in 2usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = decomp::random_unitary(n, &mut rng);
        for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
            let mesh = decomp::decompose(&u, scheme).expect("unitary input");
            prop_assert_eq!(mesh.stage_count(), n * (n - 1) / 2);
            let err = mesh.rebuild().max_abs_diff(&u);
            prop_assert!(err < 1e-8, "{} rebuild error {err:.2e}", scheme);
        }
    }

    #[test]
    fn unitary_products_stay_unitary(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = decomp::random_unitary(4, &mut rng);
        let b = decomp::random_unitary(4, &mut rng);
        prop_assert!((&a * &b).is_unitary(1e-8));
    }

    // In-place kernels must match the allocating reference paths. The
    // workspace is reused across cases on purpose: stale state from a
    // previous (differently sized) system must never leak through.

    #[test]
    fn factor_into_matches_factor(m in matrix_strategy(6), m2 in matrix_strategy(4)) {
        let mut ws = LuDecomposition::empty();
        for m in [&m, &m2] {
            let reference = LuDecomposition::factor(m);
            let in_place = ws.factor_into(m);
            match (reference, in_place) {
                (Ok(reference), Ok(())) => {
                    let b: Vec<Complex> = (0..m.rows()).map(|i| Complex::new(i as f64, 1.0)).collect();
                    let want = reference.solve(&b);
                    let mut got = Vec::new();
                    ws.solve_into(&b, &mut got);
                    for (g, w) in got.iter().zip(&want) {
                        prop_assert!((*g - *w).abs() < 1e-12);
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "verdicts disagree: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn solve_matrix_into_matches_solve_matrix(a in matrix_strategy(5), b in matrix_strategy(5)) {
        let lu = match LuDecomposition::factor(&a) {
            Ok(lu) => lu,
            Err(_) => return Ok(()),
        };
        prop_assume!(lu.det().abs() > 1e-6);
        let want = lu.solve_matrix(&b);
        let mut got = CMatrix::zeros(0, 0);
        lu.solve_matrix_into(&b, &mut got);
        prop_assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn mul_into_matches_operator_mul(a in matrix_strategy(4), b in matrix_strategy(4)) {
        let mut out = CMatrix::zeros(2, 7); // deliberately wrong shape: mul_into reshapes
        a.mul_into(&b, &mut out);
        prop_assert!(out.max_abs_diff(&(&a * &b)) < 1e-12);
    }

    #[test]
    fn transpose_and_scale_in_place_match(a in matrix_strategy(5), k in complex_strategy()) {
        let mut t = CMatrix::zeros(0, 0);
        a.transpose_into(&mut t);
        prop_assert_eq!(t, a.transpose());
        let mut s = a.clone();
        s.scale_in_place(k);
        prop_assert!(s.max_abs_diff(&a.scale(k)) < 1e-12);
    }

    #[test]
    fn mul_vec_into_and_submatrix_into_match(a in matrix_strategy(5), v in proptest::collection::vec(complex_strategy(), 5)) {
        let mut out = Vec::new();
        a.mul_vec_into(&v, &mut out);
        let want = a.mul_vec(&v);
        for (g, w) in out.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-12);
        }
        let rows = [0usize, 2, 4];
        let cols = [1usize, 3];
        let mut sub = CMatrix::zeros(0, 0);
        a.submatrix_into(&rows, &cols, &mut sub);
        prop_assert_eq!(sub, a.submatrix(&rows, &cols));
    }
}
