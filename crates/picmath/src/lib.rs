//! # picbench-math
//!
//! Complex linear algebra for the PICBench-rs reproduction: a [`Complex`]
//! number type, dense [`CMatrix`] matrices, partial-pivot LU solves
//! ([`LuDecomposition`]) and unitary-to-MZI-mesh decompositions
//! ([`decomp`], Reck and Clements schemes).
//!
//! Everything is implemented in-repo (no external linear-algebra crates) and
//! sized for the workloads of a photonic circuit benchmark: matrices up to a
//! few hundred rows, evaluated thousands of times across wavelength sweeps.
//!
//! ## Example
//!
//! ```
//! use picbench_math::{decomp, CMatrix, Complex};
//!
//! // Synthesize a 4×4 DFT as a rectangular MZI mesh and verify it.
//! let target = decomp::dft_matrix(4);
//! let mesh = decomp::clements_decompose(&target)?;
//! assert!(mesh.rebuild().max_abs_diff(&target) < 1e-9);
//! # Ok::<(), decomp::DecomposeError>(())
//! ```

#![warn(missing_docs)]

mod complex;
pub mod decomp;
mod lu;
mod matrix;
pub mod simd;
pub mod sparse;

pub use complex::Complex;
pub use decomp::{DecomposeError, GivensFactor, MeshDecomposition, MeshScheme};
pub use lu::{inverse, solve, LuDecomposition, SingularMatrixError};
pub use matrix::CMatrix;
pub use simd::SimdLevel;
pub use sparse::{BlockSparseLu, BlockSymbolic, SplitComplexVec};

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Converts a wavelength in micrometres to an optical frequency in THz.
///
/// ```
/// use picbench_math::wavelength_um_to_thz;
/// let f = wavelength_um_to_thz(1.55);
/// assert!((f - 193.414).abs() < 1e-2);
/// ```
pub fn wavelength_um_to_thz(wavelength_um: f64) -> f64 {
    SPEED_OF_LIGHT_M_S / (wavelength_um * 1e-6) / 1e12
}

/// Converts a power ratio to decibels (`10·log10`), clamping zero to −300 dB.
///
/// ```
/// use picbench_math::power_ratio_to_db;
/// assert!((power_ratio_to_db(0.5) + 3.0103).abs() < 1e-3);
/// ```
pub fn power_ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        -300.0
    } else {
        10.0 * ratio.log10()
    }
}

/// Converts decibels to a power ratio (`10^{dB/10}`).
///
/// ```
/// use picbench_math::db_to_power_ratio;
/// assert!((db_to_power_ratio(-3.0103) - 0.5).abs() < 1e-4);
/// ```
pub fn db_to_power_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thz_conversion_is_monotone_decreasing() {
        assert!(wavelength_um_to_thz(1.51) > wavelength_um_to_thz(1.59));
    }

    #[test]
    fn db_roundtrip() {
        for r in [1.0, 0.5, 0.1, 1e-4] {
            let db = power_ratio_to_db(r);
            assert!((db_to_power_ratio(db) - r).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_power_clamps() {
        assert_eq!(power_ratio_to_db(0.0), -300.0);
        assert_eq!(power_ratio_to_db(-1.0), -300.0);
    }
}
