//! Block-compressed sparse LU for topology-structured scattering systems.
//!
//! The dense scattering solve factors the full `n_int × n_int` system
//! `(I − P·S_ii)` at every wavelength point even though the matrix is
//! overwhelmingly structural zeros: an instance's ports couple only to
//! the ports of the instances it is wired to, so the system is
//! *block-sparse* with the circuit's connectivity graph as its block
//! pattern. This module is the KLU-style escape hatch from that O(n³)
//! cost, split the way real circuit simulators split it:
//!
//! * [`BlockSymbolic::analyze`] — the **symbolic** phase, run once per
//!   topology: a fill-reducing elimination order over the block graph
//!   (greedy minimum degree, weighted by scalar block size, deterministic
//!   tie-breaks), followed by symbolic Gaussian elimination that computes
//!   the **static fill-in pattern**. The result is an immutable
//!   block-CSR description of the factor — stored blocks, value offsets,
//!   per-step column lists and a pre-resolved Schur-update schedule — so
//!   the numeric phase never searches for a block at solve time.
//! * [`BlockSparseLu`] — the **numeric** phase, run once per wavelength
//!   point on reused buffers: scatter values into the static pattern,
//!   factor with dense partial pivoting *inside* each diagonal block
//!   (pivoting never crosses blocks, so the structure is truly static),
//!   and solve whole panels of right-hand-side columns in one pass.
//!
//! One symbolic object serves every wavelength point of a sweep and every
//! worker thread; each [`BlockSparseLu`] is cheap per-worker state whose
//! buffers reach a high-water mark after the first factorization and
//! never allocate again — the same discipline as the dense
//! `SolveWorkspace` path.
//!
//! Scalar unknowns are addressed through [`BlockSymbolic::scalar_row`]
//! (block id + offset within the block → row in elimination order), so
//! callers can assemble and read back without ever materializing the
//! permutation themselves.
//!
//! ## Example
//!
//! ```
//! use picbench_math::{sparse::{BlockSymbolic, BlockSparseLu}, Complex};
//!
//! // Two 1×1 blocks coupled to each other: [[2, 1], [1, 2]].
//! let sym = BlockSymbolic::analyze(&[1, 1], &[(0, 1)]);
//! let mut lu = BlockSparseLu::new();
//! lu.reset(&sym);
//! lu.values_mut()[sym.entry_offset(0, 0, 0, 0).unwrap()] = Complex::real(2.0);
//! lu.values_mut()[sym.entry_offset(0, 1, 0, 0).unwrap()] = Complex::real(1.0);
//! lu.values_mut()[sym.entry_offset(1, 0, 0, 0).unwrap()] = Complex::real(1.0);
//! lu.values_mut()[sym.entry_offset(1, 1, 0, 0).unwrap()] = Complex::real(2.0);
//! lu.factor(&sym)?;
//! let mut rhs = [Complex::real(3.0), Complex::real(3.0)];
//! lu.solve_in_place(&sym, &mut rhs, 1);
//! assert!((rhs[sym.scalar_row(0, 0)] - Complex::ONE).abs() < 1e-12);
//! assert!((rhs[sym.scalar_row(1, 0)] - Complex::ONE).abs() < 1e-12);
//! # Ok::<(), picbench_math::SingularMatrixError>(())
//! ```

use crate::{Complex, SingularMatrixError};
use std::collections::BTreeSet;

/// One pre-resolved Schur-complement update `C_ij −= L_ik · U_kj`, with
/// every operand located by value offset at analysis time.
#[derive(Debug, Clone, Copy)]
struct SchurUpdate {
    /// Offset of the `L_ik` block (rows × s_k).
    l_off: usize,
    /// Offset of the `U_kj` block (s_k × cols) within the step's row tail.
    u_off: usize,
    /// Offset of the target block `C_ij` (rows × cols).
    t_off: usize,
    /// Scalar rows of the update (size of block `i`).
    rows: usize,
    /// Scalar columns of the update (size of block `j`).
    cols: usize,
}

/// The symbolic analysis of a block-sparse system: elimination order,
/// static fill pattern, value layout and update schedule. Immutable,
/// `Send + Sync`, built once per topology and shared by every numeric
/// factorization (one per wavelength point per worker).
#[derive(Debug)]
pub struct BlockSymbolic {
    /// Block sizes in elimination (permuted) order.
    sizes: Vec<usize>,
    /// `inv_perm[original block id]` = elimination position.
    inv_perm: Vec<usize>,
    /// Scalar row offset of each permuted block.
    scalar_off: Vec<usize>,
    /// Total scalar dimension.
    scalar_dim: usize,
    /// Block-CSR row pointers over elimination positions.
    row_ptr: Vec<usize>,
    /// Stored block columns (elimination positions), ascending per row.
    col_idx: Vec<usize>,
    /// Offset of each stored block's values (row-major within the block).
    val_off: Vec<usize>,
    /// Index into `col_idx` of each row's diagonal block.
    diag_idx: Vec<usize>,
    /// Total scalar length of the value storage.
    values_len: usize,
    /// Per step `k`: stored blocks below the diagonal in column `k`, as
    /// `(row position, value offset)`, ascending by row.
    below: Vec<Vec<(usize, usize)>>,
    /// Flattened Schur-update schedule, grouped per step by `upd_ptr`.
    upd: Vec<SchurUpdate>,
    /// `upd[upd_ptr[k]..upd_ptr[k + 1]]` are step `k`'s updates.
    upd_ptr: Vec<usize>,
    /// Stored blocks present before fill (diagnostics).
    structural: usize,
}

impl BlockSymbolic {
    /// Analyzes a block system: `sizes[b]` is the scalar dimension of
    /// block `b`, and `edges` lists the coupled block pairs (diagonal
    /// blocks are always stored; duplicate and self edges are fine).
    ///
    /// Runs greedy minimum-degree ordering (degree = total scalar size of
    /// live neighbors, ties broken by lowest block id, so the order is
    /// deterministic), then symbolic elimination to fix the fill pattern,
    /// the block-CSR layout and the per-step update schedule.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a block out of range.
    pub fn analyze(sizes: &[usize], edges: &[(usize, usize)]) -> Self {
        let n = sizes.len();
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for &(a, b) in edges {
            assert!(
                a < n && b < n,
                "edge ({a}, {b}) out of range for {n} blocks"
            );
            if a != b {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }

        // Greedy minimum degree on the (progressively filled) block
        // graph. O(n²·deg) — negligible next to a single sweep point for
        // the few hundred blocks a circuit produces.
        let mut alive = vec![true; n];
        let mut perm = Vec::with_capacity(n);
        for _ in 0..n {
            let mut best = usize::MAX;
            let mut best_deg = usize::MAX;
            for (v, &live) in alive.iter().enumerate() {
                if !live {
                    continue;
                }
                let deg: usize = adj[v]
                    .iter()
                    .filter(|&&u| alive[u])
                    .map(|&u| sizes[u])
                    .sum();
                if deg < best_deg {
                    best_deg = deg;
                    best = v;
                }
            }
            alive[best] = false;
            let nbrs: Vec<usize> = adj[best].iter().copied().filter(|&u| alive[u]).collect();
            for (xi, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[xi + 1..] {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
            perm.push(best);
        }

        let mut inv_perm = vec![0usize; n];
        for (p, &v) in perm.iter().enumerate() {
            inv_perm[v] = p;
        }
        let psizes: Vec<usize> = perm.iter().map(|&v| sizes[v]).collect();
        let mut scalar_off = Vec::with_capacity(n);
        let mut scalar_dim = 0usize;
        for &s in &psizes {
            scalar_off.push(scalar_dim);
            scalar_dim += s;
        }

        // Bit-matrix pattern in elimination coordinates.
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        let set =
            |bits: &mut Vec<u64>, r: usize, c: usize| bits[r * words + c / 64] |= 1 << (c % 64);
        for r in 0..n {
            set(&mut bits, r, r);
        }
        for &(a, b) in edges {
            let (pa, pb) = (inv_perm[a], inv_perm[b]);
            set(&mut bits, pa, pb);
            set(&mut bits, pb, pa);
        }
        let structural: usize = bits.iter().map(|w| w.count_ones() as usize).sum();

        // Symbolic elimination: whenever (i, k) and (k, j) are stored
        // with i, j > k, block (i, j) fills in.
        let mut rowk = vec![0u64; words];
        for k in 0..n {
            rowk.copy_from_slice(&bits[k * words..(k + 1) * words]);
            // Mask row k down to columns > k (zero bits 0..=k).
            for (w, word) in rowk.iter_mut().enumerate() {
                let lo = w * 64;
                if lo + 64 <= k + 1 {
                    *word = 0;
                } else if lo <= k {
                    *word &= !((1u64 << (k + 1 - lo)) - 1);
                }
            }
            for i in k + 1..n {
                if bits[i * words + k / 64] >> (k % 64) & 1 == 1 {
                    for w in 0..words {
                        bits[i * words + w] |= rowk[w];
                    }
                }
            }
        }

        // Block-CSR layout over the final pattern.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut val_off = Vec::new();
        let mut diag_idx = Vec::with_capacity(n);
        let mut values_len = 0usize;
        row_ptr.push(0);
        for r in 0..n {
            for c in 0..n {
                if bits[r * words + c / 64] >> (c % 64) & 1 == 1 {
                    if c == r {
                        diag_idx.push(col_idx.len());
                    }
                    col_idx.push(c);
                    val_off.push(values_len);
                    values_len += psizes[r] * psizes[c];
                }
            }
            row_ptr.push(col_idx.len());
        }

        // Column lists below each diagonal (rows ascend naturally).
        let mut below: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for r in 0..n {
            for idx in row_ptr[r]..diag_idx[r] {
                below[col_idx[idx]].push((r, val_off[idx]));
            }
        }

        // Pre-resolve every Schur update's target offset.
        let locate = |row: usize, col: usize| -> usize {
            let range = row_ptr[row]..row_ptr[row + 1];
            let rel = col_idx[range.clone()]
                .binary_search(&col)
                .expect("fill closure guarantees the update target is stored");
            val_off[range.start + rel]
        };
        let mut upd = Vec::new();
        let mut upd_ptr = Vec::with_capacity(n + 1);
        upd_ptr.push(0);
        for k in 0..n {
            for &(i, l_off) in &below[k] {
                for idx in diag_idx[k] + 1..row_ptr[k + 1] {
                    let j = col_idx[idx];
                    upd.push(SchurUpdate {
                        l_off,
                        u_off: val_off[idx],
                        t_off: locate(i, j),
                        rows: psizes[i],
                        cols: psizes[j],
                    });
                }
            }
            upd_ptr.push(upd.len());
        }

        BlockSymbolic {
            sizes: psizes,
            inv_perm,
            scalar_off,
            scalar_dim,
            row_ptr,
            col_idx,
            val_off,
            diag_idx,
            values_len,
            below,
            upd,
            upd_ptr,
            structural,
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.sizes.len()
    }

    /// Total scalar dimension of the system.
    pub fn scalar_dim(&self) -> usize {
        self.scalar_dim
    }

    /// Scalar length of the value storage (all stored blocks).
    pub fn values_len(&self) -> usize {
        self.values_len
    }

    /// Number of stored blocks, including fill.
    pub fn stored_block_count(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of blocks introduced by fill-in (stored minus structural).
    pub fn fill_block_count(&self) -> usize {
        self.col_idx.len() - self.structural
    }

    /// The scalar row (in elimination order) of entry `local` of block
    /// `block` — valid for both assembling values and reading solutions.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `local` exceeds the block size.
    #[inline]
    pub fn scalar_row(&self, block: usize, local: usize) -> usize {
        let p = self.inv_perm[block];
        debug_assert!(local < self.sizes[p], "local index out of block bounds");
        self.scalar_off[p] + local
    }

    /// The value-storage offset of scalar entry `(li, lj)` of block
    /// `(bi, bj)` (original block ids), or `None` when that block is not
    /// stored. Structural entries are always stored; `None` can only
    /// happen for block pairs outside the pattern.
    pub fn entry_offset(&self, bi: usize, bj: usize, li: usize, lj: usize) -> Option<usize> {
        let (pi, pj) = (self.inv_perm[bi], self.inv_perm[bj]);
        let range = self.row_ptr[pi]..self.row_ptr[pi + 1];
        let rel = self.col_idx[range.clone()].binary_search(&pj).ok()?;
        Some(self.val_off[range.start + rel] + li * self.sizes[pj] + lj)
    }

    /// End offset of row `k`'s contiguous value storage.
    fn row_values_end(&self, k: usize) -> usize {
        self.val_off
            .get(self.row_ptr[k + 1])
            .copied()
            .unwrap_or(self.values_len)
    }
}

/// Numeric state of a block-sparse LU: the value storage of the factor,
/// the within-block pivot permutations and a scratch row. Reusable — one
/// per worker, re-[`BlockSparseLu::factor`]ed at every wavelength point
/// against a shared [`BlockSymbolic`]; every buffer stops allocating once
/// it reaches its high-water mark.
#[derive(Debug)]
pub struct BlockSparseLu {
    values: Vec<Complex>,
    pivots: Vec<usize>,
    scratch: Vec<Complex>,
}

impl Default for BlockSparseLu {
    fn default() -> Self {
        BlockSparseLu::new()
    }
}

impl BlockSparseLu {
    /// An empty numeric workspace; size it with [`BlockSparseLu::reset`]
    /// or [`BlockSparseLu::load`] before assembling.
    pub fn new() -> Self {
        BlockSparseLu {
            values: Vec::new(),
            pivots: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Zeroes the value storage and sizes it for `sym`. Fill blocks start
    /// (and must remain, until factoring) all-zero.
    pub fn reset(&mut self, sym: &BlockSymbolic) {
        self.values.clear();
        self.values.resize(sym.values_len(), Complex::ZERO);
    }

    /// Replaces the value storage with a copy of `baseline` (an image
    /// produced by a previous assembly — the wavelength-independent part
    /// of a sweep's system). No allocation once capacity has grown.
    pub fn load(&mut self, baseline: &[Complex]) {
        self.values.clear();
        self.values.extend_from_slice(baseline);
    }

    /// Mutable access to the value storage for scattering assembly
    /// entries at offsets from [`BlockSymbolic::entry_offset`].
    pub fn values_mut(&mut self) -> &mut [Complex] {
        &mut self.values
    }

    /// Read access to the value storage (a baseline image to
    /// [`BlockSparseLu::load`] later, or diagnostics).
    pub fn values(&self) -> &[Complex] {
        &self.values
    }

    /// Factors the assembled system in place: `Q^T·A·Q = L·U` with `Q`
    /// the symbolic block order and dense partial pivoting confined to
    /// each diagonal block. After a successful return the storage holds
    /// the factors and [`BlockSparseLu::solve_in_place`] may be called
    /// any number of times.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] (with the scalar column in
    /// elimination order) when a diagonal pivot block is numerically
    /// singular. The storage is then unspecified; re-assemble before the
    /// next factorization.
    ///
    /// # Panics
    ///
    /// Panics if the storage was not sized for `sym` (via
    /// [`BlockSparseLu::reset`] or [`BlockSparseLu::load`]).
    pub fn factor(&mut self, sym: &BlockSymbolic) -> Result<(), SingularMatrixError> {
        assert_eq!(
            self.values.len(),
            sym.values_len(),
            "value storage does not match the symbolic analysis"
        );
        self.pivots.clear();
        self.pivots.resize(sym.scalar_dim(), 0);
        let n = sym.block_count();
        for k in 0..n {
            let sk = sym.sizes[k];
            let d_off = sym.val_off[sym.diag_idx[k]];
            let so = sym.scalar_off[k];
            // Factor the diagonal block with dense partial pivoting.
            {
                let d = &mut self.values[d_off..d_off + sk * sk];
                lu_block(d, sk, &mut self.pivots[so..so + sk], so)?;
            }
            // U_kj = L_kk⁻¹ · P_k · A_kj for the blocks right of the
            // diagonal (stored contiguously after it).
            for idx in sym.diag_idx[k] + 1..sym.row_ptr[k + 1] {
                let off = sym.val_off[idx];
                let sj = sym.sizes[sym.col_idx[idx]];
                let (head, tail) = self.values.split_at_mut(off);
                let d = &head[d_off..d_off + sk * sk];
                let b = &mut tail[..sk * sj];
                apply_row_pivots(b, sj, &self.pivots[so..so + sk]);
                trsm_lower_unit(d, sk, b, sj);
            }
            // Snapshot row k's tail (diagonal + U blocks): the Schur
            // updates below read it while mutating other rows.
            let row_end = sym.row_values_end(k);
            self.scratch.clear();
            self.scratch.extend_from_slice(&self.values[d_off..row_end]);
            // L_ik = A_ik · U_kk⁻¹ for the blocks below the diagonal.
            for &(i, off_ik) in &sym.below[k] {
                let si = sym.sizes[i];
                let a = &mut self.values[off_ik..off_ik + si * sk];
                trsm_right_upper(&self.scratch[..sk * sk], sk, a, si);
            }
            // Pre-scheduled Schur updates: C_ij −= L_ik · U_kj. L and C
            // live in the same block row with col k < col j, so the CSR
            // layout guarantees l_off < t_off and the split is safe.
            for u in &sym.upd[sym.upd_ptr[k]..sym.upd_ptr[k + 1]] {
                debug_assert!(u.l_off + u.rows * sk <= u.t_off);
                let b = &self.scratch[u.u_off - d_off..u.u_off - d_off + sk * u.cols];
                let (head, tail) = self.values.split_at_mut(u.t_off);
                let l = &head[u.l_off..u.l_off + u.rows * sk];
                gemm_sub(&mut tail[..u.rows * u.cols], l, b, u.rows, sk, u.cols);
            }
        }
        Ok(())
    }

    /// Solves `A · X = B` in place for a panel of `ncols` right-hand-side
    /// columns. `rhs` is row-major `scalar_dim × ncols` in **elimination
    /// order** (assemble through [`BlockSymbolic::scalar_row`]); on
    /// return it holds the solution in the same layout. The whole panel
    /// moves through the factor in one pass — the pivot permutations and
    /// factor blocks are traversed once regardless of `ncols`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != scalar_dim · ncols` or the factorization
    /// has not run.
    pub fn solve_in_place(&self, sym: &BlockSymbolic, rhs: &mut [Complex], ncols: usize) {
        assert_eq!(
            rhs.len(),
            sym.scalar_dim() * ncols,
            "right-hand-side panel has the wrong shape"
        );
        assert_eq!(self.pivots.len(), sym.scalar_dim(), "factorization missing");
        if ncols == 0 || sym.scalar_dim() == 0 {
            return;
        }
        let n = sym.block_count();
        // Forward: apply within-block pivots, unit-lower solves, and
        // push updates down the below-diagonal column lists.
        for k in 0..n {
            let sk = sym.sizes[k];
            let so = sym.scalar_off[k];
            let d_off = sym.val_off[sym.diag_idx[k]];
            let d = &self.values[d_off..d_off + sk * sk];
            {
                let rb = &mut rhs[so * ncols..(so + sk) * ncols];
                apply_row_pivots(rb, ncols, &self.pivots[so..so + sk]);
                trsm_lower_unit(d, sk, rb, ncols);
            }
            let (head, tail) = rhs.split_at_mut((so + sk) * ncols);
            let rk = &head[so * ncols..];
            for &(i, off_ik) in &sym.below[k] {
                let si = sym.sizes[i];
                let soi = sym.scalar_off[i];
                let ri = &mut tail[(soi - so - sk) * ncols..][..si * ncols];
                gemm_sub(
                    ri,
                    &self.values[off_ik..off_ik + si * sk],
                    rk,
                    si,
                    sk,
                    ncols,
                );
            }
        }
        // Backward: subtract the U blocks right of each diagonal, then
        // divide through the diagonal factor.
        for k in (0..n).rev() {
            let sk = sym.sizes[k];
            let so = sym.scalar_off[k];
            for idx in sym.diag_idx[k] + 1..sym.row_ptr[k + 1] {
                let j = sym.col_idx[idx];
                let sj = sym.sizes[j];
                let soj = sym.scalar_off[j];
                let off = sym.val_off[idx];
                let (head, tail) = rhs.split_at_mut(soj * ncols);
                let rk = &mut head[so * ncols..(so + sk) * ncols];
                gemm_sub(
                    rk,
                    &self.values[off..off + sk * sj],
                    &tail[..sj * ncols],
                    sk,
                    sj,
                    ncols,
                );
            }
            let d_off = sym.val_off[sym.diag_idx[k]];
            let d = &self.values[d_off..d_off + sk * sk];
            trsm_upper(d, sk, &mut rhs[so * ncols..(so + sk) * ncols], ncols);
        }
    }
}

/// Dense partial-pivot LU of an `s × s` block in place (compact storage,
/// unit lower diagonal implicit). `col_base` labels singularity reports
/// with the block's global scalar offset.
fn lu_block(
    a: &mut [Complex],
    s: usize,
    piv: &mut [usize],
    col_base: usize,
) -> Result<(), SingularMatrixError> {
    for c in 0..s {
        let mut pivot_row = c;
        let mut pivot_mag = a[c * s + c].abs();
        for r in c + 1..s {
            let mag = a[r * s + c].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag.is_nan() || pivot_mag <= 1e-300 {
            return Err(SingularMatrixError {
                column: col_base + c,
            });
        }
        piv[c] = pivot_row;
        if pivot_row != c {
            for cc in 0..s {
                a.swap(c * s + cc, pivot_row * s + cc);
            }
        }
        let pivot = a[c * s + c];
        for r in c + 1..s {
            let factor = a[r * s + c] / pivot;
            a[r * s + c] = factor;
            if factor == Complex::ZERO {
                continue;
            }
            for cc in c + 1..s {
                let sub = factor * a[c * s + cc];
                a[r * s + cc] -= sub;
            }
        }
    }
    Ok(())
}

/// Applies a within-block pivot sequence (LAPACK `ipiv` semantics: swap
/// row `c` with row `piv[c]`, in order) to a row-major panel.
fn apply_row_pivots(b: &mut [Complex], ncols: usize, piv: &[usize]) {
    for (c, &pr) in piv.iter().enumerate() {
        if pr != c {
            for cc in 0..ncols {
                b.swap(c * ncols + cc, pr * ncols + cc);
            }
        }
    }
}

/// `B ← L⁻¹ B` for the unit-lower triangle of a compact `s × s` LU block.
fn trsm_lower_unit(l: &[Complex], s: usize, b: &mut [Complex], ncols: usize) {
    for r in 1..s {
        let (done, rest) = b.split_at_mut(r * ncols);
        let row_r = &mut rest[..ncols];
        for (m, chunk) in done.chunks_exact(ncols).enumerate() {
            let f = l[r * s + m];
            if f == Complex::ZERO {
                continue;
            }
            for (x, &y) in row_r.iter_mut().zip(chunk) {
                *x -= f * y;
            }
        }
    }
}

/// `B ← U⁻¹ B` for the upper triangle of a compact `s × s` LU block.
fn trsm_upper(u: &[Complex], s: usize, b: &mut [Complex], ncols: usize) {
    for r in (0..s).rev() {
        let (head, tail) = b.split_at_mut((r + 1) * ncols);
        let row_r = &mut head[r * ncols..];
        for (t, chunk) in tail.chunks_exact(ncols).enumerate() {
            let f = u[r * s + (r + 1 + t)];
            if f == Complex::ZERO {
                continue;
            }
            for (x, &y) in row_r.iter_mut().zip(chunk) {
                *x -= f * y;
            }
        }
        let d = u[r * s + r];
        for x in row_r.iter_mut() {
            *x /= d;
        }
    }
}

/// `A ← A · U⁻¹` for the upper triangle of a compact `s × s` LU block,
/// applied to every row of a row-major `nrows × s` panel.
fn trsm_right_upper(u: &[Complex], s: usize, a: &mut [Complex], nrows: usize) {
    debug_assert_eq!(a.len(), nrows * s);
    for row in a.chunks_exact_mut(s) {
        for c in 0..s {
            let mut acc = row[c];
            for (m, &x) in row[..c].iter().enumerate() {
                acc -= x * u[m * s + c];
            }
            row[c] = acc / u[c * s + c];
        }
    }
}

/// `C −= A · B` on row-major blocks (`m × k`, `k × n`, `m × n`).
fn gemm_sub(c: &mut [Complex], a: &[Complex], b: &[Complex], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    for (r, crow) in c.chunks_exact_mut(n).take(m).enumerate() {
        for (t, brow) in b.chunks_exact(n).take(k).enumerate() {
            let f = a[r * k + t];
            if f == Complex::ZERO {
                continue;
            }
            for (x, &y) in crow.iter_mut().zip(brow) {
                *x -= f * y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CMatrix, LuDecomposition};

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Deterministic pseudo-random fill, as in the `lu` tests.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        }
    }

    /// Assembles a random diagonally-dominant block system over the given
    /// structure, returning both the sparse storage and an equivalent
    /// dense matrix (in elimination scalar order).
    fn random_system(
        sizes: &[usize],
        edges: &[(usize, usize)],
        seed: u64,
    ) -> (BlockSymbolic, BlockSparseLu, CMatrix) {
        let sym = BlockSymbolic::analyze(sizes, edges);
        let mut lu = BlockSparseLu::new();
        lu.reset(&sym);
        let nd = sym.scalar_dim();
        let mut dense = CMatrix::zeros(nd, nd);
        let mut next = rng(seed);
        let mut stored: Vec<(usize, usize)> = edges.to_vec();
        stored.extend((0..sizes.len()).map(|b| (b, b)));
        stored.sort_unstable();
        stored.dedup();
        for &(bi, bj) in &stored {
            for li in 0..sizes[bi] {
                for lj in 0..sizes[bj] {
                    let v = if bi == bj && li == lj {
                        // Dominant diagonal keeps the reference solve
                        // well-conditioned without defeating pivoting.
                        c(4.0 + next(), next())
                    } else {
                        c(next() * 0.8, next() * 0.8)
                    };
                    let off = sym.entry_offset(bi, bj, li, lj).unwrap();
                    lu.values_mut()[off] = v;
                    dense[(sym.scalar_row(bi, li), sym.scalar_row(bj, lj))] = v;
                }
            }
        }
        (sym, lu, dense)
    }

    #[test]
    fn chain_structure_solves_like_dense() {
        // A chain of 5 blocks of mixed sizes: 0–1–2–3–4.
        let sizes = [2usize, 3, 1, 2, 2];
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let (sym, mut lu, dense) = random_system(&sizes, &edges, 11);
        lu.factor(&sym).unwrap();

        let nd = sym.scalar_dim();
        let ncols = 3;
        let mut next = rng(99);
        let rhs_mat = CMatrix::from_fn(nd, ncols, |_, _| c(next(), next()));
        let mut panel: Vec<Complex> = rhs_mat.as_slice().to_vec();
        lu.solve_in_place(&sym, &mut panel, ncols);

        let reference = LuDecomposition::factor(&dense)
            .unwrap()
            .solve_matrix(&rhs_mat);
        for r in 0..nd {
            for cc in 0..ncols {
                assert!(
                    (panel[r * ncols + cc] - reference[(r, cc)]).abs() < 1e-11,
                    "mismatch at ({r}, {cc})"
                );
            }
        }
    }

    #[test]
    fn grid_structure_with_fill_solves_like_dense() {
        // A 3×3 grid of 2-port blocks — elimination must create fill.
        let sizes = vec![2usize; 9];
        let mut edges = Vec::new();
        for r in 0..3 {
            for cc in 0..3 {
                let v = r * 3 + cc;
                if cc + 1 < 3 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3));
                }
            }
        }
        let (sym, mut lu, dense) = random_system(&sizes, &edges, 5);
        assert!(sym.fill_block_count() > 0, "a grid must produce fill");
        lu.factor(&sym).unwrap();

        let nd = sym.scalar_dim();
        let mut next = rng(7);
        let rhs_mat = CMatrix::from_fn(nd, 2, |_, _| c(next(), next()));
        let mut panel: Vec<Complex> = rhs_mat.as_slice().to_vec();
        lu.solve_in_place(&sym, &mut panel, 2);
        let reference = LuDecomposition::factor(&dense)
            .unwrap()
            .solve_matrix(&rhs_mat);
        for r in 0..nd {
            for cc in 0..2 {
                assert!((panel[r * 2 + cc] - reference[(r, cc)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn refactoring_reuses_storage_deterministically() {
        let sizes = [2usize, 2, 2];
        let edges = [(0, 1), (1, 2)];
        let (sym, mut lu, _) = random_system(&sizes, &edges, 3);
        let baseline = lu.values().to_vec();
        lu.factor(&sym).unwrap();
        let first = lu.values().to_vec();
        // Reload the identical assembly and refactor: identical bits.
        lu.load(&baseline);
        lu.factor(&sym).unwrap();
        assert_eq!(lu.values(), &first[..]);
    }

    #[test]
    fn singular_diagonal_block_is_reported() {
        let sym = BlockSymbolic::analyze(&[2], &[]);
        let mut lu = BlockSparseLu::new();
        lu.reset(&sym);
        // Rank-1 block: [[1, 2], [2, 4]].
        lu.values_mut()[sym.entry_offset(0, 0, 0, 0).unwrap()] = c(1.0, 0.0);
        lu.values_mut()[sym.entry_offset(0, 0, 0, 1).unwrap()] = c(2.0, 0.0);
        lu.values_mut()[sym.entry_offset(0, 0, 1, 0).unwrap()] = c(2.0, 0.0);
        lu.values_mut()[sym.entry_offset(0, 0, 1, 1).unwrap()] = c(4.0, 0.0);
        let err = lu.factor(&sym).unwrap_err();
        assert_eq!(err.column, 1);
    }

    #[test]
    fn empty_system_is_a_no_op() {
        let sym = BlockSymbolic::analyze(&[], &[]);
        assert_eq!(sym.scalar_dim(), 0);
        assert_eq!(sym.values_len(), 0);
        let mut lu = BlockSparseLu::new();
        lu.reset(&sym);
        lu.factor(&sym).unwrap();
        let mut rhs: Vec<Complex> = Vec::new();
        lu.solve_in_place(&sym, &mut rhs, 4);
    }

    #[test]
    fn ordering_is_deterministic_and_fill_reducing() {
        // A star: hub 0 connected to six leaves. Eliminating leaves first
        // produces zero fill; eliminating the hub first fills everything.
        let sizes = vec![2usize; 7];
        let edges: Vec<(usize, usize)> = (1..7).map(|l| (0, l)).collect();
        let a = BlockSymbolic::analyze(&sizes, &edges);
        let b = BlockSymbolic::analyze(&sizes, &edges);
        assert_eq!(a.fill_block_count(), 0, "min-degree defers the hub");
        assert_eq!(a.inv_perm, b.inv_perm, "analysis must be deterministic");
        // The hub survives until only one leaf is left (a tie it then
        // wins on block id).
        assert!(a.inv_perm[0] >= 5, "hub eliminated too early");
    }

    #[test]
    fn scalar_rows_cover_the_dimension_exactly() {
        let sizes = [3usize, 1, 2];
        let sym = BlockSymbolic::analyze(&sizes, &[(0, 1), (1, 2), (0, 2)]);
        let mut seen = vec![false; sym.scalar_dim()];
        for (b, &s) in sizes.iter().enumerate() {
            for l in 0..s {
                let r = sym.scalar_row(b, l);
                assert!(!seen[r], "scalar rows must be disjoint");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }
}
