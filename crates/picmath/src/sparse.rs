//! Block-compressed sparse LU for topology-structured scattering systems.
//!
//! The dense scattering solve factors the full `n_int × n_int` system
//! `(I − P·S_ii)` at every wavelength point even though the matrix is
//! overwhelmingly structural zeros: an instance's ports couple only to
//! the ports of the instances it is wired to, so the system is
//! *block-sparse* with the circuit's connectivity graph as its block
//! pattern. This module is the KLU-style escape hatch from that O(n³)
//! cost, split the way real circuit simulators split it:
//!
//! * [`BlockSymbolic::analyze`] — the **symbolic** phase, run once per
//!   topology: a fill-reducing elimination order over the block graph
//!   (greedy minimum degree, weighted by scalar block size, deterministic
//!   tie-breaks), followed by symbolic Gaussian elimination that computes
//!   the **static fill-in pattern**. The result is an immutable
//!   block-CSR description of the factor — stored blocks, value offsets,
//!   per-step column lists and a pre-resolved Schur-update schedule — so
//!   the numeric phase never searches for a block at solve time.
//! * [`BlockSparseLu`] — the **numeric** phase, run once per wavelength
//!   point on reused buffers: scatter values into the static pattern,
//!   factor with dense partial pivoting *inside* each diagonal block
//!   (pivoting never crosses blocks, so the structure is truly static),
//!   and solve whole panels of right-hand-side columns in one pass.
//!
//! Values live in **split-complex (SoA) storage** — [`SplitComplexVec`],
//! parallel real/imaginary `f64` arrays — so the panel-shaped hot loops
//! (Schur-update GEMMs, triangular panel solves) run through the
//! runtime-dispatched SIMD kernels of [`crate::simd`]. The tiny
//! sequential kernels (within-block pivoted LU, row pivots, the
//! right-sided triangular solve) stay scalar: their blocks are a handful
//! of entries wide and keeping them scalar keeps them trivially
//! bit-identical. Every dispatched kernel is bit-identical to the scalar
//! fallback by the lane-order contract documented in [`crate::simd`], so
//! factorizations and solves produce the same bits on every instruction
//! set (and under `PICBENCH_FORCE_SCALAR=1`).
//!
//! One symbolic object serves every wavelength point of a sweep and every
//! worker thread; each [`BlockSparseLu`] is cheap per-worker state whose
//! buffers reach a high-water mark after the first factorization and
//! never allocate again — the same discipline as the dense
//! `SolveWorkspace` path.
//!
//! Scalar unknowns are addressed through [`BlockSymbolic::scalar_row`]
//! (block id + offset within the block → row in elimination order), so
//! callers can assemble and read back without ever materializing the
//! permutation themselves.
//!
//! ## Example
//!
//! ```
//! use picbench_math::{sparse::{BlockSymbolic, BlockSparseLu}, Complex, SplitComplexVec};
//!
//! // Two 1×1 blocks coupled to each other: [[2, 1], [1, 2]].
//! let sym = BlockSymbolic::analyze(&[1, 1], &[(0, 1)]);
//! let mut lu = BlockSparseLu::new();
//! lu.reset(&sym);
//! lu.values_mut().set(sym.entry_offset(0, 0, 0, 0).unwrap(), Complex::real(2.0));
//! lu.values_mut().set(sym.entry_offset(0, 1, 0, 0).unwrap(), Complex::real(1.0));
//! lu.values_mut().set(sym.entry_offset(1, 0, 0, 0).unwrap(), Complex::real(1.0));
//! lu.values_mut().set(sym.entry_offset(1, 1, 0, 0).unwrap(), Complex::real(2.0));
//! lu.factor(&sym)?;
//! let mut rhs = SplitComplexVec::from_interleaved(&[Complex::real(3.0), Complex::real(3.0)]);
//! lu.solve_in_place(&sym, &mut rhs, 1);
//! assert!((rhs.get(sym.scalar_row(0, 0)) - Complex::ONE).abs() < 1e-12);
//! assert!((rhs.get(sym.scalar_row(1, 0)) - Complex::ONE).abs() < 1e-12);
//! # Ok::<(), picbench_math::SingularMatrixError>(())
//! ```

use crate::{simd, Complex, SingularMatrixError};

/// Split-complex (structure-of-arrays) storage: a logical `Vec<Complex>`
/// held as two parallel `f64` arrays, one of real parts and one of
/// imaginary parts. This is the panel layout the SIMD kernels of
/// [`crate::simd`] consume — a lane loads `LANES` consecutive real (or
/// imaginary) components with one unshuffled read.
///
/// Indexing helpers ([`SplitComplexVec::get`] / [`SplitComplexVec::set`] /
/// [`SplitComplexVec::add_assign`] / [`SplitComplexVec::sub_assign`])
/// keep scatter/assembly call sites as readable as the interleaved
/// layout was; the component accessors ([`SplitComplexVec::re`],
/// [`SplitComplexVec::im`], [`SplitComplexVec::parts_mut`]) feed the
/// kernels. All growth APIs reuse capacity, so a buffer that reached its
/// high-water mark never allocates again.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SplitComplexVec {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitComplexVec {
    /// An empty vector.
    pub fn new() -> Self {
        SplitComplexVec {
            re: Vec::new(),
            im: Vec::new(),
        }
    }

    /// Builds split storage from interleaved complex values.
    pub fn from_interleaved(src: &[Complex]) -> Self {
        SplitComplexVec {
            re: src.iter().map(|z| z.re).collect(),
            im: src.iter().map(|z| z.im).collect(),
        }
    }

    /// Logical length in complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Removes every element, keeping capacity.
    pub fn clear(&mut self) {
        self.re.clear();
        self.im.clear();
    }

    /// Resizes to `len` elements, all zero (capacity is reused).
    pub fn resize_zero(&mut self, len: usize) {
        self.re.clear();
        self.re.resize(len, 0.0);
        self.im.clear();
        self.im.resize(len, 0.0);
    }

    /// Makes `self` an element-wise copy of `src` (capacity is reused).
    pub fn copy_from(&mut self, src: &SplitComplexVec) {
        self.re.clear();
        self.re.extend_from_slice(&src.re);
        self.im.clear();
        self.im.extend_from_slice(&src.im);
    }

    /// Makes `self` a copy of `src[start..end]` (capacity is reused).
    pub fn copy_range_from(&mut self, src: &SplitComplexVec, start: usize, end: usize) {
        self.re.clear();
        self.re.extend_from_slice(&src.re[start..end]);
        self.im.clear();
        self.im.extend_from_slice(&src.im[start..end]);
    }

    /// The element at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Complex {
        Complex::new(self.re[i], self.im[i])
    }

    /// Overwrites the element at `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Complex) {
        self.re[i] = v.re;
        self.im[i] = v.im;
    }

    /// Adds `v` to the element at `i`.
    #[inline]
    pub fn add_assign(&mut self, i: usize, v: Complex) {
        self.re[i] += v.re;
        self.im[i] += v.im;
    }

    /// Subtracts `v` from the element at `i`.
    #[inline]
    pub fn sub_assign(&mut self, i: usize, v: Complex) {
        self.re[i] -= v.re;
        self.im[i] -= v.im;
    }

    /// The real components.
    #[inline]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary components.
    #[inline]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Both component arrays, mutably.
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Interleaves back into a `Vec<Complex>` (tests, diagnostics).
    pub fn to_interleaved(&self) -> Vec<Complex> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect()
    }
}

/// One pre-resolved Schur-complement run `C_i,J −= L_ik · U_k,J`, with
/// every operand located at analysis time. `J` is a maximal run of
/// consecutive tail columns of step `k` that are also stored
/// consecutively in row `i`'s panel, so one GEMM covers as many target
/// columns as the layouts allow.
#[derive(Debug, Clone, Copy)]
struct SchurUpdate {
    /// Absolute value offset of the `L_ik` block (rows × s_k, row stride
    /// `ld`).
    l_off: usize,
    /// Column offset of the run's first `U` column within row `k`'s
    /// panel (the snapshot the factor reads; row stride = row `k`'s
    /// panel width).
    b_col: usize,
    /// Absolute value offset of the run's first target column in row
    /// `i`'s panel (rows × cols, row stride `ld`).
    t_off: usize,
    /// Row stride of row `i`'s panel — shared by `L_ik` and the target.
    ld: usize,
    /// Scalar rows of the update (size of block `i`).
    rows: usize,
    /// Scalar columns of the run (summed sizes of its blocks `j`).
    cols: usize,
}

/// The symbolic analysis of a block-sparse system: elimination order,
/// static fill pattern, value layout and update schedule. Immutable,
/// `Send + Sync`, built once per topology and shared by every numeric
/// factorization (one per wavelength point per worker).
#[derive(Debug)]
pub struct BlockSymbolic {
    /// Block sizes in elimination (permuted) order.
    sizes: Vec<usize>,
    /// `inv_perm[original block id]` = elimination position.
    inv_perm: Vec<usize>,
    /// Scalar row offset of each permuted block.
    scalar_off: Vec<usize>,
    /// Total scalar dimension.
    scalar_dim: usize,
    /// Block-CSR row pointers over elimination positions.
    row_ptr: Vec<usize>,
    /// Stored block columns (elimination positions), ascending per row.
    col_idx: Vec<usize>,
    /// Value offset of each block row's panel. A row's stored blocks are
    /// packed side by side into one row-major `s_r × row_stride[r]`
    /// panel, so a whole block row (and any consecutive run of its
    /// blocks) is a strided matrix the SIMD kernels consume directly.
    row_base: Vec<usize>,
    /// Scalar width of each block row's panel (summed stored block
    /// widths).
    row_stride: Vec<usize>,
    /// Column offset of each stored block within its row panel (parallel
    /// to `col_idx`).
    col_off: Vec<usize>,
    /// Index into `col_idx` of each row's diagonal block.
    diag_idx: Vec<usize>,
    /// Total scalar length of the value storage.
    values_len: usize,
    /// Per step `k`: stored blocks below the diagonal in column `k`, as
    /// `(row position, absolute value offset of the block's first
    /// element)`, ascending by row; the block's row stride is its row's
    /// `row_stride`.
    below: Vec<Vec<(usize, usize)>>,
    /// Flattened Schur-update schedule, grouped per step by `upd_ptr`.
    upd: Vec<SchurUpdate>,
    /// `upd[upd_ptr[k]..upd_ptr[k + 1]]` are step `k`'s updates.
    upd_ptr: Vec<usize>,
    /// Backward-solve runs, grouped per row by `bwd_ptr`: maximal runs
    /// of consecutive stored U columns, as `(value offset of the run's
    /// first element, scalar width, scalar row offset of the first
    /// column)`. Consecutive stored columns are adjacent both in the
    /// row panel and in the solution vector, so each run is one gemm.
    bwd: Vec<(usize, usize, usize)>,
    /// `bwd[bwd_ptr[k]..bwd_ptr[k + 1]]` are row `k`'s U runs.
    bwd_ptr: Vec<usize>,
    /// Stored blocks present before fill (diagnostics).
    structural: usize,
}

impl BlockSymbolic {
    /// Analyzes a block system: `sizes[b]` is the scalar dimension of
    /// block `b`, and `edges` lists the coupled block pairs (diagonal
    /// blocks are always stored; duplicate and self edges are fine).
    ///
    /// Runs greedy minimum-degree ordering (degree = total scalar size of
    /// live neighbors, ties broken by lowest block id, so the order is
    /// deterministic), then symbolic elimination to fix the fill pattern,
    /// the block-CSR layout and the per-step update schedule.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a block out of range.
    pub fn analyze(sizes: &[usize], edges: &[(usize, usize)]) -> Self {
        let n = sizes.len();
        let words = n.div_ceil(64).max(1);
        let mut adjb = vec![0u64; n * words];
        for &(a, b) in edges {
            assert!(
                a < n && b < n,
                "edge ({a}, {b}) out of range for {n} blocks"
            );
            if a != b {
                adjb[a * words + b / 64] |= 1 << (b % 64);
                adjb[b * words + a / 64] |= 1 << (a % 64);
            }
        }

        // Greedy minimum degree on the (progressively filled) block
        // graph, with bitset adjacency rows. Eliminating a vertex only
        // changes the adjacency of its live neighborhood, so degrees are
        // recomputed for those rows alone; the selection rule (min
        // degree, ties to the lowest block id) is unchanged, so the
        // ordering — and every downstream layout — is identical to the
        // naive scan.
        let mut alive_bits = vec![0u64; words];
        for v in 0..n {
            alive_bits[v / 64] |= 1 << (v % 64);
        }
        let sum_deg = |row: &[u64], alive: &[u64]| -> usize {
            let mut s = 0usize;
            for (w, (&rw, &aw)) in row.iter().zip(alive).enumerate() {
                let mut m = rw & aw;
                while m != 0 {
                    s += sizes[w * 64 + m.trailing_zeros() as usize];
                    m &= m - 1;
                }
            }
            s
        };
        let mut deg: Vec<usize> = (0..n)
            .map(|v| sum_deg(&adjb[v * words..(v + 1) * words], &alive_bits))
            .collect();
        let mut alive = vec![true; n];
        let mut perm = Vec::with_capacity(n);
        let mut nbrs = vec![0u64; words];
        for _ in 0..n {
            let mut best = usize::MAX;
            let mut best_deg = usize::MAX;
            for v in 0..n {
                if alive[v] && deg[v] < best_deg {
                    best_deg = deg[v];
                    best = v;
                }
            }
            alive[best] = false;
            alive_bits[best / 64] &= !(1 << (best % 64));
            // Fill: the live neighborhood of `best` becomes a clique.
            for (w, nb) in nbrs.iter_mut().enumerate() {
                *nb = adjb[best * words + w] & alive_bits[w];
            }
            for w in 0..words {
                let mut m = nbrs[w];
                while m != 0 {
                    let a = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let row = &mut adjb[a * words..(a + 1) * words];
                    for (x, &nb) in row.iter_mut().zip(&nbrs) {
                        *x |= nb;
                    }
                    row[a / 64] &= !(1 << (a % 64));
                    deg[a] = sum_deg(&adjb[a * words..(a + 1) * words], &alive_bits);
                }
            }
            perm.push(best);
        }

        let mut inv_perm = vec![0usize; n];
        for (p, &v) in perm.iter().enumerate() {
            inv_perm[v] = p;
        }
        let psizes: Vec<usize> = perm.iter().map(|&v| sizes[v]).collect();
        let mut scalar_off = Vec::with_capacity(n);
        let mut scalar_dim = 0usize;
        for &s in &psizes {
            scalar_off.push(scalar_dim);
            scalar_dim += s;
        }

        // Bit-matrix pattern in elimination coordinates.
        let mut bits = vec![0u64; n * words];
        let set =
            |bits: &mut Vec<u64>, r: usize, c: usize| bits[r * words + c / 64] |= 1 << (c % 64);
        for r in 0..n {
            set(&mut bits, r, r);
        }
        for &(a, b) in edges {
            let (pa, pb) = (inv_perm[a], inv_perm[b]);
            set(&mut bits, pa, pb);
            set(&mut bits, pb, pa);
        }
        let structural: usize = bits.iter().map(|w| w.count_ones() as usize).sum();

        // Symbolic elimination: whenever (i, k) and (k, j) are stored
        // with i, j > k, block (i, j) fills in.
        let mut rowk = vec![0u64; words];
        for k in 0..n {
            rowk.copy_from_slice(&bits[k * words..(k + 1) * words]);
            // Mask row k down to columns > k (zero bits 0..=k).
            for (w, word) in rowk.iter_mut().enumerate() {
                let lo = w * 64;
                if lo + 64 <= k + 1 {
                    *word = 0;
                } else if lo <= k {
                    *word &= !((1u64 << (k + 1 - lo)) - 1);
                }
            }
            for i in k + 1..n {
                if bits[i * words + k / 64] >> (k % 64) & 1 == 1 {
                    for w in 0..words {
                        bits[i * words + w] |= rowk[w];
                    }
                }
            }
        }

        // Panel layout over the final pattern: each block row's stored
        // blocks pack side by side into one row-major `s_r × W_r` panel,
        // so consecutive stored columns are consecutive in memory and
        // the panel kernels run full-width.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut row_base = Vec::with_capacity(n);
        let mut row_stride = Vec::with_capacity(n);
        let mut col_off = Vec::new();
        let mut diag_idx = Vec::with_capacity(n);
        let mut values_len = 0usize;
        row_ptr.push(0);
        for r in 0..n {
            row_base.push(values_len);
            let mut width = 0usize;
            for c in 0..n {
                if bits[r * words + c / 64] >> (c % 64) & 1 == 1 {
                    if c == r {
                        diag_idx.push(col_idx.len());
                    }
                    col_idx.push(c);
                    col_off.push(width);
                    width += psizes[c];
                }
            }
            row_stride.push(width);
            values_len += psizes[r] * width;
            row_ptr.push(col_idx.len());
        }

        // Column lists below each diagonal (rows ascend naturally).
        let mut below: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for r in 0..n {
            for idx in row_ptr[r]..diag_idx[r] {
                below[col_idx[idx]].push((r, row_base[r] + col_off[idx]));
            }
        }

        // Pre-resolve the Schur-update schedule, merging tail columns
        // that are consecutive in the target row's panel into one run
        // (they are always consecutive in step `k`'s panel).
        let locate = |row: usize, col: usize| -> usize {
            let range = row_ptr[row]..row_ptr[row + 1];
            let rel = col_idx[range.clone()]
                .binary_search(&col)
                .expect("fill closure guarantees the update target is stored");
            row_base[row] + col_off[range.start + rel]
        };
        let mut upd = Vec::new();
        let mut upd_ptr = Vec::with_capacity(n + 1);
        upd_ptr.push(0);
        for k in 0..n {
            for &(i, l_off) in &below[k] {
                let mut idx = diag_idx[k] + 1;
                while idx < row_ptr[k + 1] {
                    let t_off = locate(i, col_idx[idx]);
                    let b_col = col_off[idx];
                    let mut cols = psizes[col_idx[idx]];
                    let mut prev_t = t_off;
                    let mut prev_w = cols;
                    idx += 1;
                    while idx < row_ptr[k + 1] {
                        let t_next = locate(i, col_idx[idx]);
                        if t_next != prev_t + prev_w {
                            break;
                        }
                        prev_t = t_next;
                        prev_w = psizes[col_idx[idx]];
                        cols += prev_w;
                        idx += 1;
                    }
                    upd.push(SchurUpdate {
                        l_off,
                        b_col,
                        t_off,
                        ld: row_stride[i],
                        rows: psizes[i],
                        cols,
                    });
                }
            }
            upd_ptr.push(upd.len());
        }

        // Backward-solve runs: consecutive stored U columns of a row are
        // adjacent in its panel *and* (because stored columns ascend and
        // scalar offsets are cumulative) in the solution vector, so each
        // maximal run collapses to a single gemm. Splitting a gemm on the
        // k dimension only splits the sequential accumulation chain, so
        // the merged form is bit-identical to per-block calls.
        let mut bwd = Vec::new();
        let mut bwd_ptr = Vec::with_capacity(n + 1);
        bwd_ptr.push(0);
        for k in 0..n {
            let mut idx = diag_idx[k] + 1;
            while idx < row_ptr[k + 1] {
                let u_off = row_base[k] + col_off[idx];
                let so = scalar_off[col_idx[idx]];
                let mut prev = col_idx[idx];
                let mut width = psizes[prev];
                idx += 1;
                while idx < row_ptr[k + 1] && col_idx[idx] == prev + 1 {
                    prev = col_idx[idx];
                    width += psizes[prev];
                    idx += 1;
                }
                bwd.push((u_off, width, so));
            }
            bwd_ptr.push(bwd.len());
        }

        BlockSymbolic {
            sizes: psizes,
            inv_perm,
            scalar_off,
            scalar_dim,
            row_ptr,
            col_idx,
            row_base,
            row_stride,
            col_off,
            diag_idx,
            values_len,
            below,
            upd,
            upd_ptr,
            bwd,
            bwd_ptr,
            structural,
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.sizes.len()
    }

    /// Total scalar dimension of the system.
    pub fn scalar_dim(&self) -> usize {
        self.scalar_dim
    }

    /// Scalar length of the value storage (all stored blocks).
    pub fn values_len(&self) -> usize {
        self.values_len
    }

    /// Number of stored blocks, including fill.
    pub fn stored_block_count(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of blocks introduced by fill-in (stored minus structural).
    pub fn fill_block_count(&self) -> usize {
        self.col_idx.len() - self.structural
    }

    /// The scalar row (in elimination order) of entry `local` of block
    /// `block` — valid for both assembling values and reading solutions.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `local` exceeds the block size.
    #[inline]
    pub fn scalar_row(&self, block: usize, local: usize) -> usize {
        let p = self.inv_perm[block];
        debug_assert!(local < self.sizes[p], "local index out of block bounds");
        self.scalar_off[p] + local
    }

    /// The value-storage offset of scalar entry `(li, lj)` of block
    /// `(bi, bj)` (original block ids), or `None` when that block is not
    /// stored. Structural entries are always stored; `None` can only
    /// happen for block pairs outside the pattern.
    pub fn entry_offset(&self, bi: usize, bj: usize, li: usize, lj: usize) -> Option<usize> {
        let (pi, pj) = (self.inv_perm[bi], self.inv_perm[bj]);
        let range = self.row_ptr[pi]..self.row_ptr[pi + 1];
        let rel = self.col_idx[range.clone()].binary_search(&pj).ok()?;
        Some(self.row_base[pi] + li * self.row_stride[pi] + self.col_off[range.start + rel] + lj)
    }
}

/// Numeric state of a block-sparse LU: the value storage of the factor
/// (split-complex — see [`SplitComplexVec`]), the within-block pivot
/// permutations and a scratch row. Reusable — one per worker,
/// re-[`BlockSparseLu::factor`]ed at every wavelength point against a
/// shared [`BlockSymbolic`]; every buffer stops allocating once it
/// reaches its high-water mark.
///
/// The panel-shaped inner loops dispatch through [`crate::simd::kernels`]
/// and are bit-identical across instruction sets; see the module docs.
#[derive(Debug)]
pub struct BlockSparseLu {
    values: SplitComplexVec,
    pivots: Vec<usize>,
    scratch: SplitComplexVec,
    diag_inv: Vec<Complex>,
}

impl Default for BlockSparseLu {
    fn default() -> Self {
        BlockSparseLu::new()
    }
}

impl BlockSparseLu {
    /// An empty numeric workspace; size it with [`BlockSparseLu::reset`]
    /// or [`BlockSparseLu::load`] before assembling.
    pub fn new() -> Self {
        BlockSparseLu {
            values: SplitComplexVec::new(),
            pivots: Vec::new(),
            scratch: SplitComplexVec::new(),
            diag_inv: Vec::new(),
        }
    }

    /// Zeroes the value storage and sizes it for `sym`. Fill blocks start
    /// (and must remain, until factoring) all-zero.
    pub fn reset(&mut self, sym: &BlockSymbolic) {
        self.values.resize_zero(sym.values_len());
    }

    /// Replaces the value storage with a copy of `baseline` (an image
    /// produced by a previous assembly — the wavelength-independent part
    /// of a sweep's system). No allocation once capacity has grown.
    pub fn load(&mut self, baseline: &SplitComplexVec) {
        self.values.copy_from(baseline);
    }

    /// Mutable access to the value storage for scattering assembly
    /// entries at offsets from [`BlockSymbolic::entry_offset`].
    pub fn values_mut(&mut self) -> &mut SplitComplexVec {
        &mut self.values
    }

    /// Read access to the value storage (a baseline image to
    /// [`BlockSparseLu::load`] later, or diagnostics).
    pub fn values(&self) -> &SplitComplexVec {
        &self.values
    }

    /// Factors the assembled system in place: `Q^T·A·Q = L·U` with `Q`
    /// the symbolic block order and dense partial pivoting confined to
    /// each diagonal block. After a successful return the storage holds
    /// the factors and [`BlockSparseLu::solve_in_place`] may be called
    /// any number of times.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] (with the scalar column in
    /// elimination order) when a diagonal pivot block is numerically
    /// singular. The storage is then unspecified; re-assemble before the
    /// next factorization.
    ///
    /// # Panics
    ///
    /// Panics if the storage was not sized for `sym` (via
    /// [`BlockSparseLu::reset`] or [`BlockSparseLu::load`]).
    pub fn factor(&mut self, sym: &BlockSymbolic) -> Result<(), SingularMatrixError> {
        assert_eq!(
            self.values.len(),
            sym.values_len(),
            "value storage does not match the symbolic analysis"
        );
        self.pivots.clear();
        self.pivots.resize(sym.scalar_dim(), 0);
        let kern = simd::kernels();
        let n = sym.block_count();
        for k in 0..n {
            let sk = sym.sizes[k];
            let so = sym.scalar_off[k];
            let w = sym.row_stride[k];
            let base = sym.row_base[k];
            let d_col = sym.col_off[sym.diag_idx[k]];
            let d_off = base + d_col;
            // Factor the diagonal block with dense partial pivoting
            // (scalar: a few entries wide, sequential by construction).
            {
                let (vr, vi) = self.values.parts_mut();
                lu_block(vr, vi, d_off, w, sk, &mut self.pivots[so..so + sk], so)?;
            }
            // U_k,tail = L_kk⁻¹ · P_k · A_k,tail for everything right of
            // the diagonal — one contiguous strip of the row panel, so
            // the pivots and the unit-lower solve run over the whole
            // tail at full width.
            let tail = w - d_col - sk;
            if tail > 0 {
                let (vr, vi) = self.values.parts_mut();
                apply_row_pivots(vr, vi, d_off + sk, w, tail, &self.pivots[so..so + sk]);
                let pr = vr.as_mut_ptr();
                let pi = vi.as_mut_ptr();
                // SAFETY: the triangle (columns `d_col..d_col+sk`) and
                // the tail (columns after it) are disjoint strips of row
                // `k`'s in-bounds panel; the kernel reads the former and
                // writes the latter.
                unsafe {
                    kern.trsm_lower_unit_ptr(
                        sk,
                        tail,
                        pr.add(d_off),
                        pi.add(d_off),
                        w,
                        pr.add(d_off + sk),
                        pi.add(d_off + sk),
                        w,
                    );
                }
            }
            // Snapshot row k's panel from the diagonal column on — the L
            // strip left of it is never read by this step's consumers —
            // because the Schur updates below read it while mutating
            // other rows. In scratch coordinates column `c` of the panel
            // sits at `c - d_col`.
            let snap = base + d_col;
            self.scratch
                .copy_range_from(&self.values, snap, base + sk * w);
            // Hoist the diagonal reciprocals once per step: every block
            // below shares `U_kk`, and `x / u` is defined as
            // `x * u.recip()`, so multiplying is bit-identical to
            // dividing inside the loop.
            self.diag_inv.clear();
            self.diag_inv.extend((0..sk).map(|c| {
                Complex::new(self.scratch.re[c * w + c], self.scratch.im[c * w + c]).recip()
            }));
            // L_ik = A_ik · U_kk⁻¹ for the blocks below the diagonal
            // (scalar: sequential dependence along each row).
            for &(i, off_ik) in &sym.below[k] {
                let si = sym.sizes[i];
                let (vr, vi) = self.values.parts_mut();
                trsm_right_upper(
                    &self.scratch.re,
                    &self.scratch.im,
                    0,
                    w,
                    sk,
                    &self.diag_inv,
                    vr,
                    vi,
                    off_ik,
                    sym.row_stride[i],
                    si,
                );
            }
            // Pre-scheduled Schur runs: C_i,J −= L_ik · U_k,J. L and the
            // target strip live in the same row panel with col k < every
            // col of J, so their column ranges are disjoint.
            for u in &sym.upd[sym.upd_ptr[k]..sym.upd_ptr[k + 1]] {
                debug_assert!(u.l_off + sk <= u.t_off);
                let (vr, vi) = self.values.parts_mut();
                let pr = vr.as_mut_ptr();
                let pi = vi.as_mut_ptr();
                // SAFETY: B comes from the scratch snapshot (a separate
                // buffer); L and C are disjoint column strips of row
                // `i`'s in-bounds panel (asserted above), and every
                // strided access stays inside that panel.
                unsafe {
                    kern.gemm_sub_ptr(
                        u.rows,
                        sk,
                        u.cols,
                        pr.add(u.l_off),
                        pi.add(u.l_off),
                        u.ld,
                        self.scratch.re.as_ptr().add(u.b_col - d_col),
                        self.scratch.im.as_ptr().add(u.b_col - d_col),
                        w,
                        pr.add(u.t_off),
                        pi.add(u.t_off),
                        u.ld,
                    );
                }
            }
        }
        Ok(())
    }

    /// Solves `A · X = B` in place for a panel of `ncols` right-hand-side
    /// columns. `rhs` is row-major `scalar_dim × ncols` in **elimination
    /// order** (assemble through [`BlockSymbolic::scalar_row`]); on
    /// return it holds the solution in the same layout. The whole panel
    /// moves through the factor in one pass — the pivot permutations and
    /// factor blocks are traversed once regardless of `ncols`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != scalar_dim · ncols` or the factorization
    /// has not run.
    pub fn solve_in_place(&self, sym: &BlockSymbolic, rhs: &mut SplitComplexVec, ncols: usize) {
        assert_eq!(
            rhs.len(),
            sym.scalar_dim() * ncols,
            "right-hand-side panel has the wrong shape"
        );
        assert_eq!(self.pivots.len(), sym.scalar_dim(), "factorization missing");
        if ncols == 0 || sym.scalar_dim() == 0 {
            return;
        }
        let kern = simd::kernels();
        let n = sym.block_count();
        let vr = &self.values.re;
        let vi = &self.values.im;
        let (rr, ri) = rhs.parts_mut();
        // Forward: apply within-block pivots, unit-lower solves, and
        // push updates down the below-diagonal column lists.
        for k in 0..n {
            let sk = sym.sizes[k];
            let so = sym.scalar_off[k];
            let w = sym.row_stride[k];
            let d_off = sym.row_base[k] + sym.col_off[sym.diag_idx[k]];
            apply_row_pivots(rr, ri, so * ncols, ncols, ncols, &self.pivots[so..so + sk]);
            let rp = rr.as_mut_ptr();
            let ip = ri.as_mut_ptr();
            // SAFETY: the factor panels are read-only here; the RHS rows
            // touched per call ([so, so+sk) then each [soi, soi+si) with
            // soi ≥ so + sk) are in-bounds and disjoint from the rows
            // read as B.
            unsafe {
                kern.trsm_lower_unit_ptr(
                    sk,
                    ncols,
                    vr.as_ptr().add(d_off),
                    vi.as_ptr().add(d_off),
                    w,
                    rp.add(so * ncols),
                    ip.add(so * ncols),
                    ncols,
                );
                for &(i, off_ik) in &sym.below[k] {
                    let si = sym.sizes[i];
                    let soi = sym.scalar_off[i];
                    kern.gemm_sub_ptr(
                        si,
                        sk,
                        ncols,
                        vr.as_ptr().add(off_ik),
                        vi.as_ptr().add(off_ik),
                        sym.row_stride[i],
                        rp.add(so * ncols),
                        ip.add(so * ncols),
                        ncols,
                        rp.add(soi * ncols),
                        ip.add(soi * ncols),
                        ncols,
                    );
                }
            }
        }
        // Backward: subtract the U blocks right of each diagonal, then
        // divide through the diagonal factor.
        for k in (0..n).rev() {
            let sk = sym.sizes[k];
            let so = sym.scalar_off[k];
            let w = sym.row_stride[k];
            let base = sym.row_base[k];
            let rp = rr.as_mut_ptr();
            let ip = ri.as_mut_ptr();
            // SAFETY: same in-bounds/disjointness argument as the forward
            // pass — every U block has col j > k, so soj ≥ so + sk and
            // the B rows never alias the C rows.
            unsafe {
                for &(u_off, width, soj) in &sym.bwd[sym.bwd_ptr[k]..sym.bwd_ptr[k + 1]] {
                    kern.gemm_sub_ptr(
                        sk,
                        width,
                        ncols,
                        vr.as_ptr().add(u_off),
                        vi.as_ptr().add(u_off),
                        w,
                        rp.add(soj * ncols),
                        ip.add(soj * ncols),
                        ncols,
                        rp.add(so * ncols),
                        ip.add(so * ncols),
                        ncols,
                    );
                }
                let d_off = base + sym.col_off[sym.diag_idx[k]];
                kern.trsm_upper_ptr(
                    sk,
                    ncols,
                    vr.as_ptr().add(d_off),
                    vi.as_ptr().add(d_off),
                    w,
                    rp.add(so * ncols),
                    ip.add(so * ncols),
                    ncols,
                );
            }
        }
    }
}

/// Dense partial-pivot LU of an `s × s` block in place. The block lives
/// at element offset `base` of a row panel with row stride `ld` (split
/// storage, unit lower diagonal implicit). The pivot swaps touch only the
/// block's own `s` columns — the U tail right of it is permuted
/// separately by [`apply_row_pivots`]. `col_base` labels singularity
/// reports with the block's global scalar offset. Scalar on purpose:
/// blocks are a handful of entries wide and the pivot search/swap
/// sequence is inherently sequential.
fn lu_block(
    ar: &mut [f64],
    ai: &mut [f64],
    base: usize,
    ld: usize,
    s: usize,
    piv: &mut [usize],
    col_base: usize,
) -> Result<(), SingularMatrixError> {
    #[inline(always)]
    fn at(re: &[f64], im: &[f64], idx: usize) -> Complex {
        Complex::new(re[idx], im[idx])
    }
    for c in 0..s {
        let mut pivot_row = c;
        let mut pivot_mag = at(ar, ai, base + c * ld + c).abs();
        for r in c + 1..s {
            let mag = at(ar, ai, base + r * ld + c).abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag.is_nan() || pivot_mag <= 1e-300 {
            return Err(SingularMatrixError {
                column: col_base + c,
            });
        }
        piv[c] = pivot_row;
        if pivot_row != c {
            for cc in 0..s {
                ar.swap(base + c * ld + cc, base + pivot_row * ld + cc);
                ai.swap(base + c * ld + cc, base + pivot_row * ld + cc);
            }
        }
        let pivot = at(ar, ai, base + c * ld + c);
        for r in c + 1..s {
            let factor = at(ar, ai, base + r * ld + c) / pivot;
            ar[base + r * ld + c] = factor.re;
            ai[base + r * ld + c] = factor.im;
            if factor == Complex::ZERO {
                continue;
            }
            for cc in c + 1..s {
                let sub = factor * at(ar, ai, base + c * ld + cc);
                ar[base + r * ld + cc] -= sub.re;
                ai[base + r * ld + cc] -= sub.im;
            }
        }
    }
    Ok(())
}

/// Applies a within-block pivot sequence (LAPACK `ipiv` semantics: swap
/// row `c` with row `piv[c]`, in order) to `len` columns of a split panel
/// starting at element offset `base` with row stride `ld`.
fn apply_row_pivots(
    br: &mut [f64],
    bi: &mut [f64],
    base: usize,
    ld: usize,
    len: usize,
    piv: &[usize],
) {
    for (c, &pr) in piv.iter().enumerate() {
        if pr != c {
            for cc in 0..len {
                br.swap(base + c * ld + cc, base + pr * ld + cc);
                bi.swap(base + c * ld + cc, base + pr * ld + cc);
            }
        }
    }
}

/// `A ← A · U⁻¹` for the upper triangle of a compact `s × s` LU block at
/// element offset `u_base` (row stride `ld_u`), applied to every row of
/// an `nrows × s` split panel at offset `a_base` (row stride `ld_a`).
/// `inv` carries the pre-computed diagonal reciprocals (hoisted by the
/// caller: `x / u == x * u.recip()` by [`Complex`]'s `Div` definition, so
/// sharing them across blocks changes no bits). Scalar on purpose: each
/// row's entries depend sequentially on the previous ones.
#[allow(clippy::too_many_arguments)]
fn trsm_right_upper(
    ur: &[f64],
    ui: &[f64],
    u_base: usize,
    ld_u: usize,
    s: usize,
    inv: &[Complex],
    ar: &mut [f64],
    ai: &mut [f64],
    a_base: usize,
    ld_a: usize,
    nrows: usize,
) {
    for row in 0..nrows {
        let base = a_base + row * ld_a;
        for c in 0..s {
            let mut acc = Complex::new(ar[base + c], ai[base + c]);
            for m in 0..c {
                let x = Complex::new(ar[base + m], ai[base + m]);
                acc -= x * Complex::new(ur[u_base + m * ld_u + c], ui[u_base + m * ld_u + c]);
            }
            let v = acc * inv[c];
            ar[base + c] = v.re;
            ai[base + c] = v.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CMatrix, LuDecomposition};

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Deterministic pseudo-random fill, as in the `lu` tests.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        }
    }

    /// Assembles a random diagonally-dominant block system over the given
    /// structure, returning both the sparse storage and an equivalent
    /// dense matrix (in elimination scalar order).
    fn random_system(
        sizes: &[usize],
        edges: &[(usize, usize)],
        seed: u64,
    ) -> (BlockSymbolic, BlockSparseLu, CMatrix) {
        let sym = BlockSymbolic::analyze(sizes, edges);
        let mut lu = BlockSparseLu::new();
        lu.reset(&sym);
        let nd = sym.scalar_dim();
        let mut dense = CMatrix::zeros(nd, nd);
        let mut next = rng(seed);
        let mut stored: Vec<(usize, usize)> = edges.to_vec();
        stored.extend((0..sizes.len()).map(|b| (b, b)));
        stored.sort_unstable();
        stored.dedup();
        for &(bi, bj) in &stored {
            for li in 0..sizes[bi] {
                for lj in 0..sizes[bj] {
                    let v = if bi == bj && li == lj {
                        // Dominant diagonal keeps the reference solve
                        // well-conditioned without defeating pivoting.
                        c(4.0 + next(), next())
                    } else {
                        c(next() * 0.8, next() * 0.8)
                    };
                    let off = sym.entry_offset(bi, bj, li, lj).unwrap();
                    lu.values_mut().set(off, v);
                    dense[(sym.scalar_row(bi, li), sym.scalar_row(bj, lj))] = v;
                }
            }
        }
        (sym, lu, dense)
    }

    #[test]
    fn chain_structure_solves_like_dense() {
        // A chain of 5 blocks of mixed sizes: 0–1–2–3–4.
        let sizes = [2usize, 3, 1, 2, 2];
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let (sym, mut lu, dense) = random_system(&sizes, &edges, 11);
        lu.factor(&sym).unwrap();

        let nd = sym.scalar_dim();
        let ncols = 3;
        let mut next = rng(99);
        let rhs_mat = CMatrix::from_fn(nd, ncols, |_, _| c(next(), next()));
        let mut panel = SplitComplexVec::from_interleaved(rhs_mat.as_slice());
        lu.solve_in_place(&sym, &mut panel, ncols);

        let reference = LuDecomposition::factor(&dense)
            .unwrap()
            .solve_matrix(&rhs_mat);
        for r in 0..nd {
            for cc in 0..ncols {
                assert!(
                    (panel.get(r * ncols + cc) - reference[(r, cc)]).abs() < 1e-11,
                    "mismatch at ({r}, {cc})"
                );
            }
        }
    }

    #[test]
    fn grid_structure_with_fill_solves_like_dense() {
        // A 3×3 grid of 2-port blocks — elimination must create fill.
        let sizes = vec![2usize; 9];
        let mut edges = Vec::new();
        for r in 0..3 {
            for cc in 0..3 {
                let v = r * 3 + cc;
                if cc + 1 < 3 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3));
                }
            }
        }
        let (sym, mut lu, dense) = random_system(&sizes, &edges, 5);
        assert!(sym.fill_block_count() > 0, "a grid must produce fill");
        lu.factor(&sym).unwrap();

        let nd = sym.scalar_dim();
        let mut next = rng(7);
        let rhs_mat = CMatrix::from_fn(nd, 2, |_, _| c(next(), next()));
        let mut panel = SplitComplexVec::from_interleaved(rhs_mat.as_slice());
        lu.solve_in_place(&sym, &mut panel, 2);
        let reference = LuDecomposition::factor(&dense)
            .unwrap()
            .solve_matrix(&rhs_mat);
        for r in 0..nd {
            for cc in 0..2 {
                assert!((panel.get(r * 2 + cc) - reference[(r, cc)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn refactoring_reuses_storage_deterministically() {
        let sizes = [2usize, 2, 2];
        let edges = [(0, 1), (1, 2)];
        let (sym, mut lu, _) = random_system(&sizes, &edges, 3);
        let baseline = lu.values().clone();
        lu.factor(&sym).unwrap();
        let first = lu.values().clone();
        // Reload the identical assembly and refactor: identical bits.
        lu.load(&baseline);
        lu.factor(&sym).unwrap();
        assert_eq!(lu.values(), &first);
    }

    #[test]
    fn forced_scalar_factor_and_solve_agree_within_tolerance() {
        // The vector tiers deviate from the scalar fallback only by FMA
        // contraction (see `simd`'s module docs); verify end-to-end on a
        // filled system that factor and solution stay within a tolerance
        // far tighter than any structural divergence could produce.
        let sizes = vec![3usize; 9];
        let mut edges = Vec::new();
        for r in 0..3 {
            for cc in 0..3 {
                let v = r * 3 + cc;
                if cc + 1 < 3 {
                    edges.push((v, v + 1));
                }
                if r + 1 < 3 {
                    edges.push((v, v + 3));
                }
            }
        }
        let (sym, mut lu, _) = random_system(&sizes, &edges, 21);
        let baseline = lu.values().clone();
        let nd = sym.scalar_dim();
        let ncols = 5;
        let mut next = rng(33);
        let rhs: Vec<Complex> = (0..nd * ncols).map(|_| c(next(), next())).collect();

        lu.factor(&sym).unwrap();
        let simd_factor = lu.values().clone();
        let mut simd_panel = SplitComplexVec::from_interleaved(&rhs);
        lu.solve_in_place(&sym, &mut simd_panel, ncols);

        let (scalar_factor, scalar_panel) = simd::with_forced_scalar(|| {
            lu.load(&baseline);
            lu.factor(&sym).unwrap();
            let mut panel = SplitComplexVec::from_interleaved(&rhs);
            lu.solve_in_place(&sym, &mut panel, ncols);
            (lu.values().clone(), panel)
        });

        let close = |a: &SplitComplexVec, b: &SplitComplexVec, what: &str| {
            assert_eq!(a.len(), b.len());
            for idx in 0..a.len() {
                let d = (a.get(idx) - b.get(idx)).abs();
                let scale = b.get(idx).abs().max(1.0);
                assert!(d <= 1e-11 * scale, "{what}[{idx}]: |Δ| = {d:e}");
            }
        };
        close(&simd_factor, &scalar_factor, "factor");
        close(&simd_panel, &scalar_panel, "solution");
    }

    #[test]
    fn singular_diagonal_block_is_reported() {
        let sym = BlockSymbolic::analyze(&[2], &[]);
        let mut lu = BlockSparseLu::new();
        lu.reset(&sym);
        // Rank-1 block: [[1, 2], [2, 4]].
        lu.values_mut()
            .set(sym.entry_offset(0, 0, 0, 0).unwrap(), c(1.0, 0.0));
        lu.values_mut()
            .set(sym.entry_offset(0, 0, 0, 1).unwrap(), c(2.0, 0.0));
        lu.values_mut()
            .set(sym.entry_offset(0, 0, 1, 0).unwrap(), c(2.0, 0.0));
        lu.values_mut()
            .set(sym.entry_offset(0, 0, 1, 1).unwrap(), c(4.0, 0.0));
        let err = lu.factor(&sym).unwrap_err();
        assert_eq!(err.column, 1);
    }

    #[test]
    fn empty_system_is_a_no_op() {
        let sym = BlockSymbolic::analyze(&[], &[]);
        assert_eq!(sym.scalar_dim(), 0);
        assert_eq!(sym.values_len(), 0);
        let mut lu = BlockSparseLu::new();
        lu.reset(&sym);
        lu.factor(&sym).unwrap();
        let mut rhs = SplitComplexVec::new();
        lu.solve_in_place(&sym, &mut rhs, 4);
    }

    #[test]
    fn ordering_is_deterministic_and_fill_reducing() {
        // A star: hub 0 connected to six leaves. Eliminating leaves first
        // produces zero fill; eliminating the hub first fills everything.
        let sizes = vec![2usize; 7];
        let edges: Vec<(usize, usize)> = (1..7).map(|l| (0, l)).collect();
        let a = BlockSymbolic::analyze(&sizes, &edges);
        let b = BlockSymbolic::analyze(&sizes, &edges);
        assert_eq!(a.fill_block_count(), 0, "min-degree defers the hub");
        assert_eq!(a.inv_perm, b.inv_perm, "analysis must be deterministic");
        // The hub survives until only one leaf is left (a tie it then
        // wins on block id).
        assert!(a.inv_perm[0] >= 5, "hub eliminated too early");
    }

    #[test]
    fn scalar_rows_cover_the_dimension_exactly() {
        let sizes = [3usize, 1, 2];
        let sym = BlockSymbolic::analyze(&sizes, &[(0, 1), (1, 2), (0, 2)]);
        let mut seen = vec![false; sym.scalar_dim()];
        for (b, &s) in sizes.iter().enumerate() {
            for l in 0..s {
                let r = sym.scalar_row(b, l);
                assert!(!seen[r], "scalar rows must be disjoint");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn split_vec_round_trips_and_indexes() {
        let src = [c(1.0, -2.0), c(0.0, 0.5), c(-3.0, 4.0)];
        let mut v = SplitComplexVec::from_interleaved(&src);
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_interleaved(), src);
        v.add_assign(1, c(1.0, 1.0));
        v.sub_assign(2, c(0.5, 0.0));
        assert_eq!(v.get(1), c(1.0, 1.5));
        assert_eq!(v.get(2), c(-3.5, 4.0));
        let mut w = SplitComplexVec::new();
        w.copy_from(&v);
        assert_eq!(w, v);
        w.resize_zero(2);
        assert_eq!(w.get(0), Complex::ZERO);
        let mut r = SplitComplexVec::new();
        r.copy_range_from(&v, 1, 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), v.get(1));
    }
}
