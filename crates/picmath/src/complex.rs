//! Double-precision complex numbers.
//!
//! The frequency-domain S-parameters manipulated throughout PICBench-rs are
//! complex amplitudes, so this module provides a small, fully in-repo complex
//! type with the arithmetic and transcendental operations the simulator and
//! the unitary decompositions need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use picbench_math::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::i();
/// assert_eq!(a * b, Complex::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// Creates a purely real complex number.
    ///
    /// ```
    /// use picbench_math::Complex;
    /// assert_eq!(Complex::real(2.5), Complex::new(2.5, 0.0));
    /// ```
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use picbench_math::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (modulus). Uses `hypot` for robustness near overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns an infinite/NaN value when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    ///
    /// ```
    /// use picbench_math::Complex;
    /// let z = Complex::new(-4.0, 0.0).sqrt();
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Whether both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with an absolute tolerance on each component.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1 by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Sub<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::i() * Complex::i(), -Complex::ONE);
        assert_eq!(Complex::from(3.0), Complex::real(3.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.75, 4.0);
        assert_eq!(a + b - b, a);
        assert!(((a * b) / b - a).abs() < 1e-12);
        assert_eq!(-(-a), a);
        assert_eq!(a + 1.0, Complex::new(2.5, -2.5));
        assert_eq!(2.0 * a, Complex::new(3.0, -5.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z * z.conj() - Complex::real(25.0)).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex::i() * PI).exp();
        assert!(z.approx_eq(-Complex::ONE, 1e-12));
    }

    #[test]
    fn cis_matches_exp() {
        for k in 0..16 {
            let t = k as f64 * 0.41;
            assert!(Complex::cis(t).approx_eq((Complex::i() * t).exp(), 1e-12));
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-2.0, 3.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-12));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(0.9, 0.3);
        let mut acc = Complex::ONE;
        for n in 0..10 {
            assert!(z.powi(n).approx_eq(acc, 1e-10));
            acc *= z;
        }
        assert!(z.powi(-2).approx_eq((z * z).recip(), 1e-10));
    }

    #[test]
    fn recip_is_inverse() {
        let z = Complex::new(2.0, -1.0);
        assert!((z * z.recip()).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
