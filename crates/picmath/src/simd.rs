//! Runtime-dispatched SIMD kernels for split-complex (SoA) panels.
//!
//! The block-sparse solver ([`crate::sparse`]) stores complex panels as
//! two parallel `f64` arrays (real parts / imaginary parts). Every hot
//! kernel — the Schur-update GEMM, the unit-lower and upper triangular
//! panel solves, and the `S_ee + S_ei·X` combine's axpy — is implemented
//! once as a generic body over a minimal vector abstraction (`Vf`) and
//! instantiated per instruction set:
//!
//! * **scalar** — `Vf` over plain `f64`, always compiled, on every
//!   platform; the reference semantics.
//! * **AVX2** — 4 × `f64` lanes (`x86_64`, runtime-detected).
//! * **AVX-512F** — 8 × `f64` lanes (`x86_64`, runtime-detected).
//! * **NEON** — 2 × `f64` lanes (`aarch64`, baseline feature).
//!
//! The panel kernels take explicit **row strides** (`lda`/`ldb`/`ldc`),
//! so a block embedded in a wider row panel — the storage layout
//! [`crate::sparse`] uses so whole block rows are contiguous — runs
//! through the same bodies as a packed block.
//!
//! [`kernels`] selects the widest available implementation once per
//! process (cached), honouring the `PICBENCH_FORCE_SCALAR=1` environment
//! override (read once, at first use) and the programmatic
//! [`with_forced_scalar`] scope used by differential tests.
//!
//! ## Lane order and numerical contract
//!
//! Every tier walks panels the same way, so results are a pure function
//! of the tier — never of panel alignment or call pattern:
//!
//! * Panels are processed in ascending element order, in groups of
//!   `LANES` elements with one masked partial group covering the
//!   remainder (inactive lanes are loaded as `+0.0` and never stored).
//!   All operations are element-wise, so grouping cannot reorder the
//!   arithmetic applied to any one element, and each element's
//!   multiply-accumulate chain runs in the same `k`-ascending order on
//!   every tier.
//! * The **scalar tier is the reference**: a complex multiply is
//!   `(f.re·y.re − f.im·y.im, f.re·y.im + f.im·y.re)` — plain IEEE-754
//!   mul/add/sub, no FMA, no reassociation, matching [`Complex`]'s
//!   `Mul` exactly. Divisions are hoisted as one scalar
//!   [`Complex::recip`] per pivot and applied as a complex multiply —
//!   the same value [`Complex`]'s `Div` computes per element.
//! * The **vector tiers contract** each `a·b ± c` in those trees into a
//!   fused multiply-add (`Vf::cmac_sub` and friends). This is the one
//!   permitted deviation from the scalar tier: it skips an intermediate
//!   rounding per product (≤ 1 ulp locally, and usually *more*
//!   accurate), so SIMD and scalar results may differ in the last bits.
//!   The deviation is bounded and gated — the `simd` conformance axis
//!   sweeps every generator family differentially against
//!   [`with_forced_scalar`] under a tight tolerance, and this module's
//!   tests bound each kernel against its scalar instantiation.
//! * Zero-coefficient skips test `f.re == 0.0 && f.im == 0.0`, the same
//!   predicate as the scalar `f == Complex::ZERO`, independent of lane
//!   grouping.
//!
//! Within one tier, results are deterministic and bit-stable: refactor
//! and re-solve reproduce identical bits, and serial vs parallel sweeps
//! stay element-wise identical (every worker dispatches the same tier).

use crate::Complex;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// An instruction-set tier the kernels can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Plain `f64` arithmetic — always available, the reference path.
    Scalar,
    /// AVX2: 4 × `f64` lanes (`x86_64`).
    Avx2,
    /// AVX-512F: 8 × `f64` lanes (`x86_64`).
    Avx512,
    /// NEON: 2 × `f64` lanes (`aarch64`).
    Neon,
}

impl SimdLevel {
    /// Stable kebab-case token used in bench reports and CLI output.
    pub fn token(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Neon => "neon",
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for SimdLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        [
            SimdLevel::Scalar,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
            SimdLevel::Neon,
        ]
        .iter()
        .find(|l| l.token() == s)
        .copied()
        .ok_or_else(|| format!("unknown SIMD level {s:?}"))
    }
}

#[allow(clippy::too_many_arguments)]
type GemmSubFn = unsafe fn(
    m: usize,
    k: usize,
    n: usize,
    ar: *const f64,
    ai: *const f64,
    lda: usize,
    br: *const f64,
    bi: *const f64,
    ldb: usize,
    cr: *mut f64,
    ci: *mut f64,
    ldc: usize,
);
type TrsmFn = unsafe fn(
    s: usize,
    ncols: usize,
    tr: *const f64,
    ti: *const f64,
    ldt: usize,
    br: *mut f64,
    bi: *mut f64,
    ldb: usize,
);
type AxpyFn = unsafe fn(
    len: usize,
    fr: f64,
    fi: f64,
    yr: *const f64,
    yi: *const f64,
    xr: *mut f64,
    xi: *mut f64,
);

/// A dispatched kernel table: one entry per hot operation, resolved to
/// the selected instruction set. Obtain via [`kernels`]; the safe methods
/// check shapes and wrap the raw calls.
pub struct Kernels {
    level: SimdLevel,
    gemm_sub: GemmSubFn,
    trsm_lower_unit: TrsmFn,
    trsm_upper: TrsmFn,
    axpy_sub: AxpyFn,
    axpy_add: AxpyFn,
}

impl fmt::Debug for Kernels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernels")
            .field("level", &self.level)
            .finish()
    }
}

impl Kernels {
    /// The instruction-set tier these kernels run on.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// `C −= A·B` on packed row-major split-complex blocks (`m × k`,
    /// `k × n`, `m × n`).
    ///
    /// # Panics
    ///
    /// Panics if any component slice is shorter than its block shape or a
    /// re/im pair disagrees in length.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_sub(
        &self,
        cr: &mut [f64],
        ci: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(ar.len() >= m * k && ai.len() == ar.len(), "A too small");
        assert!(br.len() >= k * n && bi.len() == br.len(), "B too small");
        assert!(cr.len() >= m * n && ci.len() == cr.len(), "C too small");
        // SAFETY: shapes checked above; A, B and C are disjoint by the
        // borrow rules (two shared, one exclusive, distinct slices).
        unsafe {
            (self.gemm_sub)(
                m,
                k,
                n,
                ar.as_ptr(),
                ai.as_ptr(),
                k,
                br.as_ptr(),
                bi.as_ptr(),
                n,
                cr.as_mut_ptr(),
                ci.as_mut_ptr(),
                n,
            )
        }
    }

    /// Strided raw dispatch of `C −= A·B`: operand rows live `ld*`
    /// elements apart, so blocks embedded in wider row panels feed the
    /// kernel in place.
    ///
    /// # Safety
    ///
    /// Every accessed element (`row·ld + col` from each base pointer, for
    /// the operand's `rows × cols` shape) must be in bounds, and the `C`
    /// region must not overlap `A` or `B`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn gemm_sub_ptr(
        &self,
        m: usize,
        k: usize,
        n: usize,
        ar: *const f64,
        ai: *const f64,
        lda: usize,
        br: *const f64,
        bi: *const f64,
        ldb: usize,
        cr: *mut f64,
        ci: *mut f64,
        ldc: usize,
    ) {
        (self.gemm_sub)(m, k, n, ar, ai, lda, br, bi, ldb, cr, ci, ldc)
    }

    /// `B ← L⁻¹·B` for the unit-lower triangle of a packed `s × s` LU
    /// block over a packed row-major `s × ncols` split-complex panel.
    ///
    /// # Panics
    ///
    /// Panics if a slice is shorter than its shape requires.
    #[inline]
    pub fn trsm_lower_unit(
        &self,
        lr: &[f64],
        li: &[f64],
        s: usize,
        br: &mut [f64],
        bi: &mut [f64],
        ncols: usize,
    ) {
        assert!(lr.len() >= s * s && li.len() == lr.len(), "L too small");
        assert!(br.len() >= s * ncols && bi.len() == br.len(), "B too small");
        // SAFETY: shapes checked; the kernel only forms raw-pointer row
        // views inside the two exclusive panel slices.
        unsafe {
            (self.trsm_lower_unit)(
                s,
                ncols,
                lr.as_ptr(),
                li.as_ptr(),
                s,
                br.as_mut_ptr(),
                bi.as_mut_ptr(),
                ncols,
            )
        }
    }

    /// Strided raw dispatch of the unit-lower panel solve.
    ///
    /// # Safety
    ///
    /// As [`Kernels::gemm_sub_ptr`]: strided accesses in bounds, and the
    /// `B` region disjoint from the triangle `L`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn trsm_lower_unit_ptr(
        &self,
        s: usize,
        ncols: usize,
        lr: *const f64,
        li: *const f64,
        ldl: usize,
        br: *mut f64,
        bi: *mut f64,
        ldb: usize,
    ) {
        (self.trsm_lower_unit)(s, ncols, lr, li, ldl, br, bi, ldb)
    }

    /// `B ← U⁻¹·B` for the upper triangle of a packed `s × s` LU block
    /// over a packed row-major `s × ncols` split-complex panel. The
    /// diagonal division is applied as one hoisted [`Complex::recip`]
    /// multiply per row — on the scalar tier exactly the value dividing
    /// each element produces; vector tiers contract the multiply (see
    /// the module docs).
    ///
    /// # Panics
    ///
    /// Panics if a slice is shorter than its shape requires.
    #[inline]
    pub fn trsm_upper(
        &self,
        ur: &[f64],
        ui: &[f64],
        s: usize,
        br: &mut [f64],
        bi: &mut [f64],
        ncols: usize,
    ) {
        assert!(ur.len() >= s * s && ui.len() == ur.len(), "U too small");
        assert!(br.len() >= s * ncols && bi.len() == br.len(), "B too small");
        // SAFETY: shapes checked; row views stay inside the panel slices.
        unsafe {
            (self.trsm_upper)(
                s,
                ncols,
                ur.as_ptr(),
                ui.as_ptr(),
                s,
                br.as_mut_ptr(),
                bi.as_mut_ptr(),
                ncols,
            )
        }
    }

    /// Strided raw dispatch of the upper panel solve.
    ///
    /// # Safety
    ///
    /// As [`Kernels::gemm_sub_ptr`]: strided accesses in bounds, and the
    /// `B` region disjoint from the triangle `U`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn trsm_upper_ptr(
        &self,
        s: usize,
        ncols: usize,
        ur: *const f64,
        ui: *const f64,
        ldu: usize,
        br: *mut f64,
        bi: *mut f64,
        ldb: usize,
    ) {
        (self.trsm_upper)(s, ncols, ur, ui, ldu, br, bi, ldb)
    }

    /// `x −= f·y` element-wise over split-complex vectors.
    ///
    /// # Panics
    ///
    /// Panics if the four slices do not share one length.
    #[inline]
    pub fn axpy_sub(&self, f: Complex, yr: &[f64], yi: &[f64], xr: &mut [f64], xi: &mut [f64]) {
        let len = xr.len();
        assert!(
            yr.len() == len && yi.len() == len && xi.len() == len,
            "axpy operands disagree in length"
        );
        // SAFETY: lengths checked; x and y are disjoint by borrow rules.
        unsafe {
            (self.axpy_sub)(
                len,
                f.re,
                f.im,
                yr.as_ptr(),
                yi.as_ptr(),
                xr.as_mut_ptr(),
                xi.as_mut_ptr(),
            )
        }
    }

    /// `x += f·y` element-wise over split-complex vectors.
    ///
    /// # Panics
    ///
    /// Panics if the four slices do not share one length.
    #[inline]
    pub fn axpy_add(&self, f: Complex, yr: &[f64], yi: &[f64], xr: &mut [f64], xi: &mut [f64]) {
        let len = xr.len();
        assert!(
            yr.len() == len && yi.len() == len && xi.len() == len,
            "axpy operands disagree in length"
        );
        // SAFETY: lengths checked; x and y are disjoint by borrow rules.
        unsafe {
            (self.axpy_add)(
                len,
                f.re,
                f.im,
                yr.as_ptr(),
                yi.as_ptr(),
                xr.as_mut_ptr(),
                xi.as_mut_ptr(),
            )
        }
    }
}

/// Minimal vector abstraction the generic kernel bodies are written
/// against: a register of `LANES` packed `f64` values with element-wise
/// IEEE-754 arithmetic and masked partial loads/stores for sub-`LANES`
/// tails. One implementation per tier.
///
/// The complex multiply-accumulate helpers ship reference (separately
/// rounded) default bodies that the scalar tier keeps — matching
/// [`Complex`] arithmetic bit for bit — while the vector tiers override
/// them with FMA-contracted forms (see the module docs for the
/// numerical contract).
trait Vf: Copy {
    /// Packed lane count.
    const LANES: usize;
    /// Broadcasts one value to every lane.
    unsafe fn splat(x: f64) -> Self;
    /// Unaligned load of `LANES` consecutive values.
    unsafe fn load(p: *const f64) -> Self;
    /// Unaligned store of `LANES` consecutive values.
    unsafe fn store(self, p: *mut f64);
    /// Masked load of the first `n < LANES` values; inactive lanes are
    /// `+0.0` and no memory past `p + n` is touched.
    unsafe fn load_partial(p: *const f64, n: usize) -> Self;
    /// Masked store of the first `n < LANES` lanes; memory past `p + n`
    /// is untouched.
    unsafe fn store_partial(self, p: *mut f64, n: usize);
    /// Lane-wise addition.
    unsafe fn add(self, o: Self) -> Self;
    /// Lane-wise subtraction.
    unsafe fn sub(self, o: Self) -> Self;
    /// Lane-wise multiplication (not fused).
    unsafe fn mul(self, o: Self) -> Self;
    /// `self·b + c`, fused where the tier has FMA; the default is the
    /// separately-rounded reference.
    #[inline(always)]
    unsafe fn mul_adds(self, b: Self, c: Self) -> Self {
        self.mul(b).add(c)
    }
    /// `c − self·b`, fused where the tier has FMA; the default is the
    /// separately-rounded reference.
    #[inline(always)]
    unsafe fn neg_mul_adds(self, b: Self, c: Self) -> Self {
        c.sub(self.mul(b))
    }
    /// `(accr, acci) −= (fr, fi)·(yr, yi)` — one complex
    /// multiply-accumulate. The default is the exact [`Complex`] `Mul`
    /// tree (`acc − (fr·yr − fi·yi)`, `acc − (fr·yi + fi·yr)`); FMA
    /// tiers override with the contracted form, which keeps the same
    /// operand order but skips intermediate roundings.
    #[inline(always)]
    unsafe fn cmac_sub(
        accr: Self,
        acci: Self,
        fr: Self,
        fi: Self,
        yr: Self,
        yi: Self,
    ) -> (Self, Self) {
        (
            accr.sub(fr.mul(yr).sub(fi.mul(yi))),
            acci.sub(fr.mul(yi).add(fi.mul(yr))),
        )
    }
    /// `(accr, acci) += (fr, fi)·(yr, yi)` (conventions as
    /// [`Vf::cmac_sub`]).
    #[inline(always)]
    unsafe fn cmac_add(
        accr: Self,
        acci: Self,
        fr: Self,
        fi: Self,
        yr: Self,
        yi: Self,
    ) -> (Self, Self) {
        (
            accr.add(fr.mul(yr).sub(fi.mul(yi))),
            acci.add(fr.mul(yi).add(fi.mul(yr))),
        )
    }
    /// Complex multiply `(ar, ai)·(br, bi)` (conventions as
    /// [`Vf::cmac_sub`]).
    #[inline(always)]
    unsafe fn cmul(ar: Self, ai: Self, br: Self, bi: Self) -> (Self, Self) {
        (ar.mul(br).sub(ai.mul(bi)), ar.mul(bi).add(ai.mul(br)))
    }
}

impl Vf for f64 {
    const LANES: usize = 1;
    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        x
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        *p
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        *p = self;
    }
    #[inline(always)]
    unsafe fn load_partial(p: *const f64, _n: usize) -> Self {
        // With one lane the main loop leaves no remainder; kept total
        // so the generic bodies compile for every tier.
        *p
    }
    #[inline(always)]
    unsafe fn store_partial(self, p: *mut f64, _n: usize) {
        *p = self;
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        self * o
    }
}

/// FMA-contracted `(accr, acci) −= (fr, fi)·(yr, yi)`: the operand order
/// of the reference tree with the intermediate roundings fused away.
/// Vector tiers plug this into [`Vf::cmac_sub`].
#[inline(always)]
unsafe fn cmac_sub_fused<V: Vf>(accr: V, acci: V, fr: V, fi: V, yr: V, yi: V) -> (V, V) {
    (
        fi.mul_adds(yi, fr.neg_mul_adds(yr, accr)),
        fi.neg_mul_adds(yr, fr.neg_mul_adds(yi, acci)),
    )
}

/// FMA-contracted `(accr, acci) += (fr, fi)·(yr, yi)`.
#[inline(always)]
unsafe fn cmac_add_fused<V: Vf>(accr: V, acci: V, fr: V, fi: V, yr: V, yi: V) -> (V, V) {
    (
        fi.neg_mul_adds(yi, fr.mul_adds(yr, accr)),
        fi.mul_adds(yr, fr.mul_adds(yi, acci)),
    )
}

/// FMA-contracted complex multiply `(ar, ai)·(br, bi)`.
#[inline(always)]
unsafe fn cmul_fused<V: Vf>(ar: V, ai: V, br: V, bi: V) -> (V, V) {
    (ai.neg_mul_adds(bi, ar.mul(br)), ai.mul_adds(br, ar.mul(bi)))
}

/// Overrides the [`Vf`] complex helpers with their fused compositions —
/// one line per tier with hardware FMA.
macro_rules! fused_cmacs {
    () => {
        #[inline(always)]
        unsafe fn cmac_sub(
            accr: Self,
            acci: Self,
            fr: Self,
            fi: Self,
            yr: Self,
            yi: Self,
        ) -> (Self, Self) {
            super::cmac_sub_fused::<Self>(accr, acci, fr, fi, yr, yi)
        }
        #[inline(always)]
        unsafe fn cmac_add(
            accr: Self,
            acci: Self,
            fr: Self,
            fi: Self,
            yr: Self,
            yi: Self,
        ) -> (Self, Self) {
            super::cmac_add_fused::<Self>(accr, acci, fr, fi, yr, yi)
        }
        #[inline(always)]
        unsafe fn cmul(ar: Self, ai: Self, br: Self, bi: Self) -> (Self, Self) {
            super::cmul_fused::<Self>(ar, ai, br, bi)
        }
    };
}

/// `x −= f·y` over one contiguous run: ascending elements, `LANES` at a
/// time with a masked tail; per element the exact complex-multiply tree.
#[inline(always)]
unsafe fn axpy_sub_g<V: Vf>(
    len: usize,
    fr: f64,
    fi: f64,
    yr: *const f64,
    yi: *const f64,
    xr: *mut f64,
    xi: *mut f64,
) {
    let vfr = V::splat(fr);
    let vfi = V::splat(fi);
    let mut j = 0;
    while j + V::LANES <= len {
        let yrv = V::load(yr.add(j));
        let yiv = V::load(yi.add(j));
        let xrv = V::load(xr.add(j));
        let xiv = V::load(xi.add(j));
        let (outr, outi) = V::cmac_sub(xrv, xiv, vfr, vfi, yrv, yiv);
        outr.store(xr.add(j));
        outi.store(xi.add(j));
        j += V::LANES;
    }
    let rem = len - j;
    if rem > 0 {
        let yrv = V::load_partial(yr.add(j), rem);
        let yiv = V::load_partial(yi.add(j), rem);
        let xrv = V::load_partial(xr.add(j), rem);
        let xiv = V::load_partial(xi.add(j), rem);
        let (outr, outi) = V::cmac_sub(xrv, xiv, vfr, vfi, yrv, yiv);
        outr.store_partial(xr.add(j), rem);
        outi.store_partial(xi.add(j), rem);
    }
}

/// `x += f·y` over one contiguous run (lane order as [`axpy_sub_g`]).
#[inline(always)]
unsafe fn axpy_add_g<V: Vf>(
    len: usize,
    fr: f64,
    fi: f64,
    yr: *const f64,
    yi: *const f64,
    xr: *mut f64,
    xi: *mut f64,
) {
    let vfr = V::splat(fr);
    let vfi = V::splat(fi);
    let mut j = 0;
    while j + V::LANES <= len {
        let yrv = V::load(yr.add(j));
        let yiv = V::load(yi.add(j));
        let xrv = V::load(xr.add(j));
        let xiv = V::load(xi.add(j));
        let (outr, outi) = V::cmac_add(xrv, xiv, vfr, vfi, yrv, yiv);
        outr.store(xr.add(j));
        outi.store(xi.add(j));
        j += V::LANES;
    }
    let rem = len - j;
    if rem > 0 {
        let yrv = V::load_partial(yr.add(j), rem);
        let yiv = V::load_partial(yi.add(j), rem);
        let xrv = V::load_partial(xr.add(j), rem);
        let xiv = V::load_partial(xi.add(j), rem);
        let (outr, outi) = V::cmac_add(xrv, xiv, vfr, vfi, yrv, yiv);
        outr.store_partial(xr.add(j), rem);
        outi.store_partial(xi.add(j), rem);
    }
}

/// `C −= A·B` on strided row-major operands, register-blocked along `n`:
/// each output chunk is loaded once, accumulates every `k` rank-1 term in
/// ascending order, and is stored once — per element the same chain the
/// streaming scalar loop produces.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_sub_g<V: Vf>(
    m: usize,
    k: usize,
    n: usize,
    ar: *const f64,
    ai: *const f64,
    lda: usize,
    br: *const f64,
    bi: *const f64,
    ldb: usize,
    cr: *mut f64,
    ci: *mut f64,
    ldc: usize,
) {
    for r in 0..m {
        let arow = r * lda;
        let crow_r = cr.add(r * ldc);
        let crow_i = ci.add(r * ldc);
        let mut j = 0;
        while j + V::LANES <= n {
            let mut accr = V::load(crow_r.add(j));
            let mut acci = V::load(crow_i.add(j));
            for t in 0..k {
                let fr = *ar.add(arow + t);
                let fi = *ai.add(arow + t);
                if fr == 0.0 && fi == 0.0 {
                    continue;
                }
                let vfr = V::splat(fr);
                let vfi = V::splat(fi);
                let yrv = V::load(br.add(t * ldb + j));
                let yiv = V::load(bi.add(t * ldb + j));
                (accr, acci) = V::cmac_sub(accr, acci, vfr, vfi, yrv, yiv);
            }
            accr.store(crow_r.add(j));
            acci.store(crow_i.add(j));
            j += V::LANES;
        }
        let rem = n - j;
        if rem > 0 {
            let mut accr = V::load_partial(crow_r.add(j), rem);
            let mut acci = V::load_partial(crow_i.add(j), rem);
            for t in 0..k {
                let fr = *ar.add(arow + t);
                let fi = *ai.add(arow + t);
                if fr == 0.0 && fi == 0.0 {
                    continue;
                }
                let vfr = V::splat(fr);
                let vfi = V::splat(fi);
                let yrv = V::load_partial(br.add(t * ldb + j), rem);
                let yiv = V::load_partial(bi.add(t * ldb + j), rem);
                (accr, acci) = V::cmac_sub(accr, acci, vfr, vfi, yrv, yiv);
            }
            accr.store_partial(crow_r.add(j), rem);
            acci.store_partial(crow_i.add(j), rem);
        }
    }
}

/// `B ← L⁻¹·B` (unit lower triangle, strided), rows top-down, each output
/// chunk accumulating its `m < r` terms in ascending order.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn trsm_lower_unit_g<V: Vf>(
    s: usize,
    ncols: usize,
    lr: *const f64,
    li: *const f64,
    ldl: usize,
    br: *mut f64,
    bi: *mut f64,
    ldb: usize,
) {
    for r in 1..s {
        let row_r_r = br.add(r * ldb);
        let row_r_i = bi.add(r * ldb);
        let mut j = 0;
        while j + V::LANES <= ncols {
            let mut accr = V::load(row_r_r.add(j));
            let mut acci = V::load(row_r_i.add(j));
            for m in 0..r {
                let fr = *lr.add(r * ldl + m);
                let fi = *li.add(r * ldl + m);
                if fr == 0.0 && fi == 0.0 {
                    continue;
                }
                let vfr = V::splat(fr);
                let vfi = V::splat(fi);
                let yrv = V::load(br.add(m * ldb + j) as *const f64);
                let yiv = V::load(bi.add(m * ldb + j) as *const f64);
                (accr, acci) = V::cmac_sub(accr, acci, vfr, vfi, yrv, yiv);
            }
            accr.store(row_r_r.add(j));
            acci.store(row_r_i.add(j));
            j += V::LANES;
        }
        let rem = ncols - j;
        if rem > 0 {
            let mut accr = V::load_partial(row_r_r.add(j), rem);
            let mut acci = V::load_partial(row_r_i.add(j), rem);
            for m in 0..r {
                let fr = *lr.add(r * ldl + m);
                let fi = *li.add(r * ldl + m);
                if fr == 0.0 && fi == 0.0 {
                    continue;
                }
                let vfr = V::splat(fr);
                let vfi = V::splat(fi);
                let yrv = V::load_partial(br.add(m * ldb + j) as *const f64, rem);
                let yiv = V::load_partial(bi.add(m * ldb + j) as *const f64, rem);
                (accr, acci) = V::cmac_sub(accr, acci, vfr, vfi, yrv, yiv);
            }
            accr.store_partial(row_r_r.add(j), rem);
            acci.store_partial(row_r_i.add(j), rem);
        }
    }
}

/// `B ← U⁻¹·B` (upper triangle, strided), rows bottom-up: subtract the
/// already-solved tail rows in ascending order, then multiply by the
/// row's hoisted diagonal reciprocal.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn trsm_upper_g<V: Vf>(
    s: usize,
    ncols: usize,
    ur: *const f64,
    ui: *const f64,
    ldu: usize,
    br: *mut f64,
    bi: *mut f64,
    ldb: usize,
) {
    for r in (0..s).rev() {
        // Hoisted scalar reciprocal of the diagonal: per element,
        // multiplying by it is exactly the `Complex::div` the scalar
        // reference performs.
        let inv = Complex::new(*ur.add(r * ldu + r), *ui.add(r * ldu + r)).recip();
        let vir = V::splat(inv.re);
        let vii = V::splat(inv.im);
        let row_r_r = br.add(r * ldb);
        let row_r_i = bi.add(r * ldb);
        let mut j = 0;
        while j + V::LANES <= ncols {
            let mut accr = V::load(row_r_r.add(j));
            let mut acci = V::load(row_r_i.add(j));
            for t in r + 1..s {
                let fr = *ur.add(r * ldu + t);
                let fi = *ui.add(r * ldu + t);
                if fr == 0.0 && fi == 0.0 {
                    continue;
                }
                let vfr = V::splat(fr);
                let vfi = V::splat(fi);
                let yrv = V::load(br.add(t * ldb + j) as *const f64);
                let yiv = V::load(bi.add(t * ldb + j) as *const f64);
                (accr, acci) = V::cmac_sub(accr, acci, vfr, vfi, yrv, yiv);
            }
            let (outr, outi) = V::cmul(accr, acci, vir, vii);
            outr.store(row_r_r.add(j));
            outi.store(row_r_i.add(j));
            j += V::LANES;
        }
        let rem = ncols - j;
        if rem > 0 {
            let mut accr = V::load_partial(row_r_r.add(j), rem);
            let mut acci = V::load_partial(row_r_i.add(j), rem);
            for t in r + 1..s {
                let fr = *ur.add(r * ldu + t);
                let fi = *ui.add(r * ldu + t);
                if fr == 0.0 && fi == 0.0 {
                    continue;
                }
                let vfr = V::splat(fr);
                let vfi = V::splat(fi);
                let yrv = V::load_partial(br.add(t * ldb + j) as *const f64, rem);
                let yiv = V::load_partial(bi.add(t * ldb + j) as *const f64, rem);
                (accr, acci) = V::cmac_sub(accr, acci, vfr, vfi, yrv, yiv);
            }
            let (outr, outi) = V::cmul(accr, acci, vir, vii);
            outr.store_partial(row_r_r.add(j), rem);
            outi.store_partial(row_r_i.add(j), rem);
        }
    }
}

/// Instantiates the five kernel entry points for a tier by delegating to
/// the generic bodies over the given [`Vf`] register type, with an
/// optional `#[target_feature]` gate applied to each.
macro_rules! instantiate_kernels {
    ($(#[$gate:meta])*, $vec:ty) => {
        $(#[$gate])*
        #[allow(clippy::too_many_arguments)]
        pub unsafe fn gemm_sub(
            m: usize,
            k: usize,
            n: usize,
            ar: *const f64,
            ai: *const f64,
            lda: usize,
            br: *const f64,
            bi: *const f64,
            ldb: usize,
            cr: *mut f64,
            ci: *mut f64,
            ldc: usize,
        ) {
            super::gemm_sub_g::<$vec>(m, k, n, ar, ai, lda, br, bi, ldb, cr, ci, ldc)
        }

        $(#[$gate])*
        #[allow(clippy::too_many_arguments)]
        pub unsafe fn trsm_lower_unit(
            s: usize,
            ncols: usize,
            lr: *const f64,
            li: *const f64,
            ldl: usize,
            br: *mut f64,
            bi: *mut f64,
            ldb: usize,
        ) {
            super::trsm_lower_unit_g::<$vec>(s, ncols, lr, li, ldl, br, bi, ldb)
        }

        $(#[$gate])*
        #[allow(clippy::too_many_arguments)]
        pub unsafe fn trsm_upper(
            s: usize,
            ncols: usize,
            ur: *const f64,
            ui: *const f64,
            ldu: usize,
            br: *mut f64,
            bi: *mut f64,
            ldb: usize,
        ) {
            super::trsm_upper_g::<$vec>(s, ncols, ur, ui, ldu, br, bi, ldb)
        }

        $(#[$gate])*
        pub unsafe fn axpy_sub(
            len: usize,
            fr: f64,
            fi: f64,
            yr: *const f64,
            yi: *const f64,
            xr: *mut f64,
            xi: *mut f64,
        ) {
            super::axpy_sub_g::<$vec>(len, fr, fi, yr, yi, xr, xi)
        }

        $(#[$gate])*
        pub unsafe fn axpy_add(
            len: usize,
            fr: f64,
            fi: f64,
            yr: *const f64,
            yi: *const f64,
            xr: *mut f64,
            xi: *mut f64,
        ) {
            super::axpy_add_g::<$vec>(len, fr, fi, yr, yi, xr, xi)
        }
    };
}

/// Scalar instantiations — the always-compiled fallback on every
/// platform, and the separately-rounded reference semantics the vector
/// tiers must match within the FMA-contraction tolerance.
mod scalar {
    instantiate_kernels!(, f64);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Vf;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub struct V(__m256d);

    /// Lane-enable masks for 1–3 active lanes (high bit of each `i64`).
    #[inline(always)]
    unsafe fn mask(n: usize) -> __m256i {
        match n {
            1 => _mm256_setr_epi64x(-1, 0, 0, 0),
            2 => _mm256_setr_epi64x(-1, -1, 0, 0),
            _ => _mm256_setr_epi64x(-1, -1, -1, 0),
        }
    }

    impl Vf for V {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            V(_mm256_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V(_mm256_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn load_partial(p: *const f64, n: usize) -> Self {
            // VMASKMOVPD suppresses faults and zeroes inactive lanes.
            V(_mm256_maskload_pd(p, mask(n)))
        }
        #[inline(always)]
        unsafe fn store_partial(self, p: *mut f64, n: usize) {
            _mm256_maskstore_pd(p, mask(n), self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            V(_mm256_add_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            V(_mm256_sub_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            V(_mm256_mul_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_adds(self, b: Self, c: Self) -> Self {
            V(_mm256_fmadd_pd(self.0, b.0, c.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_adds(self, b: Self, c: Self) -> Self {
            V(_mm256_fnmadd_pd(self.0, b.0, c.0))
        }
        fused_cmacs!();
    }

    instantiate_kernels!(#[target_feature(enable = "avx2,fma")], V);
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::Vf;
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub struct V(__m512d);

    impl Vf for V {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            V(_mm512_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V(_mm512_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn load_partial(p: *const f64, n: usize) -> Self {
            // Masked loads suppress faults on inactive lanes and zero
            // them.
            V(_mm512_maskz_loadu_pd((1u8 << n) - 1, p))
        }
        #[inline(always)]
        unsafe fn store_partial(self, p: *mut f64, n: usize) {
            _mm512_mask_storeu_pd(p, (1u8 << n) - 1, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            V(_mm512_add_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            V(_mm512_sub_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            V(_mm512_mul_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_adds(self, b: Self, c: Self) -> Self {
            V(_mm512_fmadd_pd(self.0, b.0, c.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_adds(self, b: Self, c: Self) -> Self {
            V(_mm512_fnmadd_pd(self.0, b.0, c.0))
        }
        fused_cmacs!();
    }

    instantiate_kernels!(#[target_feature(enable = "avx512f")], V);
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::Vf;
    use std::arch::aarch64::*;

    #[derive(Clone, Copy)]
    pub struct V(float64x2_t);

    impl Vf for V {
        const LANES: usize = 2;
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            V(vdupq_n_f64(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V(vld1q_f64(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            vst1q_f64(p, self.0)
        }
        #[inline(always)]
        unsafe fn load_partial(p: *const f64, _n: usize) -> Self {
            // The only partial width with two lanes is one element.
            V(vsetq_lane_f64::<0>(*p, vdupq_n_f64(0.0)))
        }
        #[inline(always)]
        unsafe fn store_partial(self, p: *mut f64, _n: usize) {
            *p = vgetq_lane_f64::<0>(self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            V(vaddq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            V(vsubq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            V(vmulq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_adds(self, b: Self, c: Self) -> Self {
            // vfmaq(c, a, b) = c + a·b, fused.
            V(vfmaq_f64(c.0, self.0, b.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_adds(self, b: Self, c: Self) -> Self {
            // vfmsq(c, a, b) = c − a·b, fused.
            V(vfmsq_f64(c.0, self.0, b.0))
        }
        fused_cmacs!();
    }

    // NEON is part of the aarch64 baseline, so no `target_feature` gate
    // is needed; the fns stay `unsafe` for signature uniformity with the
    // other tiers.
    instantiate_kernels!(, V);
}

static SCALAR_KERNELS: Kernels = Kernels {
    level: SimdLevel::Scalar,
    gemm_sub: scalar::gemm_sub,
    trsm_lower_unit: scalar::trsm_lower_unit,
    trsm_upper: scalar::trsm_upper,
    axpy_sub: scalar::axpy_sub,
    axpy_add: scalar::axpy_add,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: Kernels = Kernels {
    level: SimdLevel::Avx2,
    gemm_sub: avx2::gemm_sub,
    trsm_lower_unit: avx2::trsm_lower_unit,
    trsm_upper: avx2::trsm_upper,
    axpy_sub: avx2::axpy_sub,
    axpy_add: avx2::axpy_add,
};

#[cfg(target_arch = "x86_64")]
static AVX512_KERNELS: Kernels = Kernels {
    level: SimdLevel::Avx512,
    gemm_sub: avx512::gemm_sub,
    trsm_lower_unit: avx512::trsm_lower_unit,
    trsm_upper: avx512::trsm_upper,
    axpy_sub: avx512::axpy_sub,
    axpy_add: avx512::axpy_add,
};

#[cfg(target_arch = "aarch64")]
static NEON_KERNELS: Kernels = Kernels {
    level: SimdLevel::Neon,
    gemm_sub: neon::gemm_sub,
    trsm_lower_unit: neon::trsm_lower_unit,
    trsm_upper: neon::trsm_upper,
    axpy_sub: neon::axpy_sub,
    axpy_add: neon::axpy_add,
};

/// Nesting depth of [`with_forced_scalar`] scopes (process-wide).
static FORCE_SCALAR_DEPTH: AtomicUsize = AtomicUsize::new(0);

fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        // Both x86 tiers contract through FMA: AVX-512F carries its own
        // fused ops, the AVX2 tier needs the separate `fma` feature (in
        // practice present on every AVX2 part).
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2;
        }
        SimdLevel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// The widest tier this process may use: runtime CPU detection, capped to
/// scalar when `PICBENCH_FORCE_SCALAR` is set to anything but `0`/empty
/// in the environment (read once, at first call).
pub fn available_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let env_forced =
            std::env::var_os("PICBENCH_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
        if env_forced {
            SimdLevel::Scalar
        } else {
            detect()
        }
    })
}

/// The tier the *next* kernel dispatch will use: [`available_level`],
/// overridden to scalar inside any [`with_forced_scalar`] scope.
pub fn active_level() -> SimdLevel {
    if FORCE_SCALAR_DEPTH.load(Ordering::Acquire) > 0 {
        SimdLevel::Scalar
    } else {
        available_level()
    }
}

/// Runs `f` with kernel dispatch forced to the scalar tier (process-wide,
/// re-entrant, panic-safe). The scope exists so differential tests and
/// the `simd` conformance axis can compare the reference and vector
/// paths deliberately; since the override is process-wide, callers that
/// need a *pure* vector-tier run should not overlap it with one (results
/// would still agree within the FMA-contraction tolerance, but not bit
/// for bit).
pub fn with_forced_scalar<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            FORCE_SCALAR_DEPTH.fetch_sub(1, Ordering::Release);
        }
    }
    FORCE_SCALAR_DEPTH.fetch_add(1, Ordering::Acquire);
    let _guard = Guard;
    f()
}

/// The kernel table for [`active_level`] — resolved per call (two atomic
/// loads), so a [`with_forced_scalar`] scope takes effect immediately.
pub fn kernels() -> &'static Kernels {
    match active_level() {
        SimdLevel::Scalar => &SCALAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => &AVX2_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => &AVX512_KERNELS,
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => &NEON_KERNELS,
        // A level that cannot be detected on this architecture is
        // unreachable from `active_level`, but keep the dispatch total.
        #[allow(unreachable_patterns)]
        _ => &SCALAR_KERNELS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        }
    }

    fn random_panel(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut next = rng(seed);
        (
            (0..len).map(|_| next()).collect(),
            (0..len).map(|_| next()).collect(),
        )
    }

    #[test]
    fn level_tokens_round_trip() {
        for level in [
            SimdLevel::Scalar,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
            SimdLevel::Neon,
        ] {
            assert_eq!(level.token().parse::<SimdLevel>().unwrap(), level);
        }
        assert!("sse9".parse::<SimdLevel>().is_err());
    }

    #[test]
    fn forced_scalar_scope_overrides_and_restores() {
        let ambient = active_level();
        with_forced_scalar(|| {
            assert_eq!(active_level(), SimdLevel::Scalar);
            assert_eq!(kernels().level(), SimdLevel::Scalar);
            // Re-entrant.
            with_forced_scalar(|| assert_eq!(active_level(), SimdLevel::Scalar));
            assert_eq!(active_level(), SimdLevel::Scalar);
        });
        assert_eq!(active_level(), ambient);
    }

    /// Element-wise closeness bound for the SIMD-vs-scalar comparisons:
    /// the only permitted deviation is FMA contraction, a sub-ulp local
    /// effect, so the tolerance can sit far below what accumulated
    /// rounding could ever explain away.
    fn assert_close(a: &[f64], b: &[f64], what: &str) {
        const TOL: f64 = 1e-13;
        for (idx, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= TOL * y.abs().max(1.0),
                "{what}[{idx}]: {x} vs {y}"
            );
        }
    }

    /// The heart of the contract: on hardware with a SIMD tier, every
    /// kernel must match the scalar instantiation within the documented
    /// FMA-contraction tolerance, including ragged lengths that exercise
    /// the masked lane tail, zero coefficients and signed zeros.
    #[test]
    fn simd_kernels_match_scalar_within_contraction_tolerance() {
        let wide = kernels();
        if wide.level() == SimdLevel::Scalar {
            return; // nothing to differentiate on this host
        }
        let scalar = &SCALAR_KERNELS;
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
            let (m, k) = (3usize, 4usize);
            let (ar, ai) = random_panel(m * k, 100 + n as u64);
            let (br, bi) = random_panel(k * n, 200 + n as u64);
            let (cr0, ci0) = random_panel(m * n, 300 + n as u64);
            // Plant exact zeros (both signs) to exercise the skip path.
            let mut ar = ar;
            ar[1] = 0.0;
            let mut ai = ai;
            ai[1] = -0.0;

            let (mut cr_a, mut ci_a) = (cr0.clone(), ci0.clone());
            let (mut cr_b, mut ci_b) = (cr0.clone(), ci0.clone());
            wide.gemm_sub(&mut cr_a, &mut ci_a, &ar, &ai, &br, &bi, m, k, n);
            scalar.gemm_sub(&mut cr_b, &mut ci_b, &ar, &ai, &br, &bi, m, k, n);
            assert_close(&cr_a, &cr_b, "gemm_sub re");
            assert_close(&ci_a, &ci_b, "gemm_sub im");

            let s = 5usize;
            let (mut tr, ti) = random_panel(s * s, 400 + n as u64);
            // Keep the diagonal well away from zero for the upper solve.
            for d in 0..s {
                tr[d * s + d] += 3.0;
            }
            let (pr0, pi0) = random_panel(s * n, 500 + n as u64);

            let (mut pr_a, mut pi_a) = (pr0.clone(), pi0.clone());
            let (mut pr_b, mut pi_b) = (pr0.clone(), pi0.clone());
            wide.trsm_lower_unit(&tr, &ti, s, &mut pr_a, &mut pi_a, n);
            scalar.trsm_lower_unit(&tr, &ti, s, &mut pr_b, &mut pi_b, n);
            assert_close(&pr_a, &pr_b, "trsm_lower_unit re");
            assert_close(&pi_a, &pi_b, "trsm_lower_unit im");

            let (mut pr_a, mut pi_a) = (pr0.clone(), pi0.clone());
            let (mut pr_b, mut pi_b) = (pr0.clone(), pi0.clone());
            wide.trsm_upper(&tr, &ti, s, &mut pr_a, &mut pi_a, n);
            scalar.trsm_upper(&tr, &ti, s, &mut pr_b, &mut pi_b, n);
            assert_close(&pr_a, &pr_b, "trsm_upper re");
            assert_close(&pi_a, &pi_b, "trsm_upper im");

            let f = Complex::new(0.37, -1.21);
            let (yr, yi) = random_panel(n, 600 + n as u64);
            let (xr0, xi0) = random_panel(n, 700 + n as u64);
            let (mut xr_a, mut xi_a) = (xr0.clone(), xi0.clone());
            let (mut xr_b, mut xi_b) = (xr0.clone(), xi0.clone());
            wide.axpy_sub(f, &yr, &yi, &mut xr_a, &mut xi_a);
            scalar.axpy_sub(f, &yr, &yi, &mut xr_b, &mut xi_b);
            assert_close(&xr_a, &xr_b, "axpy_sub re");
            assert_close(&xi_a, &xi_b, "axpy_sub im");

            let (mut xr_a, mut xi_a) = (xr0.clone(), xi0.clone());
            let (mut xr_b, mut xi_b) = (xr0, xi0);
            wide.axpy_add(f, &yr, &yi, &mut xr_a, &mut xi_a);
            scalar.axpy_add(f, &yr, &yi, &mut xr_b, &mut xi_b);
            assert_close(&xr_a, &xr_b, "axpy_add re");
            assert_close(&xi_a, &xi_b, "axpy_add im");
        }
    }

    /// The scalar tier is pinned to [`Complex`] arithmetic **bit for
    /// bit** — it is the reference everything else is measured against.
    #[test]
    fn scalar_tier_matches_complex_reference_exactly() {
        let (m, k, n) = (3usize, 4usize, 7usize);
        let (ar, ai) = random_panel(m * k, 31);
        let (br, bi) = random_panel(k * n, 32);
        let (mut cr, mut ci) = random_panel(m * n, 33);
        let mut c: Vec<Complex> = cr
            .iter()
            .zip(&ci)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        SCALAR_KERNELS.gemm_sub(&mut cr, &mut ci, &ar, &ai, &br, &bi, m, k, n);
        for r in 0..m {
            for t in 0..k {
                let f = Complex::new(ar[r * k + t], ai[r * k + t]);
                for j in 0..n {
                    let y = Complex::new(br[t * n + j], bi[t * n + j]);
                    c[r * n + j] -= f * y;
                }
            }
        }
        for idx in 0..m * n {
            assert_eq!(cr[idx], c[idx].re, "re[{idx}]");
            assert_eq!(ci[idx], c[idx].im, "im[{idx}]");
        }
    }

    /// The kernels must agree with the straightforward complex reference
    /// computation (not just with each other).
    #[test]
    fn gemm_sub_matches_complex_reference() {
        let (m, k, n) = (4usize, 3usize, 6usize);
        let (ar, ai) = random_panel(m * k, 1);
        let (br, bi) = random_panel(k * n, 2);
        let (mut cr, mut ci) = random_panel(m * n, 3);
        let a: Vec<Complex> = ar
            .iter()
            .zip(&ai)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        let b: Vec<Complex> = br
            .iter()
            .zip(&bi)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        let mut c: Vec<Complex> = cr
            .iter()
            .zip(&ci)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        kernels().gemm_sub(&mut cr, &mut ci, &ar, &ai, &br, &bi, m, k, n);
        for r in 0..m {
            for t in 0..k {
                let f = a[r * k + t];
                for j in 0..n {
                    c[r * n + j] -= f * b[t * n + j];
                }
            }
        }
        for idx in 0..m * n {
            assert!((Complex::new(cr[idx], ci[idx]) - c[idx]).abs() < 1e-12);
        }
    }

    /// Strided dispatch must agree bit for bit with a packed call over
    /// the same logical operands — the panel-embedded layout the sparse
    /// factor uses.
    #[test]
    fn strided_kernels_match_packed() {
        let kern = kernels();
        let (m, k, n) = (3usize, 4usize, 6usize);
        let (lda, ldb, ldc) = (9usize, 11usize, 8usize);
        let (ar_w, ai_w) = random_panel(m * lda, 41);
        let (br_w, bi_w) = random_panel(k * ldb, 42);
        let (cr_w0, ci_w0) = random_panel(m * ldc, 43);

        // Pack the embedded operands.
        let pack = |src: &[f64], rows: usize, cols: usize, ld: usize| -> Vec<f64> {
            (0..rows)
                .flat_map(|r| src[r * ld..r * ld + cols].to_vec())
                .collect()
        };
        let (ar, ai) = (pack(&ar_w, m, k, lda), pack(&ai_w, m, k, lda));
        let (br, bi) = (pack(&br_w, k, n, ldb), pack(&bi_w, k, n, ldb));
        let (mut cr, mut ci) = (pack(&cr_w0, m, n, ldc), pack(&ci_w0, m, n, ldc));
        kern.gemm_sub(&mut cr, &mut ci, &ar, &ai, &br, &bi, m, k, n);

        let (mut cr_w, mut ci_w) = (cr_w0.clone(), ci_w0.clone());
        // SAFETY: all strided accesses stay inside the widened buffers;
        // A, B and C are separate allocations.
        unsafe {
            kern.gemm_sub_ptr(
                m,
                k,
                n,
                ar_w.as_ptr(),
                ai_w.as_ptr(),
                lda,
                br_w.as_ptr(),
                bi_w.as_ptr(),
                ldb,
                cr_w.as_mut_ptr(),
                ci_w.as_mut_ptr(),
                ldc,
            );
        }
        for r in 0..m {
            for j in 0..n {
                assert_eq!(cr_w[r * ldc + j], cr[r * n + j], "strided re ({r},{j})");
                assert_eq!(ci_w[r * ldc + j], ci[r * n + j], "strided im ({r},{j})");
            }
        }
        // Untouched gutter columns keep their original bits.
        for r in 0..m {
            for j in n..ldc {
                assert_eq!(cr_w[r * ldc + j], cr_w0[r * ldc + j], "gutter ({r},{j})");
            }
        }
    }
}
