//! Partial-pivot LU decomposition for complex matrices.
//!
//! The dense scattering backend of the simulator solves
//! `(I − P·S_ii) x = P·S_ie` at every wavelength point; this module provides
//! the factorization, solves, inverse and determinant it needs.

use crate::{CMatrix, Complex};
use std::error::Error;
use std::fmt;

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Pivot column at which no usable pivot was found.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular to working precision (zero pivot in column {})",
            self.column
        )
    }
}

impl Error for SingularMatrixError {}

/// An LU factorization `P·A = L·U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use picbench_math::{CMatrix, Complex, LuDecomposition};
///
/// let a = CMatrix::from_rows(&[
///     vec![Complex::real(4.0), Complex::real(3.0)],
///     vec![Complex::real(6.0), Complex::real(3.0)],
/// ]);
/// let lu = LuDecomposition::factor(&a)?;
/// let x = lu.solve(&[Complex::real(10.0), Complex::real(12.0)]);
/// assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
/// assert!((x[1] - Complex::real(2.0)).abs() < 1e-12);
/// # Ok::<(), picbench_math::SingularMatrixError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: CMatrix,
    perm: Vec<usize>,
    swaps: usize,
}

impl LuDecomposition {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot column has no entry with
    /// magnitude above `1e-300` (i.e. the matrix is numerically singular).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &CMatrix) -> Result<Self, SingularMatrixError> {
        assert!(a.is_square(), "LU factorization requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;

        for col in 0..n {
            // Partial pivot: pick the row with the largest magnitude in col.
            let mut pivot_row = col;
            let mut pivot_mag = lu[(col, col)].abs();
            for r in col + 1..n {
                let mag = lu[(r, col)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            // NaN pivots must also be rejected, hence the explicit check.
            if pivot_mag.is_nan() || pivot_mag <= 1e-300 {
                return Err(SingularMatrixError { column: col });
            }
            if pivot_row != col {
                lu.swap_rows(pivot_row, col);
                perm.swap(pivot_row, col);
                swaps += 1;
            }
            let pivot = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for c in col + 1..n {
                    let sub = factor * lu[(col, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, swaps })
    }

    /// An empty (0×0) factorization, ready to be filled by
    /// [`LuDecomposition::factor_into`]. Useful as workspace storage that
    /// is re-factored for every new system without reallocating.
    pub fn empty() -> Self {
        LuDecomposition {
            lu: CMatrix::zeros(0, 0),
            perm: Vec::new(),
            swaps: 0,
        }
    }

    /// Re-factors `a` into this decomposition **in place**, reusing the
    /// existing matrix and permutation buffers (zero allocations once the
    /// buffers have reached their high-water mark).
    ///
    /// The elimination kernel runs on contiguous row slices instead of the
    /// bounds-asserted `Index` operator, which makes it several times
    /// faster than [`LuDecomposition::factor`] while computing the exact
    /// same factorization (same pivoting, same operation order).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] exactly like
    /// [`LuDecomposition::factor`]. On error the decomposition contents
    /// are unspecified and must not be used for solves.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor_into(&mut self, a: &CMatrix) -> Result<(), SingularMatrixError> {
        assert!(a.is_square(), "LU factorization requires a square matrix");
        let n = a.rows();
        self.lu.copy_from(a);
        self.perm.clear();
        self.perm.extend(0..n);
        self.swaps = 0;

        let data = self.lu.as_mut_slice();
        for col in 0..n {
            // Partial pivot: pick the row with the largest magnitude in col.
            let mut pivot_row = col;
            let mut pivot_mag = data[col * n + col].abs();
            for r in col + 1..n {
                let mag = data[r * n + col].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            // NaN pivots must also be rejected, hence the explicit check.
            if pivot_mag.is_nan() || pivot_mag <= 1e-300 {
                return Err(SingularMatrixError { column: col });
            }
            if pivot_row != col {
                let (upper, lower) = data.split_at_mut(pivot_row * n);
                upper[col * n..col * n + n].swap_with_slice(&mut lower[..n]);
                self.perm.swap(pivot_row, col);
                self.swaps += 1;
            }
            // Eliminate below the pivot, one contiguous row at a time.
            let (pivot_rows, below) = data.split_at_mut((col + 1) * n);
            let pivot_row_slice = &pivot_rows[col * n..(col + 1) * n];
            let pivot = pivot_row_slice[col];
            for row in below.chunks_exact_mut(n) {
                let factor = row[col] / pivot;
                row[col] = factor;
                if factor == Complex::ZERO {
                    continue;
                }
                for (x, &p) in row[col + 1..].iter_mut().zip(&pivot_row_slice[col + 1..]) {
                    *x -= factor * p;
                }
            }
        }
        Ok(())
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[Complex]) -> Vec<Complex> {
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side length mismatch");
        // Apply permutation.
        let mut x: Vec<Complex> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for r in 1..n {
            for c in 0..r {
                let sub = self.lu[(r, c)] * x[c];
                x[r] -= sub;
            }
        }
        // Back substitution.
        for r in (0..n).rev() {
            for c in r + 1..n {
                let sub = self.lu[(r, c)] * x[c];
                x[r] -= sub;
            }
            x[r] /= self.lu[(r, r)];
        }
        x
    }

    /// Solves `A·X = B` for a panel of right-hand sides.
    ///
    /// The pivot permutation is applied **once per solve** while the
    /// panel is copied in, and the eliminations then run across all
    /// columns simultaneously (via [`LuDecomposition::solve_matrix_into`])
    /// instead of re-traversing the permutation and the factors for every
    /// column. The per-element operation order is unchanged, so the
    /// results are identical to the historical column-at-a-time solve —
    /// asserted by the `solve_matrix_hoists_the_pivot_permutation` test.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` does not match the matrix dimension.
    pub fn solve_matrix(&self, b: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(0, 0);
        self.solve_matrix_into(b, &mut out);
        out
    }

    /// Solves `A·x = b` into a caller-provided buffer (resized, no
    /// allocation at steady state).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_into(&self, b: &[Complex], x: &mut Vec<Complex>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side length mismatch");
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        let lu = self.lu.as_slice();
        // Forward substitution (L has unit diagonal).
        for r in 1..n {
            let mut acc = x[r];
            for (c, &l) in lu[r * n..r * n + r].iter().enumerate() {
                acc -= l * x[c];
            }
            x[r] = acc;
        }
        // Back substitution.
        for r in (0..n).rev() {
            let row = &lu[r * n..(r + 1) * n];
            let mut acc = x[r];
            for c in r + 1..n {
                acc -= row[c] * x[c];
            }
            x[r] = acc / row[r];
        }
    }

    /// Solves `A·X = B` into a caller-provided matrix (reshaped, no
    /// allocation at steady state).
    ///
    /// All right-hand-side columns are eliminated simultaneously on
    /// contiguous rows of `B`, which is both allocation-free and far more
    /// cache-friendly than the column-at-a-time
    /// [`LuDecomposition::solve_matrix`]; the per-element operation order
    /// is identical, so the results match it exactly.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` does not match the matrix dimension.
    pub fn solve_matrix_into(&self, b: &CMatrix, out: &mut CMatrix) {
        let n = self.dim();
        assert_eq!(b.rows(), n, "right-hand side row count mismatch");
        let ncols = b.cols();
        out.reshape(n, ncols);
        // Apply the row permutation while copying B in.
        for r in 0..n {
            let src = self.perm[r];
            out.as_mut_slice()[r * ncols..(r + 1) * ncols].copy_from_slice(b.row_slice(src));
        }
        let lu = self.lu.as_slice();
        let data = out.as_mut_slice();
        // Forward substitution across all columns (L has unit diagonal).
        for r in 1..n {
            let (done, rest) = data.split_at_mut(r * ncols);
            let row_r = &mut rest[..ncols];
            for (k, &l) in lu[r * n..r * n + r].iter().enumerate() {
                if l == Complex::ZERO {
                    continue;
                }
                let row_k = &done[k * ncols..(k + 1) * ncols];
                for (x, &y) in row_r.iter_mut().zip(row_k) {
                    *x -= l * y;
                }
            }
        }
        // Back substitution across all columns.
        for r in (0..n).rev() {
            let (head, tail) = data.split_at_mut((r + 1) * ncols);
            let row_r = &mut head[r * ncols..];
            let lu_row = &lu[r * n..(r + 1) * n];
            for k in r + 1..n {
                let u = lu_row[k];
                if u == Complex::ZERO {
                    continue;
                }
                let row_k = &tail[(k - r - 1) * ncols..(k - r) * ncols];
                for (x, &y) in row_r.iter_mut().zip(row_k) {
                    *x -= u * y;
                }
            }
            let d = lu_row[r];
            for x in row_r.iter_mut() {
                *x /= d;
            }
        }
    }

    /// The matrix inverse `A⁻¹`.
    pub fn inverse(&self) -> CMatrix {
        self.solve_matrix(&CMatrix::identity(self.dim()))
    }

    /// Determinant, computed from the pivots and the permutation parity.
    pub fn det(&self) -> Complex {
        let mut d = if self.swaps.is_multiple_of(2) {
            Complex::ONE
        } else {
            -Complex::ONE
        };
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience wrapper: solves `A·x = b` in one call.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when `a` is numerically singular.
pub fn solve(a: &CMatrix, b: &[Complex]) -> Result<Vec<Complex>, SingularMatrixError> {
    Ok(LuDecomposition::factor(a)?.solve(b))
}

/// Convenience wrapper: computes `A⁻¹` in one call.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when `a` is numerically singular.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, SingularMatrixError> {
    Ok(LuDecomposition::factor(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn test_matrix(n: usize, seed: u64) -> CMatrix {
        // Simple deterministic pseudo-random fill (xorshift) — keeps the unit
        // test free of external RNG plumbing.
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, n, |_, _| c(next(), next()))
    }

    #[test]
    fn solve_small_real_system() {
        let a = CMatrix::from_rows(&[
            vec![c(2.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(3.0, 0.0)],
        ]);
        let x = solve(&a, &[c(5.0, 0.0), c(10.0, 0.0)]).unwrap();
        assert!(x[0].approx_eq(c(1.0, 0.0), 1e-12));
        assert!(x[1].approx_eq(c(3.0, 0.0), 1e-12));
    }

    #[test]
    fn solve_residual_is_small() {
        for n in [1, 2, 3, 5, 8, 13] {
            let a = test_matrix(n, n as u64 + 7);
            let b: Vec<Complex> = (0..n).map(|i| c(i as f64 + 1.0, -(i as f64))).collect();
            let x = solve(&a, &b).unwrap();
            let r = a.mul_vec(&x);
            for i in 0..n {
                assert!(
                    r[i].approx_eq(b[i], 1e-9),
                    "residual too large at n={n}, i={i}"
                );
            }
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = test_matrix(6, 42);
        let inv = inverse(&a).unwrap();
        assert!((&a * &inv).is_identity(1e-9));
        assert!((&inv * &a).is_identity(1e-9));
    }

    #[test]
    fn det_of_diagonal() {
        let a = CMatrix::from_diag(&[c(2.0, 0.0), c(0.0, 3.0), c(1.0, 1.0)]);
        let lu = LuDecomposition::factor(&a).unwrap();
        // det = 2 * 3i * (1+i) = 6i + 6i² = -6 + 6i
        assert!(lu.det().approx_eq(c(-6.0, 6.0), 1e-12));
    }

    #[test]
    fn det_sign_tracks_row_swaps() {
        // A permutation matrix swapping two rows has det -1.
        let a = CMatrix::from_rows(&[
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(0.0, 0.0)],
        ]);
        let lu = LuDecomposition::factor(&a).unwrap();
        assert!(lu.det().approx_eq(c(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0)],
            vec![c(2.0, 0.0), c(4.0, 0.0)],
        ]);
        let err = LuDecomposition::factor(&a).unwrap_err();
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = test_matrix(4, 3);
        let b = test_matrix(4, 9);
        let lu = LuDecomposition::factor(&a).unwrap();
        let x = lu.solve_matrix(&b);
        assert!((&a * &x).max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn factor_into_matches_factor() {
        let mut ws = LuDecomposition::empty();
        for n in [1, 2, 4, 7, 12] {
            let a = test_matrix(n, 100 + n as u64);
            let reference = LuDecomposition::factor(&a).unwrap();
            ws.factor_into(&a).unwrap();
            assert_eq!(ws.perm, reference.perm, "n={n}");
            assert_eq!(ws.swaps, reference.swaps, "n={n}");
            assert!(ws.lu.max_abs_diff(&reference.lu) < 1e-12, "n={n}");
        }
    }

    #[test]
    fn factor_into_reports_singularity() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0)],
            vec![c(2.0, 0.0), c(4.0, 0.0)],
        ]);
        let mut ws = LuDecomposition::empty();
        assert_eq!(ws.factor_into(&a).unwrap_err().column, 1);
        // The workspace recovers for the next well-posed system.
        let good = test_matrix(3, 5);
        ws.factor_into(&good).unwrap();
        let reference = LuDecomposition::factor(&good).unwrap();
        assert!(ws.lu.max_abs_diff(&reference.lu) < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = test_matrix(6, 21);
        let lu = LuDecomposition::factor(&a).unwrap();
        let b: Vec<Complex> = (0..6).map(|i| c(i as f64, 1.0 - i as f64)).collect();
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x);
        let reference = lu.solve(&b);
        for (got, want) in x.iter().zip(&reference) {
            assert!(got.approx_eq(*want, 1e-13));
        }
    }

    #[test]
    fn solve_matrix_hoists_the_pivot_permutation() {
        // Micro-assertion: the panel solve (permutation applied once per
        // solve) must reproduce the historical column-at-a-time solve —
        // which re-traversed the permutation per RHS column — bit for
        // bit, since the per-element operation order is identical.
        for n in [1, 3, 6, 9] {
            let a = test_matrix(n, 60 + n as u64);
            let b = test_matrix(n, 600 + n as u64);
            let lu = LuDecomposition::factor(&a).unwrap();
            let hoisted = lu.solve_matrix(&b);
            let mut columnwise = CMatrix::zeros(n, b.cols());
            for c in 0..b.cols() {
                let col = lu.solve(&b.col(c));
                for r in 0..n {
                    columnwise[(r, c)] = col[r];
                }
            }
            assert_eq!(hoisted, columnwise, "n={n}");
        }
    }

    #[test]
    fn solve_matrix_into_matches_solve_matrix() {
        let a = test_matrix(8, 2);
        let b = test_matrix(8, 33);
        let lu = LuDecomposition::factor(&a).unwrap();
        let mut out = CMatrix::zeros(0, 0);
        lu.solve_matrix_into(&b, &mut out);
        assert!(out.max_abs_diff(&lu.solve_matrix(&b)) < 1e-12);
        // Reuse of the same output buffer with a different shape.
        let b2 = CMatrix::from_fn(8, 3, |r, cc| c(r as f64, cc as f64));
        lu.solve_matrix_into(&b2, &mut out);
        assert!(out.max_abs_diff(&lu.solve_matrix(&b2)) < 1e-12);
    }

    #[test]
    fn unitary_inverse_is_dagger() {
        // Build a small unitary from a Givens rotation and verify A⁻¹ = A†.
        let th = 0.77_f64;
        let a = CMatrix::from_rows(&[
            vec![c(th.cos(), 0.0), c(-th.sin(), 0.0)],
            vec![c(th.sin(), 0.0), c(th.cos(), 0.0)],
        ]);
        let inv = inverse(&a).unwrap();
        assert!(inv.max_abs_diff(&a.dagger()) < 1e-12);
    }
}
