//! Partial-pivot LU decomposition for complex matrices.
//!
//! The dense scattering backend of the simulator solves
//! `(I − P·S_ii) x = P·S_ie` at every wavelength point; this module provides
//! the factorization, solves, inverse and determinant it needs.

use crate::{CMatrix, Complex};
use std::error::Error;
use std::fmt;

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Pivot column at which no usable pivot was found.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is singular to working precision (zero pivot in column {})",
            self.column
        )
    }
}

impl Error for SingularMatrixError {}

/// An LU factorization `P·A = L·U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use picbench_math::{CMatrix, Complex, LuDecomposition};
///
/// let a = CMatrix::from_rows(&[
///     vec![Complex::real(4.0), Complex::real(3.0)],
///     vec![Complex::real(6.0), Complex::real(3.0)],
/// ]);
/// let lu = LuDecomposition::factor(&a)?;
/// let x = lu.solve(&[Complex::real(10.0), Complex::real(12.0)]);
/// assert!((x[0] - Complex::real(1.0)).abs() < 1e-12);
/// assert!((x[1] - Complex::real(2.0)).abs() < 1e-12);
/// # Ok::<(), picbench_math::SingularMatrixError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: CMatrix,
    perm: Vec<usize>,
    swaps: usize,
}

impl LuDecomposition {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot column has no entry with
    /// magnitude above `1e-300` (i.e. the matrix is numerically singular).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &CMatrix) -> Result<Self, SingularMatrixError> {
        assert!(a.is_square(), "LU factorization requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;

        for col in 0..n {
            // Partial pivot: pick the row with the largest magnitude in col.
            let mut pivot_row = col;
            let mut pivot_mag = lu[(col, col)].abs();
            for r in col + 1..n {
                let mag = lu[(r, col)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if !(pivot_mag > 1e-300) {
                return Err(SingularMatrixError { column: col });
            }
            if pivot_row != col {
                lu.swap_rows(pivot_row, col);
                perm.swap(pivot_row, col);
                swaps += 1;
            }
            let pivot = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for c in col + 1..n {
                    let sub = factor * lu[(col, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, swaps })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[Complex]) -> Vec<Complex> {
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side length mismatch");
        // Apply permutation.
        let mut x: Vec<Complex> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for r in 1..n {
            for c in 0..r {
                let sub = self.lu[(r, c)] * x[c];
                x[r] -= sub;
            }
        }
        // Back substitution.
        for r in (0..n).rev() {
            for c in r + 1..n {
                let sub = self.lu[(r, c)] * x[c];
                x[r] -= sub;
            }
            x[r] /= self.lu[(r, r)];
        }
        x
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` does not match the matrix dimension.
    pub fn solve_matrix(&self, b: &CMatrix) -> CMatrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "right-hand side row count mismatch");
        let mut out = CMatrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = self.solve(&b.col(c));
            for r in 0..n {
                out[(r, c)] = col[r];
            }
        }
        out
    }

    /// The matrix inverse `A⁻¹`.
    pub fn inverse(&self) -> CMatrix {
        self.solve_matrix(&CMatrix::identity(self.dim()))
    }

    /// Determinant, computed from the pivots and the permutation parity.
    pub fn det(&self) -> Complex {
        let mut d = if self.swaps % 2 == 0 {
            Complex::ONE
        } else {
            -Complex::ONE
        };
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience wrapper: solves `A·x = b` in one call.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when `a` is numerically singular.
pub fn solve(a: &CMatrix, b: &[Complex]) -> Result<Vec<Complex>, SingularMatrixError> {
    Ok(LuDecomposition::factor(a)?.solve(b))
}

/// Convenience wrapper: computes `A⁻¹` in one call.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when `a` is numerically singular.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, SingularMatrixError> {
    Ok(LuDecomposition::factor(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn test_matrix(n: usize, seed: u64) -> CMatrix {
        // Simple deterministic pseudo-random fill (xorshift) — keeps the unit
        // test free of external RNG plumbing.
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMatrix::from_fn(n, n, |_, _| c(next(), next()))
    }

    #[test]
    fn solve_small_real_system() {
        let a = CMatrix::from_rows(&[
            vec![c(2.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(3.0, 0.0)],
        ]);
        let x = solve(&a, &[c(5.0, 0.0), c(10.0, 0.0)]).unwrap();
        assert!(x[0].approx_eq(c(1.0, 0.0), 1e-12));
        assert!(x[1].approx_eq(c(3.0, 0.0), 1e-12));
    }

    #[test]
    fn solve_residual_is_small() {
        for n in [1, 2, 3, 5, 8, 13] {
            let a = test_matrix(n, n as u64 + 7);
            let b: Vec<Complex> = (0..n).map(|i| c(i as f64 + 1.0, -(i as f64))).collect();
            let x = solve(&a, &b).unwrap();
            let r = a.mul_vec(&x);
            for i in 0..n {
                assert!(
                    r[i].approx_eq(b[i], 1e-9),
                    "residual too large at n={n}, i={i}"
                );
            }
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = test_matrix(6, 42);
        let inv = inverse(&a).unwrap();
        assert!((&a * &inv).is_identity(1e-9));
        assert!((&inv * &a).is_identity(1e-9));
    }

    #[test]
    fn det_of_diagonal() {
        let a = CMatrix::from_diag(&[c(2.0, 0.0), c(0.0, 3.0), c(1.0, 1.0)]);
        let lu = LuDecomposition::factor(&a).unwrap();
        // det = 2 * 3i * (1+i) = 6i + 6i² = -6 + 6i
        assert!(lu.det().approx_eq(c(-6.0, 6.0), 1e-12));
    }

    #[test]
    fn det_sign_tracks_row_swaps() {
        // A permutation matrix swapping two rows has det -1.
        let a = CMatrix::from_rows(&[
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(0.0, 0.0)],
        ]);
        let lu = LuDecomposition::factor(&a).unwrap();
        assert!(lu.det().approx_eq(c(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0)],
            vec![c(2.0, 0.0), c(4.0, 0.0)],
        ]);
        let err = LuDecomposition::factor(&a).unwrap_err();
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = test_matrix(4, 3);
        let b = test_matrix(4, 9);
        let lu = LuDecomposition::factor(&a).unwrap();
        let x = lu.solve_matrix(&b);
        assert!((&a * &x).max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn unitary_inverse_is_dagger() {
        // Build a small unitary from a Givens rotation and verify A⁻¹ = A†.
        let th = 0.77_f64;
        let a = CMatrix::from_rows(&[
            vec![c(th.cos(), 0.0), c(-th.sin(), 0.0)],
            vec![c(th.sin(), 0.0), c(th.cos(), 0.0)],
        ]);
        let inv = inverse(&a).unwrap();
        assert!(inv.max_abs_diff(&a.dagger()) < 1e-12);
    }
}
