//! Unitary-to-mesh decompositions (Reck and Clements schemes).
//!
//! The optical-computing problems in the PICBench suite ask for MZI meshes
//! "arranged using the Clements method" / "the Reck method". To make those
//! golden designs more than topology sketches, this module implements the
//! actual synthesis algorithms: given a target N×N unitary, produce the
//! ordered list of 2×2 Givens/MZI factors (θ, φ per crossing) plus output
//! phases such that the product reproduces the unitary.
//!
//! Conventions: each factor `T_m(θ, φ)` acts on adjacent modes `(m, m+1)` as
//!
//! ```text
//! ⎡ e^{iφ}·cosθ   −sinθ ⎤
//! ⎣ e^{iφ}·sinθ    cosθ ⎦
//! ```
//!
//! and the decomposition satisfies
//! `U = diag(output_phases) · T_last · … · T_first`
//! (the first factor in `factors` is applied to the input vector first).

use crate::{CMatrix, Complex};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Mesh arrangement produced by a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshScheme {
    /// Triangular arrangement (Reck et al., 1994).
    Reck,
    /// Rectangular arrangement (Clements et al., 2016).
    Clements,
}

impl fmt::Display for MeshScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshScheme::Reck => write!(f, "Reck"),
            MeshScheme::Clements => write!(f, "Clements"),
        }
    }
}

/// One 2×2 stage of the mesh: an MZI on modes `(mode, mode + 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GivensFactor {
    /// Upper mode index the factor acts on (it also touches `mode + 1`).
    pub mode: usize,
    /// Mixing angle θ ∈ [0, π/2].
    pub theta: f64,
    /// Input phase φ ∈ (−π, π].
    pub phi: f64,
}

impl GivensFactor {
    /// The 2×2 transfer matrix of this factor.
    pub fn block(&self) -> [[Complex; 2]; 2] {
        let (s, c) = self.theta.sin_cos();
        let ph = Complex::cis(self.phi);
        [[ph * c, Complex::real(-s)], [ph * s, Complex::real(c)]]
    }

    /// The N×N embedding of [`GivensFactor::block`] at `self.mode`.
    ///
    /// # Panics
    ///
    /// Panics if `self.mode + 1 >= n`.
    pub fn embed(&self, n: usize) -> CMatrix {
        assert!(self.mode + 1 < n, "factor mode out of range for size {n}");
        let mut m = CMatrix::identity(n);
        let b = self.block();
        m[(self.mode, self.mode)] = b[0][0];
        m[(self.mode, self.mode + 1)] = b[0][1];
        m[(self.mode + 1, self.mode)] = b[1][0];
        m[(self.mode + 1, self.mode + 1)] = b[1][1];
        m
    }
}

/// A full mesh decomposition: `U = D · T_k · … · T_1`.
#[derive(Debug, Clone)]
pub struct MeshDecomposition {
    /// Which synthesis scheme produced this decomposition.
    pub scheme: MeshScheme,
    /// Number of optical modes.
    pub size: usize,
    /// Factors in application order (first entry acts on the input first).
    pub factors: Vec<GivensFactor>,
    /// Per-mode output phases (unit-magnitude complex numbers).
    pub output_phases: Vec<Complex>,
}

impl MeshDecomposition {
    /// Rebuilds the unitary realized by this mesh.
    pub fn rebuild(&self) -> CMatrix {
        let mut u = CMatrix::identity(self.size);
        for f in &self.factors {
            u = &f.embed(self.size) * &u;
        }
        &CMatrix::from_diag(&self.output_phases) * &u
    }

    /// Number of 2×2 stages (should be `n(n−1)/2` for an exact synthesis).
    pub fn stage_count(&self) -> usize {
        self.factors.len()
    }
}

/// Error returned when the input matrix cannot be decomposed.
#[derive(Debug, Clone, PartialEq)]
pub enum DecomposeError {
    /// Input matrix is not square.
    NotSquare {
        /// Observed row count.
        rows: usize,
        /// Observed column count.
        cols: usize,
    },
    /// Input matrix deviates from unitarity by more than the tolerance.
    NotUnitary {
        /// Max entry-wise deviation of `U†U` from the identity.
        deviation: f64,
    },
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}×{cols})")
            }
            DecomposeError::NotUnitary { deviation } => {
                write!(f, "matrix is not unitary (deviation {deviation:.3e})")
            }
        }
    }
}

impl Error for DecomposeError {}

const UNITARY_TOL: f64 = 1e-8;

fn check_unitary(u: &CMatrix) -> Result<(), DecomposeError> {
    if !u.is_square() {
        return Err(DecomposeError::NotSquare {
            rows: u.rows(),
            cols: u.cols(),
        });
    }
    let dev = (&u.dagger() * u).max_abs_diff(&CMatrix::identity(u.rows()));
    if dev > UNITARY_TOL {
        return Err(DecomposeError::NotUnitary { deviation: dev });
    }
    Ok(())
}

/// Parameters that null `target` via right-multiplication by `T⁻¹` on
/// columns `(c, c+1)`: chooses (θ, φ) so `(U·T⁻¹)[row, c] = 0`.
fn null_right(u: &CMatrix, row: usize, c: usize) -> GivensFactor {
    let a = u[(row, c)];
    let b = u[(row, c + 1)];
    let (theta, phi) = if b.abs() < 1e-14 {
        if a.abs() < 1e-14 {
            (0.0, 0.0)
        } else {
            (std::f64::consts::FRAC_PI_2, 0.0)
        }
    } else {
        let ratio = a / b;
        (ratio.abs().atan(), ratio.arg())
    };
    GivensFactor {
        mode: c,
        theta,
        phi,
    }
}

/// Parameters that null `target` via left-multiplication by `T` on rows
/// `(m, m+1)`: chooses (θ, φ) so `(T·U)[m+1, col] = 0`.
fn null_left(u: &CMatrix, m: usize, col: usize) -> GivensFactor {
    let a = u[(m, col)];
    let b = u[(m + 1, col)];
    let (theta, phi) = if a.abs() < 1e-14 {
        if b.abs() < 1e-14 {
            (0.0, 0.0)
        } else {
            (std::f64::consts::FRAC_PI_2, std::f64::consts::PI)
        }
    } else {
        let ratio = -b / a;
        (ratio.abs().atan(), ratio.arg())
    };
    GivensFactor {
        mode: m,
        theta,
        phi,
    }
}

fn inv_block(f: &GivensFactor) -> [[Complex; 2]; 2] {
    // T is unitary, so T⁻¹ = T†.
    let b = f.block();
    [
        [b[0][0].conj(), b[1][0].conj()],
        [b[0][1].conj(), b[1][1].conj()],
    ]
}

/// Reck (triangular) decomposition.
///
/// Progressively nulls the bottom row with right-multiplications by `T⁻¹`,
/// then recurses on the leading block; yields `U = D · T_k … T_1` with
/// `n(n−1)/2` factors.
///
/// # Errors
///
/// Returns [`DecomposeError`] if `u` is not square or not unitary.
///
/// # Examples
///
/// ```
/// use picbench_math::{decomp, CMatrix};
///
/// let u = decomp::dft_matrix(4);
/// let mesh = decomp::reck_decompose(&u)?;
/// assert_eq!(mesh.stage_count(), 6);
/// assert!(mesh.rebuild().max_abs_diff(&u) < 1e-9);
/// # Ok::<(), decomp::DecomposeError>(())
/// ```
pub fn reck_decompose(u: &CMatrix) -> Result<MeshDecomposition, DecomposeError> {
    check_unitary(u)?;
    let n = u.rows();
    let mut work = u.clone();
    // Right-multiplications recorded in application order R_1, R_2, ….
    let mut rights: Vec<GivensFactor> = Vec::with_capacity(n * (n - 1) / 2);

    // Null row r (from the bottom) left-to-right: entries (r, 0..r).
    for r in (1..n).rev() {
        for c in 0..r {
            let f = null_right(&work, r, c);
            work.apply_right_2x2(c, inv_block(&f));
            rights.push(f);
        }
    }
    // work is now diagonal: U = D · R_q · … · R_1 (application order R_1 first).
    let output_phases: Vec<Complex> = (0..n).map(|i| work[(i, i)]).collect();
    Ok(MeshDecomposition {
        scheme: MeshScheme::Reck,
        size: n,
        factors: rights,
        output_phases,
    })
}

/// Rewrites `T† · D` as `D' · T'` (same θ, new φ and diagonal), the phase
/// push used to bring Clements left-factors to the output side.
fn push_phase_through(f: &GivensFactor, diag: &mut [Complex]) -> GivensFactor {
    let m = f.mode;
    let d_m = diag[m];
    let d_m1 = diag[m + 1];
    let phi_new = (-d_m / d_m1).arg();
    let d_m_new = -Complex::cis(-f.phi) * d_m1;
    diag[m] = d_m_new;
    // diag[m + 1] unchanged.
    GivensFactor {
        mode: m,
        theta: f.theta,
        phi: phi_new,
    }
}

/// Clements (rectangular) decomposition.
///
/// Alternates nulling anti-diagonals with right-multiplications by `T⁻¹`
/// and left-multiplications by `T`, then pushes the left factors through the
/// diagonal so the result has the canonical form `U = D · T_k … T_1` with
/// `n(n−1)/2` factors arranged in the rectangular (minimum-depth) mesh.
///
/// # Errors
///
/// Returns [`DecomposeError`] if `u` is not square or not unitary.
///
/// # Examples
///
/// ```
/// use picbench_math::{decomp, CMatrix};
///
/// let u = decomp::dft_matrix(4);
/// let mesh = decomp::clements_decompose(&u)?;
/// assert_eq!(mesh.stage_count(), 6);
/// assert!(mesh.rebuild().max_abs_diff(&u) < 1e-9);
/// # Ok::<(), decomp::DecomposeError>(())
/// ```
pub fn clements_decompose(u: &CMatrix) -> Result<MeshDecomposition, DecomposeError> {
    check_unitary(u)?;
    let n = u.rows();
    let mut work = u.clone();
    let mut rights: Vec<GivensFactor> = Vec::new();
    let mut lefts: Vec<GivensFactor> = Vec::new();

    for k in 0..n.saturating_sub(1) {
        if k % 2 == 0 {
            // Null the k-th lower anti-diagonal from the left edge using
            // right multiplications: entries (n-1-j, k-j) for j = 0..=k.
            for j in 0..=k {
                let row = n - 1 - j;
                let col = k - j;
                let f = null_right(&work, row, col);
                work.apply_right_2x2(col, inv_block(&f));
                rights.push(f);
            }
        } else {
            // Null using left multiplications: entries (n-1-k+j, j) for
            // j = 0..=k, eliminated via rows (row-1, row).
            for j in 0..=k {
                let row = n - 1 - k + j;
                let col = j;
                let f = null_left(&work, row - 1, col);
                work.apply_left_2x2(row - 1, f.block());
                lefts.push(f);
            }
        }
    }

    // Now: L_p … L_1 · U · R_1⁻¹ … R_q⁻¹ = D, i.e.
    // U = L_1† … L_p† · D · R_q … R_1.
    let mut diag: Vec<Complex> = (0..n).map(|i| work[(i, i)]).collect();

    // Push D through the daggered left factors, innermost (L_p†) first:
    // L† · D = D' · T'. Afterwards U = D_final · T'_1 … T'_p · R_q … R_1,
    // so application order is R_1, …, R_q, T'_p, …, T'_1.
    let mut pushed: Vec<GivensFactor> = Vec::with_capacity(lefts.len());
    for f in lefts.iter().rev() {
        pushed.push(push_phase_through(f, &mut diag));
    }
    // `pushed` currently holds T'_p, T'_{p-1}, …, T'_1 in that order, which
    // is exactly the application order after the rights.
    let mut factors = rights;
    factors.extend(pushed);

    Ok(MeshDecomposition {
        scheme: MeshScheme::Clements,
        size: n,
        factors,
        output_phases: diag,
    })
}

/// Decomposes with the requested scheme.
///
/// # Errors
///
/// Returns [`DecomposeError`] if `u` is not square or not unitary.
pub fn decompose(u: &CMatrix, scheme: MeshScheme) -> Result<MeshDecomposition, DecomposeError> {
    match scheme {
        MeshScheme::Reck => reck_decompose(u),
        MeshScheme::Clements => clements_decompose(u),
    }
}

/// The N×N discrete Fourier transform matrix (unitary normalization).
///
/// A convenient deterministic, maximally-mixing target unitary for mesh
/// synthesis tests and golden designs.
pub fn dft_matrix(n: usize) -> CMatrix {
    let scale = 1.0 / (n as f64).sqrt();
    CMatrix::from_fn(n, n, |r, c| {
        Complex::cis(-2.0 * std::f64::consts::PI * (r * c) as f64 / n as f64) * scale
    })
}

/// Draws a Haar-distributed random unitary via Gram–Schmidt on a complex
/// Gaussian matrix.
///
/// # Examples
///
/// ```
/// use picbench_math::decomp::random_unitary;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = random_unitary(5, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn random_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMatrix {
    // Box–Muller standard normals.
    let normal = |rng: &mut R| -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    };
    let mut cols: Vec<Vec<Complex>> = (0..n)
        .map(|_| {
            (0..n)
                .map(|_| Complex::new(normal(rng), normal(rng)))
                .collect()
        })
        .collect();

    // Modified Gram–Schmidt, twice for numerical orthogonality.
    for _pass in 0..2 {
        for i in 0..n {
            for j in 0..i {
                let proj: Complex = (0..n).map(|k| cols[j][k].conj() * cols[i][k]).sum();
                let (settled, rest) = cols.split_at_mut(i);
                for (x, &basis) in rest[0].iter_mut().zip(&settled[j]) {
                    *x -= proj * basis;
                }
            }
            let norm: f64 = cols[i].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            for z in cols[i].iter_mut() {
                *z = *z / norm;
            }
        }
    }
    CMatrix::from_fn(n, n, |r, c| cols[c][r])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factor_block_is_unitary() {
        let f = GivensFactor {
            mode: 0,
            theta: 0.63,
            phi: -1.2,
        };
        assert!(f.embed(2).is_unitary(1e-12));
        assert!(f.embed(5).is_unitary(1e-12));
    }

    #[test]
    fn dft_is_unitary() {
        for n in [1, 2, 3, 4, 8] {
            assert!(dft_matrix(n).is_unitary(1e-10), "DFT({n}) not unitary");
        }
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(123);
        for n in [1, 2, 3, 6, 9] {
            assert!(random_unitary(n, &mut rng).is_unitary(1e-9));
        }
    }

    #[test]
    fn reck_roundtrip_dft() {
        for n in [2, 3, 4, 8] {
            let u = dft_matrix(n);
            let mesh = reck_decompose(&u).unwrap();
            assert_eq!(mesh.stage_count(), n * (n - 1) / 2);
            assert!(
                mesh.rebuild().max_abs_diff(&u) < 1e-9,
                "Reck rebuild failed for n={n}"
            );
        }
    }

    #[test]
    fn clements_roundtrip_dft() {
        for n in [2, 3, 4, 8] {
            let u = dft_matrix(n);
            let mesh = clements_decompose(&u).unwrap();
            assert_eq!(mesh.stage_count(), n * (n - 1) / 2);
            assert!(
                mesh.rebuild().max_abs_diff(&u) < 1e-9,
                "Clements rebuild failed for n={n}"
            );
        }
    }

    #[test]
    fn roundtrip_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(20260611);
        for n in [2, 3, 4, 5, 6, 8] {
            let u = random_unitary(n, &mut rng);
            for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
                let mesh = decompose(&u, scheme).unwrap();
                let err = mesh.rebuild().max_abs_diff(&u);
                assert!(err < 1e-8, "{scheme} rebuild error {err:.2e} for n={n}");
            }
        }
    }

    #[test]
    fn identity_decomposes_to_trivial_angles() {
        let u = CMatrix::identity(4);
        let mesh = clements_decompose(&u).unwrap();
        for f in &mesh.factors {
            assert!(f.theta.abs() < 1e-9, "identity should need no mixing");
        }
        assert!(mesh.rebuild().max_abs_diff(&u) < 1e-9);
    }

    #[test]
    fn output_phases_are_unit_magnitude() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = random_unitary(5, &mut rng);
        for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
            let mesh = decompose(&u, scheme).unwrap();
            for p in &mesh.output_phases {
                assert!((p.abs() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_non_unitary() {
        let m = CMatrix::from_fn(3, 3, |r, c| Complex::real((r + c) as f64));
        assert!(matches!(
            clements_decompose(&m),
            Err(DecomposeError::NotUnitary { .. })
        ));
        let rect = CMatrix::zeros(2, 3);
        assert!(matches!(
            reck_decompose(&rect),
            Err(DecomposeError::NotSquare { .. })
        ));
    }

    #[test]
    fn factor_modes_are_adjacent_and_in_range() {
        let u = dft_matrix(6);
        for scheme in [MeshScheme::Reck, MeshScheme::Clements] {
            let mesh = decompose(&u, scheme).unwrap();
            for f in &mesh.factors {
                assert!(f.mode + 1 < 6);
                assert!(f.theta >= -1e-12 && f.theta <= std::f64::consts::FRAC_PI_2 + 1e-12);
            }
        }
    }
}
