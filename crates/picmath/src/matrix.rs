//! Dense complex matrices.
//!
//! S-parameter blocks, scattering solves and unitary synthesis all run on a
//! small dense complex matrix type. Circuits in the PICBench suite are at
//! most a few hundred ports, so a row-major `Vec<Complex>` with O(n³) kernels
//! is the right tool — no sparse machinery needed.

use crate::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use picbench_math::{CMatrix, Complex};
///
/// let eye = CMatrix::identity(3);
/// let a = CMatrix::from_fn(3, 3, |r, c| Complex::real((r * 3 + c) as f64));
/// assert_eq!(&eye * &a, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
        }
        CMatrix {
            rows: nrows,
            cols: ncols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Creates a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[Complex]) -> Self {
        let mut m = CMatrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Returns the entry at `(row, col)`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<Complex> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// The entry at `(row, col)` without a release-mode bounds check.
    ///
    /// Hot solver loops iterate over index sets that are valid by
    /// construction (they come from the matrix's own dimensions), so the
    /// per-access `assert!` of the `Index` operator is pure overhead there.
    /// Debug builds still verify every access.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Complex {
        debug_assert!(
            row < self.rows && col < self.cols,
            "matrix index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: `row < self.rows && col < self.cols` holds for every call
        // site by construction and is checked above in debug builds, so the
        // flat index is within `data` (len == rows * cols).
        unsafe { *self.data.get_unchecked(row * self.cols + col) }
    }

    /// Mutable counterpart of [`CMatrix::at`].
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut Complex {
        debug_assert!(
            row < self.rows && col < self.cols,
            "matrix index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: see `at`.
        unsafe { self.data.get_unchecked_mut(row * self.cols + col) }
    }

    /// Row `r` as a borrowed slice (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[Complex] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Changes the dimensions in place, reusing the existing storage.
    ///
    /// After the call every entry is **unspecified** (a mix of stale and
    /// zero values); callers must overwrite the matrix before reading it.
    /// No allocation happens once the backing buffer has grown to its
    /// high-water mark — this is the workhorse of the sweep workspaces.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, Complex::ZERO);
        self.rows = rows;
        self.cols = cols;
    }

    /// Sets every entry to zero, keeping the dimensions.
    pub fn fill_zero(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Overwrites the matrix by interleaving a split-complex (SoA) pair
    /// of component slices, reshaping to `rows × cols`. A pure copy — the
    /// bits of each entry are exactly the source components.
    ///
    /// # Panics
    ///
    /// Panics if `re`/`im` are not both `rows · cols` long.
    pub fn fill_from_split(&mut self, rows: usize, cols: usize, re: &[f64], im: &[f64]) {
        assert_eq!(re.len(), rows * cols, "split source has the wrong shape");
        assert_eq!(im.len(), re.len(), "split components disagree in length");
        self.reshape(rows, cols);
        for ((dst, &r), &i) in self.data.iter_mut().zip(re).zip(im) {
            *dst = Complex::new(r, i);
        }
    }

    /// Makes `self` an entry-wise copy of `other`, reshaping as needed and
    /// reusing the existing storage.
    pub fn copy_from(&mut self, other: &CMatrix) {
        self.reshape(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Extracts row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> Vec<Complex> {
        assert!(r < self.rows, "row index out of bounds");
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// Extracts column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<Complex> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Writes the transpose of `self` into `out` (reshaped, no allocation
    /// at steady state).
    pub fn transpose_into(&self, out: &mut CMatrix) {
        out.reshape(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Multiplies every entry by a complex scalar in place.
    pub fn scale_in_place(&mut self, k: Complex) {
        for z in &mut self.data {
            *z *= k;
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Extracts the sub-matrix selecting `row_idx × col_idx`.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> CMatrix {
        CMatrix::from_fn(row_idx.len(), col_idx.len(), |r, c| {
            self[(row_idx[r], col_idx[c])]
        })
    }

    /// Gathers the sub-matrix selecting `row_idx × col_idx` into `out`
    /// (reshaped, no allocation at steady state).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any index is out of bounds.
    pub fn submatrix_into(&self, row_idx: &[usize], col_idx: &[usize], out: &mut CMatrix) {
        out.reshape(row_idx.len(), col_idx.len());
        for (r, &src_r) in row_idx.iter().enumerate() {
            for (c, &src_c) in col_idx.iter().enumerate() {
                *out.at_mut(r, c) = self.at(src_r, src_c);
            }
        }
    }

    /// Matrix product `self · rhs` written into `out` (reshaped, no
    /// allocation at steady state). `out` must not alias either operand.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_into(&self, rhs: &CMatrix, out: &mut CMatrix) {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul_into");
        out.reshape(self.rows, rhs.cols);
        out.fill_zero();
        let n_cols = rhs.cols;
        for r in 0..self.rows {
            let out_row = &mut out.as_mut_slice()[r * n_cols..(r + 1) * n_cols];
            for k in 0..self.cols {
                let a = self.at(r, k);
                if a == Complex::ZERO {
                    continue;
                }
                let rhs_row = rhs.row_slice(k);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Matrix–vector product written into `out` (resized, no allocation at
    /// steady state).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec_into(&self, v: &[Complex], out: &mut Vec<Complex>) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec_into");
        out.clear();
        out.resize(self.rows, Complex::ZERO);
        for (row, slot) in self.data.chunks_exact(self.cols.max(1)).zip(out.iter_mut()) {
            let mut acc = Complex::ZERO;
            for (&a, &b) in row.iter().zip(v) {
                acc += a * b;
            }
            *slot = acc;
        }
    }

    /// Frobenius norm `√Σ|a_ij|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise magnitude of `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether `self† · self ≈ I` within `tol` (entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Whether the matrix is entry-wise within `tol` of the identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Whether all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Applies the 2×2 matrix `g` to rows `(r, r+1)` from the left:
    /// `rows ← g · rows`.
    ///
    /// # Panics
    ///
    /// Panics if `r + 1 >= self.rows()`.
    pub fn apply_left_2x2(&mut self, r: usize, g: [[Complex; 2]; 2]) {
        assert!(r + 1 < self.rows, "row pair out of bounds");
        for c in 0..self.cols {
            let top = self[(r, c)];
            let bot = self[(r + 1, c)];
            self[(r, c)] = g[0][0] * top + g[0][1] * bot;
            self[(r + 1, c)] = g[1][0] * top + g[1][1] * bot;
        }
    }

    /// Applies the 2×2 matrix `g` to columns `(c, c+1)` from the right:
    /// `cols ← cols · g`.
    ///
    /// # Panics
    ///
    /// Panics if `c + 1 >= self.cols()`.
    pub fn apply_right_2x2(&mut self, c: usize, g: [[Complex; 2]; 2]) {
        assert!(c + 1 < self.cols, "column pair out of bounds");
        for r in 0..self.rows {
            let left = self[(r, c)];
            let right = self[(r, c + 1)];
            self[(r, c)] = left * g[0][0] + right * g[1][0];
            self[(r, c + 1)] = left * g[0][1] + right * g[1][1];
        }
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in add");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in add");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in sub");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in sub");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix multiply");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == Complex::ZERO {
                    continue;
                }
                let rhs_base = k * rhs.cols;
                let out_base = r * rhs.cols;
                for c in 0..rhs.cols {
                    out.data[out_base + c] += a * rhs.data[rhs_base + c];
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn zeros_and_identity() {
        let z = CMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&e| e == Complex::ZERO));
        let eye = CMatrix::identity(4);
        assert!(eye.is_identity(0.0));
        assert!(eye.is_unitary(1e-14));
    }

    #[test]
    fn from_rows_and_index() {
        let m = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0)],
            vec![c(3.0, 0.0), c(4.0, 0.0)],
        ]);
        assert_eq!(m[(0, 1)], c(2.0, 0.0));
        assert_eq!(m[(1, 0)], c(3.0, 0.0));
        assert_eq!(m.get(5, 5), None);
        assert_eq!(m.get(1, 1), Some(c(4.0, 0.0)));
    }

    #[test]
    fn multiply_matches_hand_computation() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(2.0, 0.0), c(0.0, 0.0)],
        ]);
        let b = CMatrix::from_rows(&[
            vec![c(0.0, 1.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(0.0, -1.0)],
        ]);
        let p = &a * &b;
        // (1)(i) + (i)(1) = 2i ; (1)(1) + (i)(-i) = 2
        assert!(p[(0, 0)].approx_eq(c(0.0, 2.0), 1e-12));
        assert!(p[(0, 1)].approx_eq(c(2.0, 0.0), 1e-12));
        assert!(p[(1, 0)].approx_eq(c(0.0, 2.0), 1e-12));
        assert!(p[(1, 1)].approx_eq(c(2.0, 0.0), 1e-12));
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = CMatrix::from_fn(3, 3, |r, cc| c(r as f64, cc as f64));
        assert_eq!(&CMatrix::identity(3) * &a, a);
        assert_eq!(&a * &CMatrix::identity(3), a);
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::from_fn(2, 2, |r, cc| c(r as f64 + 1.0, cc as f64));
        let b = CMatrix::from_fn(2, 2, |r, cc| c(cc as f64, r as f64 - 1.0));
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let a = CMatrix::from_fn(3, 2, |r, cc| c((r + cc) as f64, 1.0));
        let v = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let got = a.mul_vec(&v);
        for r in 0..3 {
            let want = a[(r, 0)] * v[0] + a[(r, 1)] * v[1];
            assert!(got[r].approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn submatrix_selects_entries() {
        let a = CMatrix::from_fn(4, 4, |r, cc| c((r * 4 + cc) as f64, 0.0));
        let s = a.submatrix(&[1, 3], &[0, 2]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s[(0, 0)], c(4.0, 0.0));
        assert_eq!(s[(1, 1)], c(14.0, 0.0));
    }

    #[test]
    fn swap_rows_exchanges_content() {
        let mut a = CMatrix::from_fn(3, 2, |r, _| c(r as f64, 0.0));
        a.swap_rows(0, 2);
        assert_eq!(a[(0, 0)], c(2.0, 0.0));
        assert_eq!(a[(2, 0)], c(0.0, 0.0));
    }

    #[test]
    fn apply_left_2x2_rotates_rows() {
        let mut a = CMatrix::identity(3);
        let g = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
        a.apply_left_2x2(1, g);
        // Rows 1 and 2 swapped.
        assert_eq!(a[(1, 2)], Complex::ONE);
        assert_eq!(a[(2, 1)], Complex::ONE);
        assert_eq!(a[(1, 1)], Complex::ZERO);
    }

    #[test]
    fn apply_right_2x2_mixes_columns() {
        let mut a = CMatrix::identity(2);
        let th = 0.3_f64;
        let g = [
            [Complex::real(th.cos()), Complex::real(-th.sin())],
            [Complex::real(th.sin()), Complex::real(th.cos())],
        ];
        a.apply_right_2x2(0, g);
        assert!(a.is_unitary(1e-12));
        assert!(a[(0, 0)].approx_eq(Complex::real(th.cos()), 1e-12));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((CMatrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diag_constructor() {
        let d = CMatrix::from_diag(&[c(1.0, 0.0), c(0.0, 1.0)]);
        assert_eq!(d[(0, 0)], Complex::ONE);
        assert_eq!(d[(1, 1)], Complex::i());
        assert_eq!(d[(0, 1)], Complex::ZERO);
    }

    #[test]
    fn non_square_is_not_unitary() {
        assert!(!CMatrix::zeros(2, 3).is_unitary(1e-9));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn at_matches_index() {
        let a = CMatrix::from_fn(3, 4, |r, cc| c(r as f64, cc as f64));
        for r in 0..3 {
            for cc in 0..4 {
                assert_eq!(a.at(r, cc), a[(r, cc)]);
            }
        }
        assert_eq!(a.row_slice(1), &a.as_slice()[4..8]);
    }

    #[test]
    fn reshape_and_copy_from_reuse_storage() {
        let mut buf = CMatrix::zeros(5, 5);
        let src = CMatrix::from_fn(3, 2, |r, cc| c((r + cc) as f64, 0.0));
        buf.copy_from(&src);
        assert_eq!(buf, src);
        buf.reshape(2, 2);
        assert_eq!(buf.rows(), 2);
        assert_eq!(buf.cols(), 2);
        buf.fill_zero();
        assert!(buf.as_slice().iter().all(|&z| z == Complex::ZERO));
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = CMatrix::from_fn(3, 5, |r, cc| c(r as f64, cc as f64 - 1.0));
        let mut out = CMatrix::zeros(0, 0);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn scale_in_place_matches_scale() {
        let a = CMatrix::from_fn(2, 3, |r, cc| c(r as f64 + 1.0, cc as f64));
        let mut b = a.clone();
        b.scale_in_place(c(0.5, -1.0));
        assert!(b.max_abs_diff(&a.scale(c(0.5, -1.0))) < 1e-15);
    }

    #[test]
    fn mul_into_matches_operator() {
        let a = CMatrix::from_fn(3, 4, |r, cc| c(r as f64, cc as f64));
        let b = CMatrix::from_fn(4, 2, |r, cc| c(cc as f64 - r as f64, 1.0));
        let mut out = CMatrix::zeros(7, 7);
        a.mul_into(&b, &mut out);
        assert!(out.max_abs_diff(&(&a * &b)) < 1e-13);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = CMatrix::from_fn(3, 2, |r, cc| c((r + cc) as f64, 1.0));
        let v = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let mut out = Vec::new();
        a.mul_vec_into(&v, &mut out);
        assert_eq!(out, a.mul_vec(&v));
    }

    #[test]
    fn submatrix_into_matches_submatrix() {
        let a = CMatrix::from_fn(4, 4, |r, cc| c((r * 4 + cc) as f64, 0.0));
        let mut out = CMatrix::zeros(0, 0);
        a.submatrix_into(&[1, 3], &[0, 2], &mut out);
        assert_eq!(out, a.submatrix(&[1, 3], &[0, 2]));
    }
}
