//! Dense complex matrices.
//!
//! S-parameter blocks, scattering solves and unitary synthesis all run on a
//! small dense complex matrix type. Circuits in the PICBench suite are at
//! most a few hundred ports, so a row-major `Vec<Complex>` with O(n³) kernels
//! is the right tool — no sparse machinery needed.

use crate::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use picbench_math::{CMatrix, Complex};
///
/// let eye = CMatrix::identity(3);
/// let a = CMatrix::from_fn(3, 3, |r, c| Complex::real((r * 3 + c) as f64));
/// assert_eq!(&eye * &a, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
        }
        CMatrix {
            rows: nrows,
            cols: ncols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Creates a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[Complex]) -> Self {
        let mut m = CMatrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Returns the entry at `(row, col)`, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<Complex> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Extracts row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> Vec<Complex> {
        assert!(r < self.rows, "row index out of bounds");
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// Extracts column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<Complex> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![Complex::ZERO; self.rows];
        for r in 0..self.rows {
            let mut acc = Complex::ZERO;
            let base = r * self.cols;
            for c in 0..self.cols {
                acc += self.data[base + c] * v[c];
            }
            out[r] = acc;
        }
        out
    }

    /// Extracts the sub-matrix selecting `row_idx × col_idx`.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> CMatrix {
        CMatrix::from_fn(row_idx.len(), col_idx.len(), |r, c| {
            self[(row_idx[r], col_idx[c])]
        })
    }

    /// Frobenius norm `√Σ|a_ij|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise magnitude of `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether `self† · self ≈ I` within `tol` (entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Whether the matrix is entry-wise within `tol` of the identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Whether all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Applies the 2×2 matrix `g` to rows `(r, r+1)` from the left:
    /// `rows ← g · rows`.
    ///
    /// # Panics
    ///
    /// Panics if `r + 1 >= self.rows()`.
    pub fn apply_left_2x2(&mut self, r: usize, g: [[Complex; 2]; 2]) {
        assert!(r + 1 < self.rows, "row pair out of bounds");
        for c in 0..self.cols {
            let top = self[(r, c)];
            let bot = self[(r + 1, c)];
            self[(r, c)] = g[0][0] * top + g[0][1] * bot;
            self[(r + 1, c)] = g[1][0] * top + g[1][1] * bot;
        }
    }

    /// Applies the 2×2 matrix `g` to columns `(c, c+1)` from the right:
    /// `cols ← cols · g`.
    ///
    /// # Panics
    ///
    /// Panics if `c + 1 >= self.cols()`.
    pub fn apply_right_2x2(&mut self, c: usize, g: [[Complex; 2]; 2]) {
        assert!(c + 1 < self.cols, "column pair out of bounds");
        for r in 0..self.rows {
            let left = self[(r, c)];
            let right = self[(r, c + 1)];
            self[(r, c)] = left * g[0][0] + right * g[1][0];
            self[(r, c + 1)] = left * g[0][1] + right * g[1][1];
        }
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in add");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in add");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch in sub");
        assert_eq!(self.cols, rhs.cols, "shape mismatch in sub");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch in matrix multiply"
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == Complex::ZERO {
                    continue;
                }
                let rhs_base = k * rhs.cols;
                let out_base = r * rhs.cols;
                for c in 0..rhs.cols {
                    out.data[out_base + c] += a * rhs.data[rhs_base + c];
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn zeros_and_identity() {
        let z = CMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&e| e == Complex::ZERO));
        let eye = CMatrix::identity(4);
        assert!(eye.is_identity(0.0));
        assert!(eye.is_unitary(1e-14));
    }

    #[test]
    fn from_rows_and_index() {
        let m = CMatrix::from_rows(&[vec![c(1.0, 0.0), c(2.0, 0.0)], vec![c(3.0, 0.0), c(4.0, 0.0)]]);
        assert_eq!(m[(0, 1)], c(2.0, 0.0));
        assert_eq!(m[(1, 0)], c(3.0, 0.0));
        assert_eq!(m.get(5, 5), None);
        assert_eq!(m.get(1, 1), Some(c(4.0, 0.0)));
    }

    #[test]
    fn multiply_matches_hand_computation() {
        let a = CMatrix::from_rows(&[vec![c(1.0, 0.0), c(0.0, 1.0)], vec![c(2.0, 0.0), c(0.0, 0.0)]]);
        let b = CMatrix::from_rows(&[vec![c(0.0, 1.0), c(1.0, 0.0)], vec![c(1.0, 0.0), c(0.0, -1.0)]]);
        let p = &a * &b;
        // (1)(i) + (i)(1) = 2i ; (1)(1) + (i)(-i) = 2
        assert!(p[(0, 0)].approx_eq(c(0.0, 2.0), 1e-12));
        assert!(p[(0, 1)].approx_eq(c(2.0, 0.0), 1e-12));
        assert!(p[(1, 0)].approx_eq(c(0.0, 2.0), 1e-12));
        assert!(p[(1, 1)].approx_eq(c(2.0, 0.0), 1e-12));
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = CMatrix::from_fn(3, 3, |r, cc| c(r as f64, cc as f64));
        assert_eq!(&CMatrix::identity(3) * &a, a);
        assert_eq!(&a * &CMatrix::identity(3), a);
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::from_fn(2, 2, |r, cc| c(r as f64 + 1.0, cc as f64));
        let b = CMatrix::from_fn(2, 2, |r, cc| c(cc as f64, r as f64 - 1.0));
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let a = CMatrix::from_fn(3, 2, |r, cc| c((r + cc) as f64, 1.0));
        let v = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let got = a.mul_vec(&v);
        for r in 0..3 {
            let want = a[(r, 0)] * v[0] + a[(r, 1)] * v[1];
            assert!(got[r].approx_eq(want, 1e-12));
        }
    }

    #[test]
    fn submatrix_selects_entries() {
        let a = CMatrix::from_fn(4, 4, |r, cc| c((r * 4 + cc) as f64, 0.0));
        let s = a.submatrix(&[1, 3], &[0, 2]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s[(0, 0)], c(4.0, 0.0));
        assert_eq!(s[(1, 1)], c(14.0, 0.0));
    }

    #[test]
    fn swap_rows_exchanges_content() {
        let mut a = CMatrix::from_fn(3, 2, |r, _| c(r as f64, 0.0));
        a.swap_rows(0, 2);
        assert_eq!(a[(0, 0)], c(2.0, 0.0));
        assert_eq!(a[(2, 0)], c(0.0, 0.0));
    }

    #[test]
    fn apply_left_2x2_rotates_rows() {
        let mut a = CMatrix::identity(3);
        let g = [
            [Complex::ZERO, Complex::ONE],
            [Complex::ONE, Complex::ZERO],
        ];
        a.apply_left_2x2(1, g);
        // Rows 1 and 2 swapped.
        assert_eq!(a[(1, 2)], Complex::ONE);
        assert_eq!(a[(2, 1)], Complex::ONE);
        assert_eq!(a[(1, 1)], Complex::ZERO);
    }

    #[test]
    fn apply_right_2x2_mixes_columns() {
        let mut a = CMatrix::identity(2);
        let th = 0.3_f64;
        let g = [
            [Complex::real(th.cos()), Complex::real(-th.sin())],
            [Complex::real(th.sin()), Complex::real(th.cos())],
        ];
        a.apply_right_2x2(0, g);
        assert!(a.is_unitary(1e-12));
        assert!(a[(0, 0)].approx_eq(Complex::real(th.cos()), 1e-12));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((CMatrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diag_constructor() {
        let d = CMatrix::from_diag(&[c(1.0, 0.0), c(0.0, 1.0)]);
        assert_eq!(d[(0, 0)], Complex::ONE);
        assert_eq!(d[(1, 1)], Complex::i());
        assert_eq!(d[(0, 1)], Complex::ZERO);
    }

    #[test]
    fn non_square_is_not_unitary() {
        assert!(!CMatrix::zeros(2, 3).is_unitary(1e-9));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }
}
