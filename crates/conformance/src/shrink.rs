//! Greedy counterexample minimization.
//!
//! The vendored proptest shim deliberately has no value-level shrinking,
//! so the conformance harness shrinks at the *domain* level instead: a
//! failing netlist is reduced by structural deletions (instances,
//! connections, external ports) and setting simplifications (drop
//! overrides back to defaults, snap values to round numbers), keeping a
//! candidate only when it is still structurally valid **and** still
//! fails the caller's predicate. The loop runs to a fixpoint, so the
//! result is 1-minimal with respect to the transformation set: no single
//! remaining deletion or simplification preserves the failure.

use picbench_netlist::{ComponentCatalog, Netlist, PortRef};
use picbench_sim::{Circuit, ModelRegistry};
use std::collections::HashSet;

/// Greedily minimizes `netlist` while `still_fails` keeps returning
/// `true`.
///
/// Candidates that no longer elaborate (against the given registry,
/// without a port spec) are discarded without consulting the predicate,
/// so the result is always a structurally valid netlist. External port
/// names are renumbered into the benchmark's contiguous `I1..`/`O1..`
/// convention after every accepted deletion, keeping the candidate
/// compatible with spec-validating pipelines.
///
/// The input is returned unchanged if it does not fail the predicate.
pub fn shrink_netlist<F>(netlist: &Netlist, registry: &ModelRegistry, mut still_fails: F) -> Netlist
where
    F: FnMut(&Netlist) -> bool,
{
    if !still_fails(netlist) {
        return netlist.clone();
    }
    let mut current = netlist.clone();
    loop {
        let mut progressed = false;
        progressed |= shrink_instances(&mut current, registry, &mut still_fails);
        progressed |= shrink_connections(&mut current, registry, &mut still_fails);
        progressed |= shrink_ports(&mut current, registry, &mut still_fails);
        progressed |= shrink_settings(&mut current, registry, &mut still_fails);
        progressed |= prune_unused_models(&mut current, registry, &mut still_fails);
        if !progressed {
            return current;
        }
    }
}

fn accepts<F: FnMut(&Netlist) -> bool>(
    candidate: &Netlist,
    registry: &ModelRegistry,
    still_fails: &mut F,
) -> bool {
    Circuit::elaborate(candidate, registry, None).is_ok() && still_fails(candidate)
}

fn shrink_instances<F: FnMut(&Netlist) -> bool>(
    current: &mut Netlist,
    registry: &ModelRegistry,
    still_fails: &mut F,
) -> bool {
    let mut progressed = false;
    loop {
        let names: Vec<String> = current.instances.keys().map(str::to_string).collect();
        let mut removed_one = false;
        'names: for name in names {
            // Plain removal first; if that kills the failure because an
            // external port vanished with its anchor, retry with the
            // orphaned ports healed onto free ports of the survivors.
            for heal in [false, true] {
                let mut candidate = current.clone();
                let orphaned: Vec<String> = current
                    .ports
                    .iter()
                    .filter(|(_, pr)| pr.instance == name)
                    .map(|(port, _)| port.to_string())
                    .collect();
                candidate.remove_instance(&name);
                if heal {
                    if orphaned.is_empty() {
                        continue;
                    }
                    let mut free = free_ports(&candidate, registry);
                    for port in orphaned {
                        let Some(target) = free.pop() else { break };
                        candidate.ports.insert(port, target);
                    }
                }
                normalize_port_names(&mut candidate);
                if accepts(&candidate, registry, still_fails) {
                    *current = candidate;
                    progressed = true;
                    removed_one = true;
                    continue 'names;
                }
            }
        }
        if !removed_one {
            return progressed;
        }
    }
}

/// Instance ports unused by any connection endpoint or external port.
fn free_ports(netlist: &Netlist, registry: &ModelRegistry) -> Vec<PortRef> {
    let used: HashSet<(&str, &str)> = netlist
        .all_endpoint_refs()
        .into_iter()
        .map(|pr| (pr.instance.as_str(), pr.port.as_str()))
        .collect();
    let mut free = Vec::new();
    for (inst_name, inst) in netlist.instances.iter() {
        let model_ref = netlist
            .models
            .get(&inst.component)
            .map(String::as_str)
            .unwrap_or(inst.component.as_str());
        for port in registry.ports_of(model_ref).unwrap_or_default() {
            if !used.contains(&(inst_name, port.as_str())) {
                free.push(PortRef::new(inst_name, port));
            }
        }
    }
    free
}

/// Drops model bindings no remaining instance uses.
fn prune_unused_models<F: FnMut(&Netlist) -> bool>(
    current: &mut Netlist,
    registry: &ModelRegistry,
    still_fails: &mut F,
) -> bool {
    let used: HashSet<String> = current
        .instances
        .iter()
        .map(|(_, inst)| inst.component.clone())
        .collect();
    let unused: Vec<String> = current
        .models
        .keys()
        .filter(|component| !used.contains(*component))
        .map(str::to_string)
        .collect();
    if unused.is_empty() {
        return false;
    }
    let mut candidate = current.clone();
    for component in &unused {
        candidate.models.remove(component);
    }
    if accepts(&candidate, registry, still_fails) {
        *current = candidate;
        return true;
    }
    false
}

fn shrink_connections<F: FnMut(&Netlist) -> bool>(
    current: &mut Netlist,
    registry: &ModelRegistry,
    still_fails: &mut F,
) -> bool {
    let mut progressed = false;
    let mut index = 0;
    while index < current.connections.len() {
        let mut candidate = current.clone();
        candidate.connections.remove(index);
        if accepts(&candidate, registry, still_fails) {
            *current = candidate;
            progressed = true;
        } else {
            index += 1;
        }
    }
    progressed
}

fn shrink_ports<F: FnMut(&Netlist) -> bool>(
    current: &mut Netlist,
    registry: &ModelRegistry,
    still_fails: &mut F,
) -> bool {
    let mut progressed = false;
    loop {
        let names: Vec<String> = current.ports.keys().map(str::to_string).collect();
        let mut removed_one = false;
        for name in names {
            let mut candidate = current.clone();
            candidate.ports.remove(&name);
            normalize_port_names(&mut candidate);
            if accepts(&candidate, registry, still_fails) {
                *current = candidate;
                progressed = true;
                removed_one = true;
                break;
            }
        }
        if !removed_one {
            return progressed;
        }
    }
}

fn shrink_settings<F: FnMut(&Netlist) -> bool>(
    current: &mut Netlist,
    registry: &ModelRegistry,
    still_fails: &mut F,
) -> bool {
    let mut progressed = false;
    let instances: Vec<String> = current.instances.keys().map(str::to_string).collect();
    for name in instances {
        let keys: Vec<String> = current
            .instances
            .get(&name)
            .map(|inst| inst.settings.keys().map(str::to_string).collect())
            .unwrap_or_default();
        for key in keys {
            // First choice: drop the override entirely (model default).
            let mut dropped = current.clone();
            dropped
                .instances
                .get_mut(&name)
                .expect("instance exists")
                .settings
                .remove(&key);
            if accepts(&dropped, registry, still_fails) {
                *current = dropped;
                progressed = true;
                continue;
            }
            // Second choice: snap the value to a round number.
            let value = *current
                .instances
                .get(&name)
                .expect("instance exists")
                .settings
                .get(&key)
                .expect("key exists");
            let snapped = value.round();
            if snapped != value {
                let mut rounded = current.clone();
                rounded
                    .instances
                    .get_mut(&name)
                    .expect("instance exists")
                    .settings
                    .insert(key.clone(), snapped);
                if accepts(&rounded, registry, still_fails) {
                    *current = rounded;
                    progressed = true;
                }
            }
        }
    }
    progressed
}

/// Renumbers external ports into contiguous `I1..In` / `O1..Om` (in
/// current document order), leaving non-conventional names untouched.
pub fn normalize_port_names(netlist: &mut Netlist) {
    let mut inputs = 0usize;
    let mut outputs = 0usize;
    let mut renamed = picbench_netlist::OrderedMap::new();
    for (name, target) in netlist.ports.iter() {
        let new_name = if name.starts_with('I') && name[1..].parse::<usize>().is_ok() {
            inputs += 1;
            format!("I{inputs}")
        } else if name.starts_with('O') && name[1..].parse::<usize>().is_ok() {
            outputs += 1;
            format!("O{outputs}")
        } else {
            name.to_string()
        };
        renamed.insert(new_name, target.clone());
    }
    netlist.ports = renamed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CircuitStrategy, Family};
    use picbench_netlist::PortRef;
    use proptest::strategy::Strategy;
    use proptest::TestRng;

    #[test]
    fn shrinks_to_the_single_triggering_instance() {
        let gen =
            CircuitStrategy::family(Family::MixedInterconnect).generate(&mut TestRng::new(99));
        let registry = ModelRegistry::with_builtins();
        // Failure predicate: "contains a waveguide instance" — the
        // shrinker should strip everything else.
        let has_waveguide = |n: &Netlist| {
            n.instances
                .iter()
                .any(|(_, inst)| inst.component == "waveguide")
        };
        assert!(has_waveguide(&gen.netlist));
        let shrunk = shrink_netlist(&gen.netlist, &registry, has_waveguide);
        assert_eq!(shrunk.instances.len(), 1, "{}", shrunk.to_json_string());
        assert!(shrunk.connections.is_empty());
        assert!(
            Circuit::elaborate(&shrunk, &registry, None).is_ok(),
            "shrunk result must stay valid"
        );
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let gen = CircuitStrategy::family(Family::MziLattice).generate(&mut TestRng::new(1));
        let registry = ModelRegistry::with_builtins();
        let shrunk = shrink_netlist(&gen.netlist, &registry, |_| false);
        assert_eq!(shrunk, gen.netlist);
    }

    #[test]
    fn normalization_renumbers_gaps() {
        let mut n = Netlist::default();
        n.instances.insert(
            "wg".to_string(),
            picbench_netlist::Instance::new("waveguide"),
        );
        n.ports.insert("I3".to_string(), PortRef::new("wg", "I1"));
        n.ports.insert("O7".to_string(), PortRef::new("wg", "O1"));
        n.ports.insert("tap".to_string(), PortRef::new("wg", "O1"));
        normalize_port_names(&mut n);
        let names: Vec<&str> = n.ports.keys().collect();
        assert_eq!(names, vec!["I1", "O1", "tap"]);
    }
}
