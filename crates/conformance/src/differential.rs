//! Cross-configuration differential checking.
//!
//! Every configuration axis the engine exposes is *required* to agree
//! with the reference path — some bit-for-bit (they run the same
//! arithmetic), some to a tight tolerance (they run a genuinely different
//! algorithm):
//!
//! | axis | compared paths | agreement |
//! |------|----------------|-----------|
//! | `backends` | every `Backend::ALL` algorithm (dense solve, block-sparse solve) vs port elimination | ≤ `backend_tol` |
//! | `constant-fold` | fold enabled vs disabled | bit-identical |
//! | `parallelism` | serial sweep vs 3-worker sweep | bit-identical |
//! | `cache` | cold, cached-cold and cached-hit evaluator | bit-identical |
//! | `canonicalization` | raw vs canonicalized document | bit-identical via the evaluator, ≤ `backend_tol` direct |
//! | `naive-sweep` | per-point rebuild vs planned pipeline | ≤ `naive_tol` |
//! | `simd` | block-sparse sweep, ambient SIMD tier vs forced scalar | ≤ `simd_tol` |
//!
//! A failed comparison produces a [`Disagreement`]; [`DiffRunner::shrink`]
//! then greedily minimizes the circuit while the disagreement reproduces,
//! yielding a counterexample small enough to debug by hand and check into
//! the regression corpus.
//!
//! For harness self-validation the runner accepts an injected
//! [`Perturbation`] that corrupts the Dense-backend response before
//! comparison — a stand-in solver bug that must be caught and shrunk (see
//! the crate tests).

use crate::shrink::shrink_netlist;
use picbench_core::{EvalCache, Evaluator};
use picbench_netlist::{Netlist, PortSpec};
use picbench_problems::{Category, Problem};
use picbench_sim::{
    sweep_naive, sweep_parallel, sweep_serial, sweep_with_plan, Backend, Circuit,
    FrequencyResponse, ModelRegistry, SweepPlan, WavelengthGrid,
};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// One configuration axis of the differential matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffAxis {
    /// Every composition algorithm (dense global solve, block-sparse
    /// solve) vs the Filipsson port-elimination reference.
    Backends,
    /// Constant-response fold enabled vs disabled.
    ConstantFold,
    /// Serial vs multi-worker sweep execution.
    Parallelism,
    /// Cold evaluator vs shared-cache evaluator (miss and hit).
    Cache,
    /// Raw document vs its canonical form.
    Canonicalization,
    /// Naive per-point rebuild vs the planned pipeline.
    NaiveSweep,
    /// Block-sparse sweep under the ambient SIMD dispatch tier vs the
    /// same sweep forced to the scalar kernels. The vector tiers
    /// contract multiply-adds into FMAs, so agreement is
    /// tolerance-gated rather than bit-exact; within one tier the sweep
    /// stays deterministic.
    Simd,
}

impl DiffAxis {
    /// Every axis, in documentation order.
    pub const ALL: [DiffAxis; 7] = [
        DiffAxis::Backends,
        DiffAxis::ConstantFold,
        DiffAxis::Parallelism,
        DiffAxis::Cache,
        DiffAxis::Canonicalization,
        DiffAxis::NaiveSweep,
        DiffAxis::Simd,
    ];

    /// Stable kebab-case token used in corpus files and CLI flags.
    pub fn token(&self) -> &'static str {
        match self {
            DiffAxis::Backends => "backends",
            DiffAxis::ConstantFold => "constant-fold",
            DiffAxis::Parallelism => "parallelism",
            DiffAxis::Cache => "cache",
            DiffAxis::Canonicalization => "canonicalization",
            DiffAxis::NaiveSweep => "naive-sweep",
            DiffAxis::Simd => "simd",
        }
    }
}

impl fmt::Display for DiffAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for DiffAxis {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DiffAxis::ALL
            .iter()
            .find(|a| a.token() == s)
            .copied()
            .ok_or_else(|| format!("unknown differential axis {s:?}"))
    }
}

/// A cross-configuration disagreement on one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Disagreement {
    /// The axis whose paths diverged.
    pub axis: DiffAxis,
    /// Largest complex entry-wise difference observed (`INFINITY` when
    /// the responses are structurally incomparable or one path errored).
    pub max_diff: f64,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "axis {}: {} (max |ΔS| = {:.3e})",
            self.axis, self.detail, self.max_diff
        )
    }
}

/// A fault-injection hook: mutates a computed response before comparison.
///
/// Used to validate that the harness *would* catch a solver bug: inject a
/// perturbation, assert the runner reports a [`Disagreement`] and shrinks
/// it to a minimal corpus case. Applied to the Dense-backend response of
/// the [`DiffAxis::Backends`] comparison only.
pub type Perturbation = Arc<dyn Fn(&Netlist, &mut FrequencyResponse) + Send + Sync>;

/// The differential runner: fixed registry, grid, axis set and
/// tolerances.
pub struct DiffRunner {
    registry: ModelRegistry,
    grid: WavelengthGrid,
    axes: Vec<DiffAxis>,
    backend_tol: f64,
    naive_tol: f64,
    simd_tol: f64,
    perturbation: Option<Perturbation>,
}

impl fmt::Debug for DiffRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiffRunner")
            .field("grid", &self.grid)
            .field("axes", &self.axes)
            .field("backend_tol", &self.backend_tol)
            .field("naive_tol", &self.naive_tol)
            .field("simd_tol", &self.simd_tol)
            .field("perturbed", &self.perturbation.is_some())
            .finish()
    }
}

impl Default for DiffRunner {
    fn default() -> Self {
        DiffRunner::new(WavelengthGrid::new(1.51, 1.59, 7))
    }
}

impl DiffRunner {
    /// A runner over all axes on the given grid.
    pub fn new(grid: WavelengthGrid) -> Self {
        DiffRunner {
            registry: ModelRegistry::with_builtins(),
            grid,
            axes: DiffAxis::ALL.to_vec(),
            backend_tol: 1e-8,
            naive_tol: 1e-9,
            simd_tol: 1e-9,
            perturbation: None,
        }
    }

    /// Restricts the axis set.
    pub fn with_axes(mut self, axes: impl IntoIterator<Item = DiffAxis>) -> Self {
        self.axes = axes.into_iter().collect();
        self
    }

    /// Overrides the Dense-vs-elimination (and direct canonicalization)
    /// tolerance.
    pub fn with_backend_tol(mut self, tol: f64) -> Self {
        self.backend_tol = tol;
        self
    }

    /// Overrides the SIMD-vs-forced-scalar tolerance.
    pub fn with_simd_tol(mut self, tol: f64) -> Self {
        self.simd_tol = tol;
        self
    }

    /// Installs a fault-injection hook (see [`Perturbation`]).
    pub fn with_perturbation(mut self, perturbation: Perturbation) -> Self {
        self.perturbation = Some(perturbation);
        self
    }

    /// The sweep grid in use.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// The configured axes.
    pub fn axes(&self) -> &[DiffAxis] {
        &self.axes
    }

    /// Runs every configured axis on one netlist.
    ///
    /// Circuits whose *reference* path fails to simulate (e.g. a shrink
    /// candidate that became singular) are vacuously conformant — there
    /// is nothing to compare against.
    ///
    /// # Errors
    ///
    /// Returns the first [`Disagreement`] found.
    pub fn check(&self, netlist: &Netlist) -> Result<(), Disagreement> {
        for &axis in &self.axes {
            self.check_axis(netlist, axis)?;
        }
        Ok(())
    }

    /// Runs one axis on one netlist.
    ///
    /// # Errors
    ///
    /// Returns the [`Disagreement`] when the axis' paths diverge.
    pub fn check_axis(&self, netlist: &Netlist, axis: DiffAxis) -> Result<(), Disagreement> {
        let Ok(circuit) = Circuit::elaborate(netlist, &self.registry, None) else {
            return Ok(());
        };
        let Ok(reference) = sweep_serial(&circuit, &self.grid, Backend::PortElimination) else {
            return Ok(());
        };
        match axis {
            DiffAxis::Backends => self.check_backends(netlist, &circuit, &reference),
            DiffAxis::ConstantFold => self.check_constant_fold(&circuit),
            DiffAxis::Parallelism => self.check_parallelism(&circuit, &reference),
            DiffAxis::Cache => self.check_cache(netlist),
            DiffAxis::Canonicalization => self.check_canonicalization(netlist, &reference),
            DiffAxis::NaiveSweep => self.check_naive(&circuit, &reference),
            DiffAxis::Simd => self.check_simd(&circuit),
        }
    }

    fn check_backends(
        &self,
        netlist: &Netlist,
        circuit: &Circuit,
        reference: &FrequencyResponse,
    ) -> Result<(), Disagreement> {
        for backend in Backend::ALL {
            if backend == Backend::PortElimination {
                continue; // the reference path
            }
            let mut response =
                sweep_serial(circuit, &self.grid, backend).map_err(|e| Disagreement {
                    axis: DiffAxis::Backends,
                    max_diff: f64::INFINITY,
                    detail: format!("{backend} backend failed where elimination succeeded: {e}"),
                })?;
            if backend == Backend::Dense {
                if let Some(perturbation) = &self.perturbation {
                    perturbation(netlist, &mut response);
                }
            }
            close_enough(DiffAxis::Backends, reference, &response, self.backend_tol)?;
        }
        Ok(())
    }

    fn check_constant_fold(&self, circuit: &Circuit) -> Result<(), Disagreement> {
        for backend in Backend::ALL {
            let run = |fold: bool| -> Result<FrequencyResponse, Disagreement> {
                let plan = SweepPlan::new(circuit, backend)
                    .map_err(|e| Disagreement {
                        axis: DiffAxis::ConstantFold,
                        max_diff: f64::INFINITY,
                        detail: format!("planning failed on {backend}: {e}"),
                    })?
                    .with_constant_fold(fold);
                sweep_with_plan(&plan, &self.grid, 1).map_err(|e| Disagreement {
                    axis: DiffAxis::ConstantFold,
                    max_diff: f64::INFINITY,
                    detail: format!("sweep failed on {backend} (fold = {fold}): {e}"),
                })
            };
            let folded = run(true)?;
            let unfolded = run(false)?;
            bit_identical(DiffAxis::ConstantFold, &unfolded, &folded)?;
        }
        Ok(())
    }

    fn check_parallelism(
        &self,
        circuit: &Circuit,
        reference: &FrequencyResponse,
    ) -> Result<(), Disagreement> {
        let parallel =
            sweep_parallel(circuit, &self.grid, Backend::PortElimination, 3).map_err(|e| {
                Disagreement {
                    axis: DiffAxis::Parallelism,
                    max_diff: f64::INFINITY,
                    detail: format!("parallel sweep failed where serial succeeded: {e}"),
                }
            })?;
        bit_identical(DiffAxis::Parallelism, reference, &parallel)
    }

    fn check_cache(&self, netlist: &Netlist) -> Result<(), Disagreement> {
        let problem = self.as_problem(netlist);
        let eval = |ev: &mut Evaluator| -> Result<Arc<FrequencyResponse>, Disagreement> {
            ev.candidate_response(&problem, netlist)
                .map_err(|issues| Disagreement {
                    axis: DiffAxis::Cache,
                    max_diff: f64::INFINITY,
                    detail: format!(
                        "evaluator rejected a circuit the direct sweep accepted: {issues:?}"
                    ),
                })
        };
        let mut cold = Evaluator::new(self.grid, Backend::PortElimination);
        let cold_response = eval(&mut cold)?;
        let cache = Arc::new(EvalCache::new());
        let mut cached =
            Evaluator::new(self.grid, Backend::PortElimination).with_cache(Arc::clone(&cache));
        let miss_response = eval(&mut cached)?;
        let hit_response = eval(&mut cached)?;
        let stats = cache.stats();
        if stats.sim_hits == 0 {
            return Err(Disagreement {
                axis: DiffAxis::Cache,
                max_diff: f64::INFINITY,
                detail: format!("second evaluation did not hit the cache: {stats:?}"),
            });
        }
        bit_identical(DiffAxis::Cache, &cold_response, &miss_response)?;
        bit_identical(DiffAxis::Cache, &cold_response, &hit_response)
    }

    fn check_canonicalization(
        &self,
        netlist: &Netlist,
        reference: &FrequencyResponse,
    ) -> Result<(), Disagreement> {
        let canonical = netlist.canonicalize();
        // The evaluator pipeline simulates canonical forms: raw and
        // canonical documents must produce the same bits.
        let problem = self.as_problem(netlist);
        let mut ev = Evaluator::new(self.grid, Backend::PortElimination);
        let via_raw = ev.candidate_response(&problem, netlist);
        let via_canonical = ev.candidate_response(&problem, &canonical);
        match (via_raw, via_canonical) {
            (Ok(a), Ok(b)) => bit_identical(DiffAxis::Canonicalization, &a, &b)?,
            (raw, canon) => {
                return Err(Disagreement {
                    axis: DiffAxis::Canonicalization,
                    max_diff: f64::INFINITY,
                    detail: format!(
                        "validity changed under canonicalization: raw ok = {}, canonical ok = {}",
                        raw.is_ok(),
                        canon.is_ok()
                    ),
                });
            }
        }
        // Simulated directly, the canonical form fixes a different port
        // numbering and elimination order — physically a no-op.
        let Ok(canon_circuit) = Circuit::elaborate(&canonical, &self.registry, None) else {
            return Err(Disagreement {
                axis: DiffAxis::Canonicalization,
                max_diff: f64::INFINITY,
                detail: "canonical form failed to elaborate".to_string(),
            });
        };
        let direct =
            sweep_serial(&canon_circuit, &self.grid, Backend::PortElimination).map_err(|e| {
                Disagreement {
                    axis: DiffAxis::Canonicalization,
                    max_diff: f64::INFINITY,
                    detail: format!("canonical form failed to sweep: {e}"),
                }
            })?;
        // The canonical form may expose the same ports in sorted order;
        // compare entries by port name, not position.
        let diff = response_diff_by_name(reference, &direct);
        if diff <= self.backend_tol {
            Ok(())
        } else {
            Err(Disagreement {
                axis: DiffAxis::Canonicalization,
                max_diff: diff,
                detail: format!(
                    "direct simulation of the canonical form diverged beyond {:.1e}",
                    self.backend_tol
                ),
            })
        }
    }

    fn check_naive(
        &self,
        circuit: &Circuit,
        reference: &FrequencyResponse,
    ) -> Result<(), Disagreement> {
        for backend in Backend::ALL {
            let naive = sweep_naive(circuit, &self.grid, backend).map_err(|e| Disagreement {
                axis: DiffAxis::NaiveSweep,
                max_diff: f64::INFINITY,
                detail: format!("naive sweep failed on {backend}: {e}"),
            })?;
            let planned = if backend == Backend::PortElimination {
                reference.clone()
            } else {
                sweep_serial(circuit, &self.grid, backend).map_err(|e| Disagreement {
                    axis: DiffAxis::NaiveSweep,
                    max_diff: f64::INFINITY,
                    detail: format!("planned sweep failed on {backend}: {e}"),
                })?
            };
            close_enough(DiffAxis::NaiveSweep, &planned, &naive, self.naive_tol)?;
        }
        Ok(())
    }

    fn check_simd(&self, circuit: &Circuit) -> Result<(), Disagreement> {
        // The block-sparse backend is the only composition path that
        // dispatches through the runtime-selected SIMD kernel table, so
        // it carries the whole axis: one sweep under the ambient tier
        // (AVX-512/AVX2/NEON where detected, scalar under
        // `PICBENCH_FORCE_SCALAR=1` — the comparison is then vacuously
        // exact), one with dispatch pinned to the scalar kernels.
        let ambient =
            sweep_serial(circuit, &self.grid, Backend::BlockSparse).map_err(|e| Disagreement {
                axis: DiffAxis::Simd,
                max_diff: f64::INFINITY,
                detail: format!("block-sparse sweep failed under the ambient SIMD tier: {e}"),
            })?;
        let scalar = picbench_math::simd::with_forced_scalar(|| {
            sweep_serial(circuit, &self.grid, Backend::BlockSparse)
        })
        .map_err(|e| Disagreement {
            axis: DiffAxis::Simd,
            max_diff: f64::INFINITY,
            detail: format!("block-sparse sweep failed under forced-scalar dispatch: {e}"),
        })?;
        close_enough(DiffAxis::Simd, &scalar, &ambient, self.simd_tol)
    }

    /// Wraps a netlist as a self-golden problem so it can flow through
    /// the evaluator pipeline (which is keyed by problem spec).
    fn as_problem(&self, netlist: &Netlist) -> Problem {
        let inputs = netlist
            .ports
            .iter()
            .filter(|(name, _)| name.starts_with('I'))
            .count();
        let outputs = netlist.ports.len() - inputs;
        Problem {
            id: format!("conformance-{:016x}", netlist.content_hash()),
            name: "conformance case".to_string(),
            category: Category::FundamentalDevice,
            description: String::new(),
            spec: PortSpec::new(inputs, outputs),
            golden: netlist.clone(),
        }
    }

    /// Greedily shrinks a disagreeing netlist to a minimal counterexample
    /// that still disagrees on the same axis (see
    /// [`shrink_netlist`]).
    pub fn shrink(&self, netlist: &Netlist, axis: DiffAxis) -> Netlist {
        shrink_netlist(netlist, &self.registry, |candidate| {
            self.check_axis(candidate, axis).is_err()
        })
    }
}

/// Exact comparison: the paths run the same arithmetic and must agree on
/// every bit (derived `PartialEq` over the sample matrices; no NaNs can
/// occur because non-finite sweeps error out).
fn bit_identical(
    axis: DiffAxis,
    reference: &FrequencyResponse,
    candidate: &FrequencyResponse,
) -> Result<(), Disagreement> {
    if reference == candidate {
        return Ok(());
    }
    Err(Disagreement {
        axis,
        max_diff: response_diff(reference, candidate),
        detail: "paths required to be bit-identical diverged".to_string(),
    })
}

/// Tolerance comparison for paths running genuinely different algorithms.
fn close_enough(
    axis: DiffAxis,
    reference: &FrequencyResponse,
    candidate: &FrequencyResponse,
    tol: f64,
) -> Result<(), Disagreement> {
    let diff = response_diff(reference, candidate);
    if diff <= tol {
        return Ok(());
    }
    Err(Disagreement {
        axis,
        max_diff: diff,
        detail: format!("entry-wise difference exceeds tolerance {tol:.1e}"),
    })
}

/// Largest complex entry-wise |ΔS| across the whole sweep (`INFINITY`
/// when ports or grids differ structurally).
pub fn response_diff(a: &FrequencyResponse, b: &FrequencyResponse) -> f64 {
    if a.ports() != b.ports() || a.wavelengths() != b.wavelengths() {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    for i in 0..a.wavelengths().len() {
        match (a.sample(i), b.sample(i)) {
            (Some(sa), Some(sb)) => worst = worst.max(sa.max_abs_diff(sb)),
            _ => return f64::INFINITY,
        }
    }
    worst
}

/// Largest |ΔS| across the sweep, matching entries by *port name* — for
/// responses that expose the same port set in different orders (e.g. a
/// raw document vs its canonical form). `INFINITY` when the port sets or
/// grids differ.
pub fn response_diff_by_name(a: &FrequencyResponse, b: &FrequencyResponse) -> f64 {
    if a.wavelengths() != b.wavelengths() || a.ports().len() != b.ports().len() {
        return f64::INFINITY;
    }
    let mut sorted_a: Vec<&String> = a.ports().iter().collect();
    let mut sorted_b: Vec<&String> = b.ports().iter().collect();
    sorted_a.sort();
    sorted_b.sort();
    if sorted_a != sorted_b {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    for from in a.ports() {
        for to in a.ports() {
            let (Some(ta), Some(tb)) = (a.transmission(from, to), b.transmission(from, to)) else {
                return f64::INFINITY;
            };
            for (ca, cb) in ta.iter().zip(&tb) {
                worst = worst.max((*ca - *cb).abs());
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CircuitStrategy, Family};
    use proptest::strategy::Strategy;
    use proptest::TestRng;

    #[test]
    fn axis_tokens_round_trip() {
        for axis in DiffAxis::ALL {
            assert_eq!(axis.token().parse::<DiffAxis>().unwrap(), axis);
        }
        assert!("bogus".parse::<DiffAxis>().is_err());
    }

    #[test]
    fn generated_circuits_agree_on_every_axis() {
        let runner = DiffRunner::default();
        for family in Family::ALL {
            let strategy = CircuitStrategy::family(family);
            let mut rng = TestRng::new(2024);
            for case in 0..8 {
                let gen = strategy.generate(&mut rng);
                if let Err(d) = runner.check(&gen.netlist) {
                    panic!(
                        "{family} case {case} disagreed: {d}\n{}",
                        gen.netlist.to_json_string()
                    );
                }
            }
        }
    }

    /// A stand-in solver bug: corrupts the Dense response of any circuit
    /// containing a phase shifter (conditioning on content keeps the
    /// trigger alive while everything unrelated shrinks away).
    fn phaseshifter_bug() -> Perturbation {
        use picbench_math::Complex;
        Arc::new(|netlist: &Netlist, response: &mut FrequencyResponse| {
            let triggered = netlist
                .instances
                .iter()
                .any(|(_, inst)| inst.component == "phaseshifter");
            if !triggered {
                return;
            }
            for i in 0..response.wavelengths().len() {
                if let Some(sample) = response.sample_mut(i) {
                    let m = sample.matrix_mut();
                    if m.rows() > 0 {
                        m[(0, 0)] += Complex::real(1e-3);
                    }
                }
            }
        })
    }

    #[test]
    fn injected_perturbation_is_caught_and_shrunk_to_a_minimal_case() {
        let runner = DiffRunner::default()
            .with_axes([DiffAxis::Backends])
            .with_perturbation(phaseshifter_bug());
        let gen = CircuitStrategy::family(Family::MziLattice).generate(&mut TestRng::new(3));
        let disagreement = runner
            .check(&gen.netlist)
            .expect_err("the injected bug must be caught");
        assert_eq!(disagreement.axis, DiffAxis::Backends);
        assert!(disagreement.max_diff >= 1e-4, "{disagreement}");

        let shrunk = runner.shrink(&gen.netlist, DiffAxis::Backends);
        assert!(
            runner.check(&shrunk).is_err(),
            "shrunk case no longer reproduces"
        );
        // Minimality: the bug triggers on any phase shifter, so the
        // shrunk circuit should be a single phase-shifter instance.
        assert_eq!(
            shrunk.instances.len(),
            1,
            "not minimal:\n{}",
            shrunk.to_json_string()
        );
        let (_, only) = shrunk.instances.iter().next().unwrap();
        assert_eq!(only.component, "phaseshifter");
        // An unperturbed runner accepts the shrunk case: the corpus entry
        // documents the bug, not broken physics.
        assert!(DiffRunner::default().check(&shrunk).is_ok());
    }
}
