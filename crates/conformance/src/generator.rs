//! Seeded random circuit generation over the benchmark's structural
//! families.
//!
//! The generator is a [`Strategy`] (the vendored proptest machinery), so
//! it plugs into `proptest!` blocks, composes with `prop_map`/`Union`,
//! and draws from the same deterministic [`TestRng`] the rest of the test
//! suite uses: a `(seed, case index)` pair reproduces a circuit exactly.
//!
//! Every emitted netlist is **guaranteed structurally valid**: all
//! endpoints reference real instance ports, no port is used twice, every
//! component is bound to a built-in model, external ports follow the
//! benchmark's `I1..In`/`O1..Om` convention, and the circuit elaborates
//! and simulates on every backend. Validity is by construction (each
//! family is wired as a closed recipe), and re-checked by the harness
//! tests against the real validator.

use picbench_netlist::{Netlist, NetlistBuilder};
use proptest::strategy::Strategy;
use proptest::TestRng;
use std::fmt;
use std::str::FromStr;

/// The structural families the generator can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Binary `mmi1x2`/`splitter` fan-out trees (1 → 2^depth ports).
    SplitterTree,
    /// Cascaded discrete MZI stages (split / two arms / combine).
    MziLattice,
    /// All-pass microring chains on a lossy bus.
    RingChain,
    /// Fabry–Pérot cavities: partial mirrors around waveguide sections.
    FabryPerot,
    /// Clements-style rectangular `mzi2x2` meshes (lossless, unitary).
    ClementsMesh,
    /// Layered mixed interconnects over n parallel wires.
    MixedInterconnect,
}

impl Family {
    /// Every family, in declaration order.
    pub const ALL: [Family; 6] = [
        Family::SplitterTree,
        Family::MziLattice,
        Family::RingChain,
        Family::FabryPerot,
        Family::ClementsMesh,
        Family::MixedInterconnect,
    ];

    /// Stable kebab-case token used in corpus files and CLI flags.
    pub fn token(&self) -> &'static str {
        match self {
            Family::SplitterTree => "splitter-tree",
            Family::MziLattice => "mzi-lattice",
            Family::RingChain => "ring-chain",
            Family::FabryPerot => "fabry-perot",
            Family::ClementsMesh => "clements-mesh",
            Family::MixedInterconnect => "mixed-interconnect",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for Family {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Family::ALL
            .iter()
            .find(|f| f.token() == s)
            .copied()
            .ok_or_else(|| format!("unknown circuit family {s:?}"))
    }
}

/// One generated test circuit plus the metadata the oracles need.
#[derive(Debug, Clone, PartialEq)]
pub struct GenCircuit {
    /// The guaranteed-valid netlist.
    pub netlist: Netlist,
    /// Which structural family produced it.
    pub family: Family,
    /// Whether the circuit is built exclusively from lossless unitary
    /// blocks — the precondition of the unitarity oracle.
    pub lossless: bool,
}

/// Size/mix distribution knobs of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Families to draw from (uniformly). Must be non-empty.
    pub families: Vec<Family>,
    /// Cap on stage/depth/layer counts (≥ 1).
    pub max_stages: usize,
    /// Cap on parallel modes for meshes and interconnects (≥ 2, even
    /// values are used for meshes).
    pub max_modes: usize,
    /// Probability that a mixed interconnect is drawn from the lossless
    /// unitary palette instead of the full lossy one.
    pub lossless_bias: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            families: Family::ALL.to_vec(),
            max_stages: 4,
            max_modes: 6,
            lossless_bias: 0.5,
        }
    }
}

/// The circuit [`Strategy`]: draws one [`GenCircuit`] per case.
#[derive(Debug, Clone)]
pub struct CircuitStrategy {
    config: GeneratorConfig,
}

impl CircuitStrategy {
    /// A strategy over the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration enables no families or uses degenerate
    /// size caps.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(!config.families.is_empty(), "no families enabled");
        assert!(config.max_stages >= 1, "max_stages must be at least 1");
        assert!(config.max_modes >= 2, "max_modes must be at least 2");
        CircuitStrategy { config }
    }

    /// A strategy restricted to one family.
    pub fn family(family: Family) -> Self {
        CircuitStrategy::new(GeneratorConfig {
            families: vec![family],
            ..GeneratorConfig::default()
        })
    }

    /// Draws `count` circuits from a fresh generator seeded with `seed` —
    /// the convenience entry for callers that don't otherwise deal in
    /// proptest machinery (the `conformance` binary, corpus tooling).
    pub fn sample(&self, seed: u64, count: usize) -> Vec<GenCircuit> {
        let mut rng = TestRng::new(seed);
        (0..count).map(|_| self.generate(&mut rng)).collect()
    }
}

impl Default for CircuitStrategy {
    fn default() -> Self {
        CircuitStrategy::new(GeneratorConfig::default())
    }
}

impl Strategy for CircuitStrategy {
    type Value = GenCircuit;

    fn generate(&self, rng: &mut TestRng) -> GenCircuit {
        let family = self.config.families[rng.below(self.config.families.len())];
        match family {
            Family::SplitterTree => splitter_tree(rng, &self.config),
            Family::MziLattice => mzi_lattice(rng, &self.config),
            Family::RingChain => ring_chain(rng, &self.config),
            Family::FabryPerot => fabry_perot(rng, &self.config),
            Family::ClementsMesh => clements_mesh(rng, &self.config),
            Family::MixedInterconnect => mixed_interconnect(rng, &self.config),
        }
    }
}

/// Uniform draw from an inclusive integer range.
fn pick(rng: &mut TestRng, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi);
    lo + rng.below(hi - lo + 1)
}

/// Uniform draw from an f64 range, rounded to 4 decimals so generated
/// settings stay human-readable in corpus files.
fn pick_f64(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    let raw = lo + rng.unit_f64() * (hi - lo);
    (raw * 1e4).round() / 1e4
}

/// Binds the standard 1:1 model names used by every family.
fn bind_models(b: &mut NetlistBuilder, models: &[&str]) {
    for m in models {
        b.model(m, m);
    }
}

/// A 1 → 2^depth fan-out tree of 1x2 splitting elements with waveguide
/// spacers on a random subset of edges. Three-port splitting elements
/// absorb the power mismatch of their reverse direction, so the tree is
/// passive and reciprocal but never unitary.
fn splitter_tree(rng: &mut TestRng, config: &GeneratorConfig) -> GenCircuit {
    let depth = pick(rng, 1, config.max_stages.min(3));
    let mut b = NetlistBuilder::new();
    let mut idx = 0usize;
    // Frontier of open output ends, written "instance,port".
    let mut frontier: Vec<String> = Vec::new();

    let root = format!("sp{idx}");
    idx += 1;
    add_split_node(&mut b, rng, &root);
    frontier.push(format!("{root},O1"));
    frontier.push(format!("{root},O2"));

    for _ in 1..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for open in frontier {
            // Optionally insert a spacer waveguide before the next node.
            let feed = if rng.below(2) == 0 {
                let wg = format!("wg{idx}");
                idx += 1;
                b.instance_with(&wg, "waveguide", &[("length", pick_f64(rng, 1.0, 60.0))]);
                b.connect(&open, &format!("{wg},I1"));
                format!("{wg},O1")
            } else {
                open
            };
            let node = format!("sp{idx}");
            idx += 1;
            add_split_node(&mut b, rng, &node);
            b.connect(&feed, &format!("{node},I1"));
            next.push(format!("{node},O1"));
            next.push(format!("{node},O2"));
        }
        frontier = next;
    }

    b.port("I1", &format!("{root},I1"));
    for (i, open) in frontier.iter().enumerate() {
        b.port(&format!("O{}", i + 1), open);
    }
    bind_models(&mut b, &["mmi1x2", "splitter", "waveguide"]);
    GenCircuit {
        netlist: b.build(),
        family: Family::SplitterTree,
        lossless: false,
    }
}

/// One 1x2 splitting element: an ideal MMI or a ratio splitter.
fn add_split_node(b: &mut NetlistBuilder, rng: &mut TestRng, name: &str) {
    if rng.below(2) == 0 {
        b.instance(name, "mmi1x2");
    } else {
        b.instance_with(name, "splitter", &[("ratio", pick_f64(rng, 0.2, 0.8))]);
    }
}

/// A cascade of discrete MZI stages: split, a phase-shifted top arm and a
/// plain bottom arm, recombine through a reversed 1x2 MMI.
fn mzi_lattice(rng: &mut TestRng, config: &GeneratorConfig) -> GenCircuit {
    let stages = pick(rng, 1, config.max_stages);
    let mut b = NetlistBuilder::new();
    let mut open = String::new();
    for s in 0..stages {
        let base = pick_f64(rng, 5.0, 40.0);
        let delta = pick_f64(rng, 0.0, 30.0);
        let phase = pick_f64(rng, 0.0, std::f64::consts::TAU);
        b.instance(&format!("split{s}"), "mmi1x2");
        b.instance_with(
            &format!("top{s}"),
            "phaseshifter",
            &[("length", base + delta), ("phase", phase)],
        );
        b.instance_with(&format!("bot{s}"), "waveguide", &[("length", base)]);
        b.instance(&format!("join{s}"), "mmi1x2");
        b.connect(&format!("split{s},O1"), &format!("top{s},I1"));
        b.connect(&format!("split{s},O2"), &format!("bot{s},I1"));
        b.connect(&format!("top{s},O1"), &format!("join{s},O1"));
        b.connect(&format!("bot{s},O1"), &format!("join{s},O2"));
        if s > 0 {
            b.connect(&open, &format!("split{s},I1"));
        }
        open = format!("join{s},I1");
    }
    b.port("I1", "split0,I1");
    b.port("O1", &open);
    bind_models(&mut b, &["mmi1x2", "phaseshifter", "waveguide"]);
    GenCircuit {
        netlist: b.build(),
        family: Family::MziLattice,
        lossless: false,
    }
}

/// A bus of all-pass rings separated by lossy waveguide sections. The
/// couplings are kept well away from zero so the ring loops never become
/// undamped resonators (which would be a legitimately singular system).
fn ring_chain(rng: &mut TestRng, config: &GeneratorConfig) -> GenCircuit {
    let rings = pick(rng, 1, config.max_stages);
    let mut b = NetlistBuilder::new();
    let mut open = String::new();
    for r in 0..rings {
        let wg = format!("bus{r}");
        b.instance_with(&wg, "waveguide", &[("length", pick_f64(rng, 5.0, 40.0))]);
        if r > 0 {
            b.connect(&open, &format!("{wg},I1"));
        }
        let ring = format!("ring{r}");
        b.instance_with(
            &ring,
            "ringap",
            &[
                ("radius", pick_f64(rng, 3.0, 10.0)),
                ("coupling", pick_f64(rng, 0.3, 0.8)),
            ],
        );
        b.connect(&format!("{wg},O1"), &format!("{ring},I1"));
        open = format!("{ring},O1");
    }
    let tail = "tail";
    b.instance_with(tail, "waveguide", &[("length", pick_f64(rng, 5.0, 40.0))]);
    b.connect(&open, &format!("{tail},I1"));
    b.port("I1", "bus0,I1");
    b.port("O1", &format!("{tail},O1"));
    bind_models(&mut b, &["waveguide", "ringap"]);
    GenCircuit {
        netlist: b.build(),
        family: Family::RingChain,
        lossless: false,
    }
}

/// Fabry–Pérot cavities: waveguide sections sandwiched between partial
/// mirrors. Reflectivities are capped below 1 so the round-trip gain of
/// every cavity stays strictly under unity.
fn fabry_perot(rng: &mut TestRng, config: &GeneratorConfig) -> GenCircuit {
    let cavities = pick(rng, 1, config.max_stages.min(3));
    let mut b = NetlistBuilder::new();
    b.instance_with("in", "waveguide", &[("length", pick_f64(rng, 2.0, 20.0))]);
    let mut open = "in,O1".to_string();
    for c in 0..cavities {
        let m1 = format!("m{c}a");
        let cav = format!("cav{c}");
        let m2 = format!("m{c}b");
        b.instance_with(
            &m1,
            "reflector",
            &[("reflectivity", pick_f64(rng, 0.2, 0.9))],
        );
        b.instance_with(&cav, "waveguide", &[("length", pick_f64(rng, 20.0, 80.0))]);
        b.instance_with(
            &m2,
            "reflector",
            &[("reflectivity", pick_f64(rng, 0.2, 0.9))],
        );
        b.connect(&open, &format!("{m1},I1"));
        b.connect(&format!("{m1},O1"), &format!("{cav},I1"));
        b.connect(&format!("{cav},O1"), &format!("{m2},I1"));
        open = format!("{m2},O1");
    }
    b.instance_with("out", "waveguide", &[("length", pick_f64(rng, 2.0, 20.0))]);
    b.connect(&open, "out,I1");
    b.port("I1", "in,I1");
    b.port("O1", "out,O1");
    bind_models(&mut b, &["waveguide", "reflector"]);
    GenCircuit {
        netlist: b.build(),
        family: Family::FabryPerot,
        lossless: false,
    }
}

/// A Clements-style rectangular mesh of dispersionless `mzi2x2` blocks
/// with random `(theta, phi)` per cell and zero-length output phase
/// shifters. Fully feedforward and built from unitary blocks only, so
/// the composed S-matrix must itself be unitary.
fn clements_mesh(rng: &mut TestRng, config: &GeneratorConfig) -> GenCircuit {
    let modes = 2 * pick(rng, 1, (config.max_modes / 2).max(1));
    let columns = pick(rng, 1, config.max_stages);
    let mut b = NetlistBuilder::new();
    // wire[i] = open "instance,port" end of mode i; seeded by lossless
    // feed waveguides so every mode has an instance to anchor ports on.
    let mut wire: Vec<String> = (0..modes)
        .map(|i| {
            b.instance_with(
                &format!("feed{i}"),
                "waveguide",
                &[("length", pick_f64(rng, 1.0, 20.0)), ("loss", 0.0)],
            );
            format!("feed{i},O1")
        })
        .collect();
    for c in 0..columns {
        let start = c % 2;
        let mut i = start;
        while i + 1 < modes {
            let cell = format!("mzi{c}x{i}");
            b.instance_with(
                &cell,
                "mzi2x2",
                &[
                    ("theta", pick_f64(rng, 0.0, std::f64::consts::TAU)),
                    ("phi", pick_f64(rng, 0.0, std::f64::consts::TAU)),
                ],
            );
            b.connect(&wire[i], &format!("{cell},I1"));
            b.connect(&wire[i + 1], &format!("{cell},I2"));
            wire[i] = format!("{cell},O1");
            wire[i + 1] = format!("{cell},O2");
            i += 2;
        }
    }
    for (i, open) in wire.iter_mut().enumerate() {
        let ps = format!("ops{i}");
        b.instance_with(
            &ps,
            "phaseshifter",
            &[
                ("length", 0.0),
                ("phase", pick_f64(rng, 0.0, std::f64::consts::TAU)),
            ],
        );
        b.connect(open, &format!("{ps},I1"));
        *open = format!("{ps},O1");
    }
    for i in 0..modes {
        b.port(&format!("I{}", i + 1), &format!("feed{i},I1"));
    }
    for (i, open) in wire.iter().enumerate() {
        b.port(&format!("O{}", i + 1), open);
    }
    bind_models(&mut b, &["waveguide", "mzi2x2", "phaseshifter"]);
    GenCircuit {
        netlist: b.build(),
        family: Family::ClementsMesh,
        lossless: true,
    }
}

/// Layered mixed interconnect over n parallel wires: each layer places a
/// two-port element on one wire or a four-port element across an adjacent
/// pair. The lossless variant draws only from unitary blocks (with
/// explicit `loss = 0` guide overrides); the lossy variant adds
/// attenuators, crossings and default propagation loss.
fn mixed_interconnect(rng: &mut TestRng, config: &GeneratorConfig) -> GenCircuit {
    let modes = pick(rng, 2, config.max_modes);
    let layers = pick(rng, 1, config.max_stages * 2);
    let lossless = rng.unit_f64() < config.lossless_bias;
    let mut b = NetlistBuilder::new();
    let mut idx = 0usize;
    let mut wire: Vec<String> = (0..modes)
        .map(|i| {
            let settings: &[(&str, f64)] = if lossless {
                &[("length", 5.0), ("loss", 0.0)]
            } else {
                &[("length", 5.0)]
            };
            b.instance_with(&format!("feed{i}"), "waveguide", settings);
            format!("feed{i},O1")
        })
        .collect();

    for _ in 0..layers {
        if modes >= 2 && rng.below(3) != 0 {
            // Four-port element on an adjacent pair.
            let i = rng.below(modes - 1);
            let name = format!("el{idx}");
            idx += 1;
            let choice = rng.below(if lossless { 4 } else { 5 });
            match choice {
                0 => {
                    b.instance_with(&name, "coupler", &[("coupling", pick_f64(rng, 0.1, 0.9))]);
                }
                1 => {
                    b.instance(&name, "mmi2x2");
                }
                2 => {
                    b.instance_with(
                        &name,
                        "mzi2x2",
                        &[
                            ("theta", pick_f64(rng, 0.0, std::f64::consts::TAU)),
                            ("phi", pick_f64(rng, 0.0, std::f64::consts::TAU)),
                        ],
                    );
                }
                3 => {
                    b.instance_with(&name, "switch2x2", &[("state", rng.below(2) as f64)]);
                }
                _ => {
                    b.instance(&name, "crossing");
                }
            }
            b.connect(&wire[i], &format!("{name},I1"));
            b.connect(&wire[i + 1], &format!("{name},I2"));
            wire[i] = format!("{name},O1");
            wire[i + 1] = format!("{name},O2");
        } else {
            // Two-port element on one wire.
            let i = rng.below(modes);
            let name = format!("el{idx}");
            idx += 1;
            let choice = rng.below(if lossless { 2 } else { 3 });
            match choice {
                0 => {
                    if lossless {
                        b.instance_with(
                            &name,
                            "waveguide",
                            &[("length", pick_f64(rng, 1.0, 50.0)), ("loss", 0.0)],
                        );
                    } else {
                        b.instance_with(
                            &name,
                            "waveguide",
                            &[("length", pick_f64(rng, 1.0, 50.0))],
                        );
                    }
                }
                1 => {
                    let mut settings = vec![
                        ("length", pick_f64(rng, 0.0, 20.0)),
                        ("phase", pick_f64(rng, 0.0, std::f64::consts::TAU)),
                    ];
                    if lossless {
                        settings.push(("loss", 0.0));
                    }
                    b.instance_with(&name, "phaseshifter", &settings);
                }
                _ => {
                    b.instance_with(
                        &name,
                        "attenuator",
                        &[("attenuation", pick_f64(rng, 0.0, 6.0))],
                    );
                }
            }
            b.connect(&wire[i], &format!("{name},I1"));
            wire[i] = format!("{name},O1");
        }
    }

    for i in 0..modes {
        b.port(&format!("I{}", i + 1), &format!("feed{i},I1"));
    }
    for (i, open) in wire.iter().enumerate() {
        b.port(&format!("O{}", i + 1), open);
    }
    bind_models(
        &mut b,
        &[
            "waveguide",
            "phaseshifter",
            "coupler",
            "mmi2x2",
            "mzi2x2",
            "switch2x2",
            "crossing",
            "attenuator",
        ],
    );
    GenCircuit {
        netlist: b.build(),
        family: Family::MixedInterconnect,
        lossless,
    }
}

/// A structurally identical permutation of a netlist: instances, ports
/// and model bindings re-inserted in shuffled order, and every
/// connection's endpoints flipped with probability one half. The result
/// canonicalizes and hashes identically to the input — the property the
/// round-trip and canonicalization tests pin down.
pub fn shuffle_netlist(netlist: &Netlist, rng: &mut TestRng) -> Netlist {
    fn shuffled_keys<V>(map: &picbench_netlist::OrderedMap<V>, rng: &mut TestRng) -> Vec<String> {
        let mut keys: Vec<String> = map.keys().map(str::to_string).collect();
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.below(i + 1));
        }
        keys
    }

    let mut out = Netlist::default();
    for name in shuffled_keys(&netlist.instances, rng) {
        out.instances.insert(
            name.clone(),
            netlist.instances.get(&name).expect("key").clone(),
        );
    }
    let mut connections = netlist.connections.clone();
    for i in (1..connections.len()).rev() {
        connections.swap(i, rng.below(i + 1));
    }
    for c in &mut connections {
        if rng.below(2) == 0 {
            std::mem::swap(&mut c.a, &mut c.b);
        }
    }
    out.connections = connections;
    for name in shuffled_keys(&netlist.ports, rng) {
        out.ports
            .insert(name.clone(), netlist.ports.get(&name).expect("key").clone());
    }
    for name in shuffled_keys(&netlist.models, rng) {
        out.models.insert(
            name.clone(),
            netlist.models.get(&name).expect("key").clone(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::validate;
    use picbench_sim::ModelRegistry;

    #[test]
    fn family_tokens_round_trip() {
        for family in Family::ALL {
            assert_eq!(family.token().parse::<Family>().unwrap(), family);
        }
        assert!("warp-core".parse::<Family>().is_err());
    }

    #[test]
    fn every_family_generates_valid_netlists() {
        let registry = ModelRegistry::with_builtins();
        for family in Family::ALL {
            let strategy = CircuitStrategy::family(family);
            let mut rng = TestRng::new(42);
            for case in 0..25 {
                let gen = strategy.generate(&mut rng);
                assert_eq!(gen.family, family);
                let issues = validate(&gen.netlist, &registry, None);
                assert!(
                    issues.is_empty(),
                    "{family} case {case} invalid: {issues:?}\n{}",
                    gen.netlist.to_json_string()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strategy = CircuitStrategy::default();
        let a = strategy.generate(&mut TestRng::new(7));
        let b = strategy.generate(&mut TestRng::new(7));
        let c = strategy.generate(&mut TestRng::new(8));
        assert_eq!(a, b);
        assert!(a != c || a.netlist.content_hash() == c.netlist.content_hash());
    }

    #[test]
    fn shuffle_preserves_content_hash() {
        let strategy = CircuitStrategy::default();
        let mut rng = TestRng::new(11);
        for _ in 0..20 {
            let gen = strategy.generate(&mut rng);
            let shuffled = shuffle_netlist(&gen.netlist, &mut rng);
            assert_eq!(gen.netlist.content_hash(), shuffled.content_hash());
            assert_eq!(gen.netlist.canonicalize(), shuffled.canonicalize());
        }
    }
}
