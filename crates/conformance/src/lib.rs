//! # picbench-conformance
//!
//! The verification backbone of PICBench-rs: a generative conformance
//! harness that checks the simulator's every configuration against the
//! others and against physics, so performance work on the hot paths can
//! land without silently corrupting verdicts.
//!
//! Three layers:
//!
//! 1. [`generator`] — a seeded random circuit generator over the suite's
//!    structural families (splitter trees, MZI lattices, ring and
//!    Fabry–Pérot chains, Clements-style meshes, mixed interconnects),
//!    built on the vendored proptest [`Strategy`] machinery. Every
//!    emitted netlist is guaranteed valid.
//! 2. [`oracle`] — physics oracles: reciprocity (`S = Sᵀ`), passivity,
//!    unitarity for lossless model mixes, and wavelength continuity with
//!    an analytic per-circuit bound.
//! 3. [`differential`] — a runner sweeping every circuit through the
//!    configuration axes that are required to agree (Dense vs port
//!    elimination, constant-fold on/off, serial vs parallel, cached vs
//!    uncached evaluation, canonicalized vs raw documents, naive vs
//!    planned sweeps), with greedy counterexample [`shrink`]ing and a
//!    replayable JSON [`corpus`].
//!
//! The [`runner`] module ties the layers into the single-call sweep the
//! `conformance` bench binary and CI gate drive.
//!
//! ## Example
//!
//! ```
//! use picbench_conformance::{run_conformance, ConformanceConfig};
//!
//! let report = run_conformance(&ConformanceConfig {
//!     cases: 4,
//!     seed: 1,
//!     ..ConformanceConfig::default()
//! });
//! assert!(report.is_conformant());
//! ```
//!
//! [`Strategy`]: proptest::Strategy

#![warn(missing_docs)]

pub mod corpus;
pub mod differential;
pub mod generator;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use corpus::{load_corpus_dir, CorpusCase, CorpusError};
pub use differential::{response_diff, DiffAxis, DiffRunner, Disagreement, Perturbation};
pub use generator::{shuffle_netlist, CircuitStrategy, Family, GenCircuit, GeneratorConfig};
pub use oracle::{check_circuit, effective_optical_length_um, OracleConfig, OracleViolation};
pub use runner::{run_conformance, CaseFailure, ConformanceConfig, ConformanceReport, FailureKind};
pub use shrink::{normalize_port_names, shrink_netlist};
