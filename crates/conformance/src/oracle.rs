//! Physics oracles: properties every correctly composed passive circuit
//! must satisfy, independent of any golden design.
//!
//! The oracles turn physical invariants into executable checks on the
//! simulator's output:
//!
//! * **Reciprocity** — every built-in model satisfies `S = Sᵀ`, and both
//!   composition algorithms preserve the property, so the external
//!   S-matrix of *any* generated circuit must be reciprocal.
//! * **Passivity** — no column's total output power may exceed unity:
//!   the models have no gain and composition cannot create energy.
//! * **Unitarity** — a circuit assembled exclusively from lossless
//!   unitary blocks (the generator's `lossless` families) must compose
//!   to a unitary S-matrix: `S†S = I`.
//! * **Wavelength continuity** — the response is an analytic function of
//!   wavelength whose derivative is bounded by the circuit's optical
//!   path content; a jump bigger than that bound over a tiny Δλ flags a
//!   solver discontinuity (wrong branch, permutation mix-up, cache
//!   confusion) that pointwise checks cannot see.

use crate::generator::GenCircuit;
use picbench_netlist::Netlist;
use picbench_sim::{evaluate, Backend, Circuit, ModelRegistry, SimError};
use std::fmt;

/// Tolerances and probe settings of the oracle suite.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Max |S − Sᵀ| entry.
    pub reciprocity_tol: f64,
    /// Max column power excess over 1.
    pub passivity_tol: f64,
    /// Max |S†S − I| entry (lossless circuits only).
    pub unitarity_tol: f64,
    /// Δλ (µm) of the continuity probe.
    pub continuity_delta_um: f64,
    /// Safety multiplier on the analytic |dS/dλ| bound.
    pub continuity_safety: f64,
    /// Wavelengths (µm) to probe.
    pub wavelengths_um: Vec<f64>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            reciprocity_tol: 1e-9,
            passivity_tol: 1e-9,
            unitarity_tol: 1e-8,
            continuity_delta_um: 1e-5,
            continuity_safety: 8.0,
            wavelengths_um: vec![1.51, 1.55, 1.59],
        }
    }
}

/// One violated physical invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleViolation {
    /// `S ≠ Sᵀ` beyond tolerance.
    NonReciprocal {
        /// Probe wavelength (µm).
        wavelength_um: f64,
        /// Largest |S − Sᵀ| entry.
        defect: f64,
    },
    /// A column's output power exceeds unity beyond tolerance.
    NonPassive {
        /// Probe wavelength (µm).
        wavelength_um: f64,
        /// Largest power excess.
        defect: f64,
    },
    /// A lossless circuit composed to a non-unitary S-matrix.
    NonUnitary {
        /// Probe wavelength (µm).
        wavelength_um: f64,
        /// Largest |S†S − I| entry.
        defect: f64,
    },
    /// The response jumped more over Δλ than the circuit's optical path
    /// content permits.
    Discontinuous {
        /// Probe wavelength (µm).
        wavelength_um: f64,
        /// Observed |ΔS| over the probe step.
        jump: f64,
        /// The analytic bound that was exceeded.
        bound: f64,
    },
    /// The circuit failed to evaluate at a probe wavelength (generated
    /// circuits are constructed to be simulable, so this is itself a
    /// finding).
    EvaluationFailed {
        /// Probe wavelength (µm).
        wavelength_um: f64,
        /// The simulator error, rendered.
        error: String,
    },
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::NonReciprocal {
                wavelength_um,
                defect,
            } => write!(
                f,
                "non-reciprocal at {wavelength_um} um: |S - S^T| = {defect:.3e}"
            ),
            OracleViolation::NonPassive {
                wavelength_um,
                defect,
            } => write!(
                f,
                "non-passive at {wavelength_um} um: power excess {defect:.3e}"
            ),
            OracleViolation::NonUnitary {
                wavelength_um,
                defect,
            } => write!(
                f,
                "non-unitary at {wavelength_um} um: |S^H S - I| = {defect:.3e}"
            ),
            OracleViolation::Discontinuous {
                wavelength_um,
                jump,
                bound,
            } => write!(
                f,
                "discontinuous at {wavelength_um} um: |dS| = {jump:.3e} exceeds bound {bound:.3e}"
            ),
            OracleViolation::EvaluationFailed {
                wavelength_um,
                error,
            } => write!(f, "evaluation failed at {wavelength_um} um: {error}"),
        }
    }
}

/// An analytic upper bound on the phase-path content of a circuit, in
/// micrometres of effective optical length: the sum of all guided-section
/// lengths, times the worst resonant enhancement factor any feedback
/// element (ring, mirror pair) can contribute.
///
/// The slope of any S entry obeys `|dS/dλ| ≤ 2π·n_g·L_eff/λ²` (phase
/// rotation of the longest path, resonance-enhanced), so a conformant
/// solver can never jump more than that over a small Δλ.
pub fn effective_optical_length_um(netlist: &Netlist) -> f64 {
    let mut total_length = 0.0f64;
    let mut enhancement = 1.0f64;
    for (_, inst) in netlist.instances.iter() {
        let model_ref = netlist
            .models
            .get(&inst.component)
            .map(String::as_str)
            .unwrap_or(inst.component.as_str());
        let setting = |key: &str, default: f64| inst.settings.get(key).copied().unwrap_or(default);
        match model_ref {
            "waveguide" | "phaseshifter" => total_length += setting("length", 10.0),
            "mzi" => total_length += setting("length", 10.0) + setting("delta_length", 10.0),
            "mzm" => total_length += setting("length", 10.0) + setting("delta_length", 0.0),
            "ringap" | "ringad" => {
                let circumference = std::f64::consts::TAU * setting("radius", 5.0);
                total_length += circumference;
                // All-pass/add-drop slope enhancement ≤ 2/(1 − t·a) with
                // t = √(1−κ); since 1 − √(1−κ) ≥ κ/2, 4/κ bounds it.
                let kappa = setting("coupling", setting("coupling1", 0.1)).clamp(1e-3, 1.0);
                enhancement = enhancement.max(4.0 / kappa);
            }
            "reflector" => {
                // A mirror pair of amplitude reflectivity r̂ = √R enhances
                // the cavity path by ≤ (1 + r̂)/(1 − r̂).
                let r_amp = setting("reflectivity", 0.9).clamp(0.0, 0.999_999).sqrt();
                enhancement = enhancement.max((1.0 + r_amp) / (1.0 - r_amp));
            }
            _ => {}
        }
    }
    total_length * enhancement
}

/// Runs every applicable oracle on a generated circuit, returning all
/// violations found (empty = conformant).
///
/// The circuit is evaluated with `backend` at each configured probe
/// wavelength; unitarity is only asserted when the generator marked the
/// circuit lossless.
pub fn check_circuit(
    gen: &GenCircuit,
    registry: &ModelRegistry,
    backend: Backend,
    config: &OracleConfig,
) -> Vec<OracleViolation> {
    let mut violations = Vec::new();
    let circuit = match Circuit::elaborate(&gen.netlist, registry, None) {
        Ok(c) => c,
        Err(e) => {
            violations.push(OracleViolation::EvaluationFailed {
                wavelength_um: f64::NAN,
                error: e.to_string(),
            });
            return violations;
        }
    };

    // dS/dλ bound: 2π·n_g·L_eff/λ², evaluated at the band's short edge.
    let l_eff = effective_optical_length_um(&gen.netlist);
    let min_wl = config
        .wavelengths_um
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let slope_bound =
        std::f64::consts::TAU * picbench_sparams::models::DEFAULT_NG * l_eff / (min_wl * min_wl);
    let continuity_bound =
        (slope_bound * config.continuity_delta_um * config.continuity_safety).max(1e-3);

    for &wl in &config.wavelengths_um {
        let s = match evaluate(&circuit, wl, backend) {
            Ok(s) => s,
            Err(e) => {
                violations.push(evaluation_failure(wl, &e));
                continue;
            }
        };
        let reciprocity = s.reciprocity_defect();
        if reciprocity > config.reciprocity_tol {
            violations.push(OracleViolation::NonReciprocal {
                wavelength_um: wl,
                defect: reciprocity,
            });
        }
        let passivity = s.passivity_defect();
        if passivity > config.passivity_tol {
            violations.push(OracleViolation::NonPassive {
                wavelength_um: wl,
                defect: passivity,
            });
        }
        if gen.lossless {
            let unitarity = s.unitarity_defect();
            if unitarity > config.unitarity_tol {
                violations.push(OracleViolation::NonUnitary {
                    wavelength_um: wl,
                    defect: unitarity,
                });
            }
        }
        match evaluate(&circuit, wl + config.continuity_delta_um, backend) {
            Ok(nearby) => {
                let jump = s.max_abs_diff(&nearby);
                if jump > continuity_bound {
                    violations.push(OracleViolation::Discontinuous {
                        wavelength_um: wl,
                        jump,
                        bound: continuity_bound,
                    });
                }
            }
            Err(e) => violations.push(evaluation_failure(wl + config.continuity_delta_um, &e)),
        }
    }
    violations
}

fn evaluation_failure(wavelength_um: f64, error: &SimError) -> OracleViolation {
    OracleViolation::EvaluationFailed {
        wavelength_um,
        error: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CircuitStrategy, Family};
    use proptest::strategy::Strategy;
    use proptest::TestRng;

    #[test]
    fn generated_circuits_satisfy_all_oracles_on_both_backends() {
        let registry = ModelRegistry::with_builtins();
        let config = OracleConfig::default();
        for family in Family::ALL {
            let strategy = CircuitStrategy::family(family);
            let mut rng = TestRng::new(314);
            for case in 0..10 {
                let gen = strategy.generate(&mut rng);
                for backend in Backend::ALL {
                    let violations = check_circuit(&gen, &registry, backend, &config);
                    assert!(
                        violations.is_empty(),
                        "{family} case {case} on {backend}: {violations:?}\n{}",
                        gen.netlist.to_json_string()
                    );
                }
            }
        }
    }

    #[test]
    fn gain_is_flagged_as_non_passive_and_non_unitary() {
        // Perturb a lossless mesh by doubling one mzi2x2 output: the
        // oracles must see both the power excess and the unitarity break.
        let strategy = CircuitStrategy::family(Family::ClementsMesh);
        let gen = strategy.generate(&mut TestRng::new(5));
        assert!(gen.lossless);
        let registry = ModelRegistry::with_builtins();
        let ok = check_circuit(
            &gen,
            &registry,
            Backend::default(),
            &OracleConfig::default(),
        );
        assert!(ok.is_empty(), "{ok:?}");

        // An attenuator with negative attenuation is rejected by the
        // model itself, so build gain by violating the lossless claim
        // instead: attenuate inside a circuit still *marked* lossless.
        let mut tampered = gen.clone();
        let first = tampered
            .netlist
            .instances
            .keys()
            .next()
            .expect("mesh has instances")
            .to_string();
        tampered
            .netlist
            .instances
            .get_mut(&first)
            .unwrap()
            .settings
            .insert("loss".to_string(), 2000.0);
        let violations = check_circuit(
            &tampered,
            &registry,
            Backend::default(),
            &OracleConfig::default(),
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, OracleViolation::NonUnitary { .. })),
            "lossy circuit still claimed unitary: {violations:?}"
        );
    }

    #[test]
    fn effective_length_accounts_for_resonators() {
        let plain = CircuitStrategy::family(Family::MziLattice)
            .generate(&mut TestRng::new(1))
            .netlist;
        let ringy = CircuitStrategy::family(Family::RingChain)
            .generate(&mut TestRng::new(1))
            .netlist;
        assert!(effective_optical_length_um(&plain) > 0.0);
        // Ring chains carry an enhancement factor > 1.
        assert!(effective_optical_length_um(&ringy) > 0.0);
    }

    #[test]
    fn violations_render_human_readably() {
        let v = OracleViolation::NonUnitary {
            wavelength_um: 1.55,
            defect: 0.25,
        };
        assert!(v.to_string().contains("non-unitary"));
        let d = OracleViolation::Discontinuous {
            wavelength_um: 1.55,
            jump: 1.0,
            bound: 0.5,
        };
        assert!(d.to_string().contains("exceeds bound"));
    }
}
