//! The replayable regression corpus.
//!
//! Every counterexample the differential runner finds (and every
//! hand-seeded representative case) is stored as one JSON document under
//! `tests/corpus/`, containing the netlist, the sweep grid, the axes it
//! must agree on, and provenance (generator seed, family). The corpus is
//! replayed through **all** differential axes and the physics oracles on
//! every `cargo test`, so a regression that once slipped through can
//! never return silently.
//!
//! Case documents are deliberately plain: reproduce one by feeding the
//! embedded netlist to `conformance --replay <file>` or by pasting it
//! into any simulator entry point.

use crate::generator::{Family, GenCircuit};
use picbench_netlist::{json, Netlist};
use picbench_sim::WavelengthGrid;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// One replayable conformance case.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// Stable case name (also the file stem by convention).
    pub name: String,
    /// Generator seed that produced the original circuit (0 for
    /// hand-written cases).
    pub seed: u64,
    /// Structural family, when the generator produced it.
    pub family: Option<Family>,
    /// Whether the unitarity oracle applies.
    pub lossless: bool,
    /// The sweep grid to replay on.
    pub grid: WavelengthGrid,
    /// Free-text provenance: what this case once caught or represents.
    pub note: String,
    /// The circuit under test.
    pub netlist: Netlist,
}

impl CorpusCase {
    /// Wraps the case's circuit in the generator metadata shape the
    /// oracles consume.
    pub fn gen_circuit(&self) -> GenCircuit {
        GenCircuit {
            netlist: self.netlist.clone(),
            family: self.family.unwrap_or(Family::MixedInterconnect),
            lossless: self.lossless,
        }
    }

    /// Serializes to the corpus JSON document layout.
    pub fn to_json_string(&self) -> String {
        // Seeds beyond 2^53 don't survive a JSON number's f64 mantissa;
        // store those as decimal strings (the parser accepts both).
        let seed_value = if self.seed as f64 as u64 == self.seed {
            json::Value::Number(self.seed as f64)
        } else {
            json::Value::String(self.seed.to_string())
        };
        let mut fields = vec![
            ("case".to_string(), json::Value::String(self.name.clone())),
            ("seed".to_string(), seed_value),
        ];
        if let Some(family) = self.family {
            fields.push((
                "family".to_string(),
                json::Value::String(family.token().to_string()),
            ));
        }
        fields.push(("lossless".to_string(), json::Value::Bool(self.lossless)));
        fields.push((
            "grid".to_string(),
            json::Value::Object(vec![
                (
                    "start_um".to_string(),
                    json::Value::Number(self.grid.start_um),
                ),
                (
                    "stop_um".to_string(),
                    json::Value::Number(self.grid.stop_um),
                ),
                (
                    "points".to_string(),
                    json::Value::Number(self.grid.points as f64),
                ),
            ]),
        ));
        fields.push(("note".to_string(), json::Value::String(self.note.clone())));
        fields.push(("netlist_doc".to_string(), self.netlist.to_value()));
        json::to_string_pretty(&json::Value::Object(fields))
    }

    /// Parses a corpus JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] on malformed JSON, a missing field, or an
    /// invalid embedded netlist.
    pub fn from_json_str(text: &str) -> Result<CorpusCase, CorpusError> {
        let value = json::parse(text).map_err(|e| CorpusError::Malformed(e.to_string()))?;
        let str_field = |key: &str| -> Result<String, CorpusError> {
            value
                .get(key)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| CorpusError::MissingField(key.to_string()))
        };
        let name = str_field("case")?;
        let seed = match value.get("seed") {
            Some(json::Value::Number(n)) => *n as u64,
            Some(json::Value::String(s)) => s
                .parse::<u64>()
                .map_err(|e| CorpusError::Malformed(format!("seed {s:?}: {e}")))?,
            _ => return Err(CorpusError::MissingField("seed".to_string())),
        };
        let family = match value.get("family").and_then(json::Value::as_str) {
            Some(token) => Some(token.parse::<Family>().map_err(CorpusError::Malformed)?),
            None => None,
        };
        let lossless = matches!(value.get("lossless"), Some(json::Value::Bool(true)));
        let grid_v = value
            .get("grid")
            .ok_or_else(|| CorpusError::MissingField("grid".to_string()))?;
        let grid_num = |key: &str| -> Result<f64, CorpusError> {
            grid_v
                .get(key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| CorpusError::MissingField(format!("grid.{key}")))
        };
        let grid = WavelengthGrid::new(
            grid_num("start_um")?,
            grid_num("stop_um")?,
            grid_num("points")? as usize,
        );
        let note = str_field("note").unwrap_or_default();
        let netlist_v = value
            .get("netlist_doc")
            .ok_or_else(|| CorpusError::MissingField("netlist_doc".to_string()))?;
        let netlist =
            Netlist::from_value(netlist_v).map_err(|e| CorpusError::Malformed(e.to_string()))?;
        Ok(CorpusCase {
            name,
            seed,
            family,
            lossless,
            grid,
            note,
            netlist,
        })
    }
}

/// Error loading a corpus case.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// The document failed to parse or decode.
    Malformed(String),
    /// A required field is absent.
    MissingField(String),
    /// The corpus directory could not be read.
    Io(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Malformed(e) => write!(f, "malformed corpus case: {e}"),
            CorpusError::MissingField(field) => write!(f, "corpus case misses field '{field}'"),
            CorpusError::Io(e) => write!(f, "corpus directory error: {e}"),
        }
    }
}

impl Error for CorpusError {}

/// Loads every `*.json` case in a directory, sorted by file name for
/// deterministic replay order.
///
/// # Errors
///
/// Returns the first I/O or decode error, naming the offending file.
pub fn load_corpus_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, CorpusError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CorpusError::Io(format!("{dir:?}: {e}")))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CorpusError::Io(format!("{path:?}: {e}")))?;
        let case = CorpusCase::from_json_str(&text)
            .map_err(|e| CorpusError::Malformed(format!("{path:?}: {e}")))?;
        cases.push((path, case));
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CircuitStrategy;
    use proptest::strategy::Strategy;
    use proptest::TestRng;

    fn sample_case() -> CorpusCase {
        let gen = CircuitStrategy::default().generate(&mut TestRng::new(17));
        CorpusCase {
            name: "sample".to_string(),
            seed: 17,
            family: Some(gen.family),
            lossless: gen.lossless,
            grid: WavelengthGrid::new(1.51, 1.59, 5),
            note: "round-trip fixture".to_string(),
            netlist: gen.netlist,
        }
    }

    #[test]
    fn corpus_case_round_trips_through_json() {
        let case = sample_case();
        let text = case.to_json_string();
        let back = CorpusCase::from_json_str(&text).unwrap();
        assert_eq!(back, case);
        assert_eq!(back.netlist.content_hash(), case.netlist.content_hash());
    }

    #[test]
    fn huge_seeds_round_trip_exactly() {
        let mut case = sample_case();
        case.seed = u64::MAX - 1; // not representable as f64
        let back = CorpusCase::from_json_str(&case.to_json_string()).unwrap();
        assert_eq!(back.seed, case.seed);
        assert_eq!(back, case);
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = CorpusCase::from_json_str("{}").unwrap_err();
        assert!(matches!(err, CorpusError::MissingField(_)));
        let err = CorpusCase::from_json_str("not json").unwrap_err();
        assert!(matches!(err, CorpusError::Malformed(_)));
    }

    #[test]
    fn hand_written_minimal_case_parses() {
        let text = r#"{
          "case": "hand",
          "seed": 0,
          "grid": {"start_um": 1.55, "stop_um": 1.56, "points": 2},
          "netlist_doc": {
            "netlist": {
              "instances": {"wg": "waveguide"},
              "connections": {},
              "ports": {"I1": "wg,I1", "O1": "wg,O1"}
            },
            "models": {"waveguide": "waveguide"}
          }
        }"#;
        let case = CorpusCase::from_json_str(text).unwrap();
        assert_eq!(case.name, "hand");
        assert_eq!(case.family, None);
        assert!(!case.lossless);
        assert_eq!(case.grid.points, 2);
    }
}
