//! The end-to-end conformance sweep: generate → differential-check →
//! oracle-check → shrink failures.
//!
//! This is what the `conformance` bench binary and the CI gate drive: a
//! seeded batch of generated circuits, each swept through every
//! configured differential axis and every physics oracle, with failures
//! shrunk to minimal replayable [`CorpusCase`]s.

use crate::corpus::CorpusCase;
use crate::differential::{DiffAxis, DiffRunner, Disagreement};
use crate::generator::{CircuitStrategy, Family, GenCircuit, GeneratorConfig};
use crate::oracle::{check_circuit, OracleConfig, OracleViolation};
use crate::shrink::shrink_netlist;
use picbench_sim::{Backend, ModelRegistry, WavelengthGrid};
use proptest::strategy::Strategy;
use proptest::TestRng;
use std::fmt;

/// Configuration of one conformance sweep.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Number of circuits to generate and check.
    pub cases: usize,
    /// Master seed: the whole sweep is a pure function of it.
    pub seed: u64,
    /// Generator distribution knobs.
    pub generator: GeneratorConfig,
    /// Differential axes to sweep.
    pub axes: Vec<DiffAxis>,
    /// Oracle tolerances and probes.
    pub oracle: OracleConfig,
    /// Sweep grid of the differential comparisons.
    pub grid: WavelengthGrid,
    /// Backends the oracles probe (the differential axes always compare
    /// both regardless).
    pub oracle_backends: Vec<Backend>,
    /// Whether failures are shrunk before reporting (disable for a
    /// faster fail-fast sweep).
    pub shrink: bool,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            cases: 64,
            seed: 20_250_205,
            generator: GeneratorConfig::default(),
            axes: DiffAxis::ALL.to_vec(),
            oracle: OracleConfig::default(),
            grid: WavelengthGrid::new(1.51, 1.59, 7),
            oracle_backends: Backend::ALL.to_vec(),
            shrink: true,
        }
    }
}

/// Why one generated case failed conformance.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// Two configuration paths disagreed.
    Differential(Disagreement),
    /// A physical invariant was violated.
    Oracle {
        /// Backend on which the oracle fired.
        backend: Backend,
        /// All violations found on that backend.
        violations: Vec<OracleViolation>,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Differential(d) => write!(f, "differential: {d}"),
            FailureKind::Oracle {
                backend,
                violations,
            } => {
                write!(f, "oracle on {backend}:")?;
                for v in violations {
                    write!(f, " [{v}]")?;
                }
                Ok(())
            }
        }
    }
}

/// One failing case, shrunk and ready for the corpus.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Index of the case in the sweep (replay via `seed` + index).
    pub case_index: usize,
    /// The family the generator drew.
    pub family: Family,
    /// Whether the generator marked the circuit lossless — preserved so
    /// a replayed counterexample keeps exercising the unitarity oracle.
    pub lossless: bool,
    /// What failed.
    pub kind: FailureKind,
    /// The original generated netlist.
    pub original: picbench_netlist::Netlist,
    /// The minimized netlist that still fails (equals `original` when
    /// shrinking is disabled).
    pub shrunk: picbench_netlist::Netlist,
}

impl CaseFailure {
    /// Converts the failure into a replayable corpus case.
    pub fn to_corpus_case(&self, sweep_seed: u64, grid: WavelengthGrid) -> CorpusCase {
        CorpusCase {
            name: format!("shrunk-{}-case{}", self.family, self.case_index),
            seed: sweep_seed,
            family: Some(self.family),
            lossless: self.lossless,
            grid,
            note: format!("found by conformance sweep: {}", self.kind),
            netlist: self.shrunk.clone(),
        }
    }
}

/// The outcome of a conformance sweep.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Per-family case counts, in [`Family::ALL`] order.
    pub family_counts: Vec<(Family, usize)>,
    /// Axes that were swept.
    pub axes: Vec<DiffAxis>,
    /// All failures (empty = fully conformant).
    pub failures: Vec<CaseFailure>,
}

impl ConformanceReport {
    /// Whether every case agreed on every axis and satisfied every
    /// oracle.
    pub fn is_conformant(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a conformance sweep: `config.cases` seeded circuits through all
/// configured axes and oracles, shrinking any failure.
pub fn run_conformance(config: &ConformanceConfig) -> ConformanceReport {
    let registry = ModelRegistry::with_builtins();
    let strategy = CircuitStrategy::new(config.generator.clone());
    let runner = DiffRunner::new(config.grid).with_axes(config.axes.iter().copied());
    let mut rng = TestRng::new(config.seed);
    let mut family_counts: Vec<(Family, usize)> = Family::ALL.iter().map(|f| (*f, 0)).collect();
    let mut failures = Vec::new();

    for case_index in 0..config.cases {
        let gen = strategy.generate(&mut rng);
        if let Some(entry) = family_counts.iter_mut().find(|(f, _)| *f == gen.family) {
            entry.1 += 1;
        }
        if let Err(disagreement) = runner.check(&gen.netlist) {
            let shrunk = if config.shrink {
                runner.shrink(&gen.netlist, disagreement.axis)
            } else {
                gen.netlist.clone()
            };
            failures.push(CaseFailure {
                case_index,
                family: gen.family,
                lossless: gen.lossless,
                kind: FailureKind::Differential(disagreement),
                original: gen.netlist.clone(),
                shrunk,
            });
            continue;
        }
        for &backend in &config.oracle_backends {
            let violations = check_circuit(&gen, &registry, backend, &config.oracle);
            if violations.is_empty() {
                continue;
            }
            let shrunk = if config.shrink {
                let lossless = gen.lossless;
                let family = gen.family;
                shrink_netlist(&gen.netlist, &registry, |candidate| {
                    let candidate_gen = GenCircuit {
                        netlist: candidate.clone(),
                        family,
                        lossless,
                    };
                    !check_circuit(&candidate_gen, &registry, backend, &config.oracle).is_empty()
                })
            } else {
                gen.netlist.clone()
            };
            failures.push(CaseFailure {
                case_index,
                family: gen.family,
                lossless: gen.lossless,
                kind: FailureKind::Oracle {
                    backend,
                    violations,
                },
                original: gen.netlist.clone(),
                shrunk,
            });
            break;
        }
    }

    ConformanceReport {
        cases: config.cases,
        family_counts,
        axes: config.axes.clone(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_fully_conformant() {
        let config = ConformanceConfig {
            cases: 24,
            seed: 7,
            oracle_backends: Backend::ALL.to_vec(),
            ..ConformanceConfig::default()
        };
        let report = run_conformance(&config);
        assert_eq!(report.cases, 24);
        assert!(
            report.is_conformant(),
            "unexpected failures: {:#?}",
            report
                .failures
                .iter()
                .map(|f| (f.case_index, f.kind.to_string()))
                .collect::<Vec<_>>()
        );
        let generated: usize = report.family_counts.iter().map(|(_, n)| n).sum();
        assert_eq!(generated, 24);
    }

    #[test]
    fn sweeps_are_deterministic_per_seed() {
        let config = ConformanceConfig {
            cases: 8,
            seed: 99,
            ..ConformanceConfig::default()
        };
        let a = run_conformance(&config);
        let b = run_conformance(&config);
        assert_eq!(a.family_counts, b.family_counts);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
