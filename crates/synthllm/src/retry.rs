//! Provider resilience: retries with deterministic backoff.
//!
//! Real model APIs fail at the transport layer — rate limits, dropped
//! connections, timeouts. [`RetryProvider`] decorates any
//! [`ModelProvider`] with a [`RetryPolicy`]: responses classified as
//! *transient* failures ([`classify_transport`]) are retried up to a
//! budgeted number of attempts with seeded exponential backoff, *fatal*
//! failures (and exhausted budgets) degrade gracefully — the failure
//! response passes through unmodified, where the evaluation pipeline
//! classifies it as an ordinary syntax failure instead of crashing the
//! campaign.
//!
//! Everything is deterministic: backoff durations come from a seeded
//! xorshift jitter stream (per sample, so schedules are independent of
//! thread interleaving), and by default backoff only *consumes the
//! simulated per-sample budget* rather than sleeping — campaigns stay
//! bit-identical and fast. Set [`RetryPolicy::sleep`] for wall-clock
//! behaviour against real APIs.

use crate::provider::{
    FATAL_AUTH_RESPONSE, GARBLED_SUFFIX, RATE_LIMIT_RESPONSE, TIMEOUT_RESPONSE,
    TRANSIENT_IO_RESPONSE,
};
use crate::{LanguageModel, ModelProvider};
use picbench_problems::Problem;
use picbench_prompt::Conversation;
use std::sync::Arc;

/// How a failure response was classified at the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// HTTP 429 — retry after backoff.
    RateLimit,
    /// Connection-level IO failure — retry.
    TransientIo,
    /// Per-request timeout — retry.
    Timeout,
    /// Response truncated mid-stream — retry (the turn was consumed).
    Garbled,
    /// Authentication/authorization failure — retrying cannot help.
    Fatal,
}

impl TransportErrorKind {
    /// Whether a retry can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        !matches!(self, TransportErrorKind::Fatal)
    }

    /// Stable label for events and logs.
    pub fn label(&self) -> &'static str {
        match self {
            TransportErrorKind::RateLimit => "rate-limit",
            TransportErrorKind::TransientIo => "transient-io",
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::Garbled => "garbled",
            TransportErrorKind::Fatal => "fatal",
        }
    }
}

/// Classifies a raw response as a transport failure, or `None` for an
/// ordinary model response.
///
/// Matching is against the exact transport-failure shapes the injection
/// harness produces (and real HTTP clients surface): status-line
/// prefixes and the mid-stream truncation suffix — not free-text
/// keywords, so genuine model responses that merely *mention* timeouts
/// are never misclassified.
pub fn classify_transport(response: &str) -> Option<TransportErrorKind> {
    if response.starts_with("HTTP 429") || response == RATE_LIMIT_RESPONSE {
        return Some(TransportErrorKind::RateLimit);
    }
    if response.starts_with("HTTP 401") || response == FATAL_AUTH_RESPONSE {
        return Some(TransportErrorKind::Fatal);
    }
    if response == TRANSIENT_IO_RESPONSE {
        return Some(TransportErrorKind::TransientIo);
    }
    if response == TIMEOUT_RESPONSE {
        return Some(TransportErrorKind::Timeout);
    }
    if response.ends_with(GARBLED_SUFFIX) {
        return Some(TransportErrorKind::Garbled);
    }
    None
}

/// Retry behaviour of a [`RetryProvider`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per response, including the first (≥ 1).
    pub max_attempts: u32,
    /// First backoff duration; doubles per retry.
    pub base_backoff_ms: u64,
    /// Ceiling on a single backoff.
    pub max_backoff_ms: u64,
    /// Per-sample budget of cumulative backoff; once spent, further
    /// failures degrade instead of retrying.
    pub budget_ms: u64,
    /// Seed of the jitter stream (deterministic per sample).
    pub seed: u64,
    /// Whether backoff actually sleeps. Off by default: simulated
    /// backoff only consumes `budget_ms`, keeping campaigns fast and
    /// bit-identical. Enable against real APIs.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 2_000,
            budget_ms: 10_000,
            seed: crate::provider::PAPER_SEED,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// FNV-1a digest of every field — campaign fingerprints fold this in
    /// so a resumed run cannot silently continue under a different
    /// retry regime.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut write = |v: u64| {
            for b in v.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        };
        write(u64::from(self.max_attempts));
        write(self.base_backoff_ms);
        write(self.max_backoff_ms);
        write(self.budget_ms);
        write(self.seed);
        write(u64::from(self.sleep));
        hash
    }
}

/// One observable retry-layer decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryEvent {
    /// A transient failure was absorbed; the attempt will be retried
    /// after `backoff_ms`.
    Retried {
        /// Provider display name.
        provider: String,
        /// Problem id of the affected sample.
        problem: String,
        /// Sample index within the cell.
        sample: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// How the failure was classified.
        kind: TransportErrorKind,
        /// Backoff consumed before the retry.
        backoff_ms: u64,
    },
    /// Retries were exhausted (or the failure was fatal); the failure
    /// response degrades into the evaluation pipeline as a classified
    /// failure.
    Degraded {
        /// Provider display name.
        provider: String,
        /// Problem id of the affected sample.
        problem: String,
        /// Sample index within the cell.
        sample: u64,
        /// Attempts made, including the degrading one.
        attempts: u32,
        /// How the final failure was classified.
        kind: TransportErrorKind,
    },
}

/// Observer of [`RetryEvent`]s (campaigns bridge this into
/// `CampaignEvent`s).
pub type RetrySink = Arc<dyn Fn(&RetryEvent) + Send + Sync>;

fn xorshift64(mut x: u64) -> u64 {
    x = x.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn fnv_combine(parts: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

fn fnv_str(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// A decorating provider that retries transient transport failures per a
/// [`RetryPolicy`].
///
/// The decorated provider keeps its display name, so report columns are
/// unchanged — resilience is a property of the transport, not a
/// different model.
pub struct RetryProvider {
    inner: Arc<dyn ModelProvider>,
    policy: RetryPolicy,
    sink: Option<RetrySink>,
}

impl RetryProvider {
    /// Wraps a provider with a retry policy.
    pub fn new(inner: Arc<dyn ModelProvider>, policy: RetryPolicy) -> Self {
        RetryProvider {
            inner,
            policy,
            sink: None,
        }
    }

    /// Attaches an observer for retry/degrade decisions.
    pub fn with_sink(mut self, sink: RetrySink) -> Self {
        self.sink = Some(sink);
        self
    }
}

impl ModelProvider for RetryProvider {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn spawn(&self) -> Box<dyn LanguageModel> {
        self.spawn_seeded(crate::provider::PAPER_SEED)
    }

    fn spawn_seeded(&self, seed: u64) -> Box<dyn LanguageModel> {
        Box::new(RetryLlm {
            inner: self.inner.spawn_seeded(seed),
            policy: self.policy,
            sink: self.sink.clone(),
            spawn_seed: seed,
            problem: String::new(),
            sample: 0,
            budget_left_ms: self.policy.budget_ms,
            rng: 0,
        })
    }
}

struct RetryLlm {
    inner: Box<dyn LanguageModel>,
    policy: RetryPolicy,
    sink: Option<RetrySink>,
    spawn_seed: u64,
    problem: String,
    sample: u64,
    budget_left_ms: u64,
    rng: u64,
}

impl RetryLlm {
    fn emit(&self, event: RetryEvent) {
        if let Some(sink) = &self.sink {
            sink(&event);
        }
    }

    /// Deterministic backoff for the given 1-based failed attempt:
    /// exponential base doubling, capped, with ±25% seeded jitter.
    fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let base = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.policy.max_backoff_ms);
        self.rng = xorshift64(self.rng);
        let quarter = base / 4;
        if quarter == 0 {
            return base;
        }
        // base - 25% .. base + 25%, uniform over the jitter stream.
        base - quarter + self.rng % (2 * quarter + 1)
    }
}

impl LanguageModel for RetryLlm {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn begin_sample(&mut self, problem: &Problem, sample_index: u64) {
        self.problem = problem.id.clone();
        self.sample = sample_index;
        self.budget_left_ms = self.policy.budget_ms;
        // Jitter seeded per (policy, spawn, problem, sample): independent
        // of thread interleaving, stable across resumes.
        self.rng = xorshift64(fnv_combine(&[
            self.policy.seed,
            self.spawn_seed,
            fnv_str(&self.problem),
            sample_index,
        ]));
        self.inner.begin_sample(problem, sample_index);
    }

    fn respond(&mut self, conversation: &Conversation) -> String {
        let mut attempt = 1u32;
        loop {
            let response = self.inner.respond(conversation);
            let Some(kind) = classify_transport(&response) else {
                return response;
            };
            let out_of_attempts = attempt >= self.policy.max_attempts.max(1);
            if !kind.is_transient() || out_of_attempts {
                self.emit(RetryEvent::Degraded {
                    provider: self.inner.name().to_string(),
                    problem: self.problem.clone(),
                    sample: self.sample,
                    attempts: attempt,
                    kind,
                });
                return response;
            }
            let backoff = self.backoff_ms(attempt);
            if backoff > self.budget_left_ms {
                // Budget exhausted: degrade rather than stall the sample.
                self.emit(RetryEvent::Degraded {
                    provider: self.inner.name().to_string(),
                    problem: self.problem.clone(),
                    sample: self.sample,
                    attempts: attempt,
                    kind,
                });
                return response;
            }
            self.budget_left_ms -= backoff;
            if self.policy.sleep {
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            self.emit(RetryEvent::Retried {
                provider: self.inner.name().to_string(),
                problem: self.problem.clone(),
                sample: self.sample,
                attempt,
                kind,
                backoff_ms: backoff,
            });
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{FailureKind, FlakyProvider, FlakySchedule, ReplayLlm};
    use picbench_prompt::Role;
    use std::sync::Mutex;

    fn mzi_ps() -> Problem {
        picbench_problems::find("mzi-ps").unwrap()
    }

    fn conversation(problem: &Problem) -> Conversation {
        let mut c = Conversation::with_system("You are a PIC designer.");
        c.push(Role::User, problem.description.clone());
        c
    }

    fn flaky(kinds: Vec<FailureKind>, period: usize) -> Arc<dyn ModelProvider> {
        let problem = mzi_ps();
        let inner = Arc::new(ReplayLlm::new("steady").with_response(problem.id.clone(), 0, "ok"));
        Arc::new(FlakyProvider::with_schedule(
            inner,
            FlakySchedule::Periodic { period, kinds },
        ))
    }

    fn collect_events() -> (RetrySink, Arc<Mutex<Vec<RetryEvent>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink_events = Arc::clone(&events);
        let sink: RetrySink = Arc::new(move |event: &RetryEvent| {
            sink_events.lock().unwrap().push(event.clone());
        });
        (sink, events)
    }

    #[test]
    fn classification_covers_every_injected_shape() {
        assert_eq!(
            classify_transport(RATE_LIMIT_RESPONSE),
            Some(TransportErrorKind::RateLimit)
        );
        assert_eq!(
            classify_transport(TRANSIENT_IO_RESPONSE),
            Some(TransportErrorKind::TransientIo)
        );
        assert_eq!(
            classify_transport(TIMEOUT_RESPONSE),
            Some(TransportErrorKind::Timeout)
        );
        assert_eq!(
            classify_transport(FATAL_AUTH_RESPONSE),
            Some(TransportErrorKind::Fatal)
        );
        assert_eq!(
            classify_transport(&format!("{{\"partial\": {GARBLED_SUFFIX}")),
            Some(TransportErrorKind::Garbled)
        );
        assert_eq!(classify_transport("<result>{}</result>"), None);
        assert_eq!(
            classify_transport("the request timed out last time, so here is a design"),
            None,
            "free-text mentions must not classify"
        );
    }

    #[test]
    fn transient_failures_are_retried_through_to_the_real_response() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        // Period 1 with only the *first* attempt of each respond failing
        // is impossible periodic; use period 2 so attempt 1 fails, the
        // retry (attempt 2 = response 2... actually response counter is
        // per instance) — simpler: every odd response fails.
        let provider = RetryProvider::new(
            flaky(vec![FailureKind::TransientIo], 2),
            RetryPolicy::default(),
        );
        let mut llm = provider.spawn_seeded(7);
        llm.begin_sample(&problem, 0);
        // Response 1 passes through, response 2 fails then response 3
        // succeeds inside the retry loop.
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), "ok", "transient failure was absorbed");
    }

    #[test]
    fn retry_events_report_attempts_and_backoff() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let (sink, events) = collect_events();
        let provider = RetryProvider::new(
            flaky(vec![FailureKind::RateLimit], 2),
            RetryPolicy::default(),
        )
        .with_sink(sink);
        let mut llm = provider.spawn_seeded(7);
        llm.begin_sample(&problem, 0);
        llm.respond(&conv);
        llm.respond(&conv);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 1);
        match &events[0] {
            RetryEvent::Retried {
                provider,
                problem: p,
                attempt,
                kind,
                backoff_ms,
                ..
            } => {
                assert_eq!(provider, "steady [flaky]");
                assert_eq!(p, &problem.id);
                assert_eq!(*attempt, 1);
                assert_eq!(*kind, TransportErrorKind::RateLimit);
                assert!(*backoff_ms >= 75 && *backoff_ms <= 125, "{backoff_ms}");
            }
            other => panic!("expected Retried, got {other:?}"),
        }
    }

    #[test]
    fn fatal_failures_degrade_immediately() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let (sink, events) = collect_events();
        let provider =
            RetryProvider::new(flaky(vec![FailureKind::Fatal], 1), RetryPolicy::default())
                .with_sink(sink);
        let mut llm = provider.spawn_seeded(7);
        llm.begin_sample(&problem, 0);
        assert_eq!(llm.respond(&conv), FATAL_AUTH_RESPONSE);
        let events = events.lock().unwrap();
        assert!(matches!(
            events[0],
            RetryEvent::Degraded {
                attempts: 1,
                kind: TransportErrorKind::Fatal,
                ..
            }
        ));
    }

    #[test]
    fn persistent_transient_failures_degrade_after_max_attempts() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let (sink, events) = collect_events();
        let provider = RetryProvider::new(
            flaky(vec![FailureKind::Timeout], 1),
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        )
        .with_sink(sink);
        let mut llm = provider.spawn_seeded(7);
        llm.begin_sample(&problem, 0);
        assert_eq!(llm.respond(&conv), TIMEOUT_RESPONSE, "degrades gracefully");
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 3, "{events:?}");
        assert!(matches!(events[0], RetryEvent::Retried { attempt: 1, .. }));
        assert!(matches!(events[1], RetryEvent::Retried { attempt: 2, .. }));
        assert!(matches!(
            events[2],
            RetryEvent::Degraded {
                attempts: 3,
                kind: TransportErrorKind::Timeout,
                ..
            }
        ));
    }

    #[test]
    fn exhausted_budget_degrades_without_sleeping() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let (sink, events) = collect_events();
        let provider = RetryProvider::new(
            flaky(vec![FailureKind::RateLimit], 1),
            RetryPolicy {
                max_attempts: 100,
                budget_ms: 150,
                ..RetryPolicy::default()
            },
        )
        .with_sink(sink);
        let mut llm = provider.spawn_seeded(7);
        llm.begin_sample(&problem, 0);
        assert_eq!(llm.respond(&conv), RATE_LIMIT_RESPONSE);
        let events = events.lock().unwrap();
        assert!(
            events.len() < 5,
            "a 150ms budget at ~100ms/backoff allows 1-2 retries, got {events:?}"
        );
        assert!(matches!(events.last(), Some(RetryEvent::Degraded { .. })));
        // And the budget resets per sample.
        drop(events);
        llm.begin_sample(&problem, 1);
        assert_eq!(llm.respond(&conv), RATE_LIMIT_RESPONSE);
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_sample() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let run = || {
            let (sink, events) = collect_events();
            let provider = RetryProvider::new(
                flaky(vec![FailureKind::Timeout], 1),
                RetryPolicy {
                    max_attempts: 4,
                    ..RetryPolicy::default()
                },
            )
            .with_sink(sink);
            let mut llm = provider.spawn_seeded(7);
            llm.begin_sample(&problem, 0);
            llm.respond(&conv);
            let events = events.lock().unwrap().clone();
            events
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn policy_digest_distinguishes_policies() {
        let a = RetryPolicy::default();
        let b = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        assert_eq!(a.digest(), RetryPolicy::default().digest());
        assert_ne!(a.digest(), b.digest());
    }
}
