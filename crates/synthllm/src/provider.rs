//! Pluggable model providers — the campaign-facing factory seam.
//!
//! A campaign fans work out across threads, and every worker needs its
//! own [`LanguageModel`] instance (models are stateful: per-sample RNG,
//! repair state, transcript cursors). [`ModelProvider`] is the
//! object-safe factory behind that fan-out: anything `Send + Sync` that
//! can `spawn()` fresh model instances can drive a campaign — the
//! calibrated synthetic profiles, recorded-transcript replays, failure
//! injecting decorators, or a real API client.
//!
//! Three implementations ship here:
//!
//! * [`ModelProfile`] — spawns [`SyntheticLlm`]s; the paper's five
//!   calibrated models;
//! * [`ReplayLlm`] — serves recorded transcripts verbatim, giving
//!   deterministic regression fixtures for runs against real APIs;
//! * [`FlakyProvider`] — decorates any provider with deterministic
//!   rate-limit/outage responses for resilience testing.

use crate::synthetic::SyntheticLlm;
use crate::{LanguageModel, ModelProfile};
use picbench_problems::Problem;
use picbench_prompt::Conversation;
use std::collections::HashMap;
use std::sync::Arc;

/// The default campaign seed (the paper's arXiv date) used when a
/// profile is spawned without an explicit seed.
pub const PAPER_SEED: u64 = 20_250_205;

/// An object-safe factory of per-worker [`LanguageModel`] instances.
///
/// Campaigns hold `Arc<dyn ModelProvider>`s and spawn one model per
/// evaluation cell; implementations must therefore be `Send + Sync`,
/// while the spawned models only need `Send`.
pub trait ModelProvider: Send + Sync {
    /// Display name used in reports (one column per provider).
    fn name(&self) -> &str;

    /// Creates a fresh model instance with default seeding.
    fn spawn(&self) -> Box<dyn LanguageModel>;

    /// Creates a fresh model instance for a specific campaign seed.
    ///
    /// Stochastic providers should honour the seed so campaigns stay
    /// bit-identical for a given configuration; deterministic providers
    /// (replays, API clients) can ignore it — the default forwards to
    /// [`ModelProvider::spawn`].
    fn spawn_seeded(&self, seed: u64) -> Box<dyn LanguageModel> {
        let _ = seed;
        self.spawn()
    }
}

impl ModelProvider for ModelProfile {
    fn name(&self) -> &str {
        self.name
    }

    fn spawn(&self) -> Box<dyn LanguageModel> {
        self.spawn_seeded(PAPER_SEED)
    }

    fn spawn_seeded(&self, seed: u64) -> Box<dyn LanguageModel> {
        Box::new(SyntheticLlm::new(self.clone(), seed))
    }
}

/// Response served when a replay has no transcript for the requested
/// (problem, sample) pair — deliberately unparseable, so the gap shows
/// up as a classified syntax failure instead of a silent pass.
pub const MISSING_TRANSCRIPT: &str =
    "[replay error: no recorded transcript for this problem/sample pair]";

/// Response served when [`ReplayLlm::respond`] is called before any
/// [`LanguageModel::begin_sample`] — a driver bug, reported as a clean
/// unparseable error (and therefore a classified syntax failure) rather
/// than a panic that would take down a whole campaign worker.
pub const NO_ACTIVE_SAMPLE: &str =
    "[replay error: respond called before begin_sample selected a transcript]";

#[derive(Debug, Default)]
struct ReplayBook {
    /// Problem id → sample index → responses in conversation order.
    /// (Nested rather than tuple-keyed so the per-respond lookup borrows
    /// the cursor's id instead of cloning it.)
    transcripts: HashMap<String, HashMap<u64, Vec<String>>>,
}

/// A language model (and provider) that replays recorded transcripts.
///
/// Record the raw responses of a real-API run once, then re-evaluate them
/// deterministically forever — the regression-fixture path for runs the
/// synthetic profiles cannot cover. Within a sample, responses are served
/// in recording order; if the evaluation asks for more turns than were
/// recorded, the last response is repeated (models that converged stay
/// converged), and samples with no transcript at all answer with an
/// unparseable error marker.
#[derive(Debug)]
pub struct ReplayLlm {
    name: String,
    book: Arc<ReplayBook>,
    /// Active `(problem id, sample index, next response index)`.
    cursor: Option<(String, u64, usize)>,
}

impl ReplayLlm {
    /// Creates an empty replay under the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        ReplayLlm {
            name: name.into(),
            book: Arc::new(ReplayBook::default()),
            cursor: None,
        }
    }

    /// Appends one recorded response to a `(problem, sample)` transcript.
    ///
    /// Only possible before the replay is shared (spawned from); builder
    /// style, so fixtures read as data.
    pub fn with_response(
        mut self,
        problem_id: impl Into<String>,
        sample_index: u64,
        response: impl Into<String>,
    ) -> Self {
        let book = Arc::get_mut(&mut self.book)
            .expect("with_response must be called before the replay is spawned");
        book.transcripts
            .entry(problem_id.into())
            .or_default()
            .entry(sample_index)
            .or_default()
            .push(response.into());
        self
    }

    /// Number of recorded `(problem, sample)` transcripts.
    pub fn transcript_count(&self) -> usize {
        self.book.transcripts.values().map(HashMap::len).sum()
    }
}

impl LanguageModel for ReplayLlm {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin_sample(&mut self, problem: &Problem, sample_index: u64) {
        self.cursor = Some((problem.id.clone(), sample_index, 0));
    }

    fn respond(&mut self, _conversation: &Conversation) -> String {
        let Some((problem_id, sample, next)) = self.cursor.as_mut() else {
            return NO_ACTIVE_SAMPLE.to_string();
        };
        match self
            .book
            .transcripts
            .get(problem_id.as_str())
            .and_then(|samples| samples.get(sample))
            .filter(|responses| !responses.is_empty())
        {
            Some(responses) => {
                let index = (*next).min(responses.len() - 1);
                *next += 1;
                responses[index].clone()
            }
            None => MISSING_TRANSCRIPT.to_string(),
        }
    }
}

impl ModelProvider for ReplayLlm {
    fn name(&self) -> &str {
        &self.name
    }

    fn spawn(&self) -> Box<dyn LanguageModel> {
        Box::new(ReplayLlm {
            name: self.name.clone(),
            book: Arc::clone(&self.book),
            cursor: None,
        })
    }
}

/// Response injected by [`FlakyProvider`] in place of a real one — shaped
/// like a transport-layer failure, and unparseable by design.
pub const RATE_LIMIT_RESPONSE: &str =
    "HTTP 429 Too Many Requests: rate limit exceeded, retry after 30s";

/// Injected transient network failure (connection-level, retryable).
pub const TRANSIENT_IO_RESPONSE: &str =
    "connection reset by peer: transient network error while reading response";

/// Injected per-request timeout (retryable).
pub const TIMEOUT_RESPONSE: &str =
    "request timed out after 600 seconds waiting for completion tokens";

/// Injected fatal transport failure — retrying cannot help.
pub const FATAL_AUTH_RESPONSE: &str = "HTTP 401 Unauthorized: invalid API key";

/// Suffix appended to a garbled (truncated mid-stream) response.
pub const GARBLED_SUFFIX: &str = "[connection closed mid-stream]";

/// The kinds of transport failure [`FlakyProvider`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An HTTP 429 — the response is replaced wholesale (retryable).
    RateLimit,
    /// A connection-level IO error (retryable).
    TransientIo,
    /// A per-request timeout (retryable).
    Timeout,
    /// The real response truncated mid-stream with [`GARBLED_SUFFIX`]
    /// appended (retryable — but the underlying turn *was* consumed).
    Garbled,
    /// An authentication failure — retrying cannot help.
    Fatal,
}

/// When (and how) a [`FlakyProvider`] injects failures. Both schedules
/// are fully deterministic, so campaigns over flaky providers still
/// produce bit-identical reports for every thread count.
#[derive(Debug, Clone)]
pub enum FlakySchedule {
    /// Every `period`-th response of each spawned instance fails
    /// (1-based; `0` disables injection), cycling through `kinds`.
    Periodic {
        /// The failure period (`0` = never fail).
        period: usize,
        /// Failure kinds, applied round-robin over successive failures.
        kinds: Vec<FailureKind>,
    },
    /// Each response independently fails with probability
    /// `rate_percent`/100, drawn from a seeded xorshift stream (combined
    /// with the spawn seed, so distinct campaign cells see distinct but
    /// reproducible schedules).
    Seeded {
        /// Stream seed.
        seed: u64,
        /// Failure probability in percent (clamped to 100).
        rate_percent: u8,
        /// Failure kinds, selected deterministically per failure.
        kinds: Vec<FailureKind>,
    },
}

impl FlakySchedule {
    fn kinds(&self) -> &[FailureKind] {
        match self {
            FlakySchedule::Periodic { kinds, .. } | FlakySchedule::Seeded { kinds, .. } => kinds,
        }
    }
}

fn xorshift64(mut x: u64) -> u64 {
    x = x.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A decorating provider that deterministically injects transport
/// failures — the resilience-testing harness for campaign plumbing.
///
/// The [`FlakySchedule`] decides when a response is replaced (or, for
/// [`FailureKind::Garbled`], truncated) and with what; all other calls
/// pass through to the wrapped provider's model. Schedules are
/// counter- or seed-based and therefore fully deterministic: a campaign
/// over a flaky provider still produces bit-identical reports for every
/// thread count, while exercising exactly the failure paths a real API
/// outage would.
pub struct FlakyProvider {
    inner: Arc<dyn ModelProvider>,
    name: String,
    schedule: FlakySchedule,
}

impl FlakyProvider {
    /// Wraps a provider, failing every `failure_period`-th response of
    /// each spawned instance with a rate-limit error (`0` disables
    /// injection entirely).
    pub fn new(inner: Arc<dyn ModelProvider>, failure_period: usize) -> Self {
        FlakyProvider::with_schedule(
            inner,
            FlakySchedule::Periodic {
                period: failure_period,
                kinds: vec![FailureKind::RateLimit],
            },
        )
    }

    /// Wraps a provider with an explicit failure schedule.
    pub fn with_schedule(inner: Arc<dyn ModelProvider>, schedule: FlakySchedule) -> Self {
        let name = format!("{} [flaky]", inner.name());
        FlakyProvider {
            inner,
            name,
            schedule,
        }
    }

    /// Overrides the display name (defaults to `"<inner> [flaky]"`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn spawn_with(&self, inner: Box<dyn LanguageModel>, seed: u64) -> Box<dyn LanguageModel> {
        let rng = match &self.schedule {
            FlakySchedule::Periodic { .. } => 0,
            FlakySchedule::Seeded { seed: s, .. } => xorshift64(s ^ seed.rotate_left(32)),
        };
        Box::new(FlakyLlm {
            name: self.name.clone(),
            inner,
            schedule: self.schedule.clone(),
            responses: 0,
            failures: 0,
            rng,
        })
    }
}

struct FlakyLlm {
    name: String,
    inner: Box<dyn LanguageModel>,
    schedule: FlakySchedule,
    responses: usize,
    failures: usize,
    rng: u64,
}

impl FlakyLlm {
    /// The failure to inject for this response, if any.
    fn next_failure(&mut self) -> Option<FailureKind> {
        self.responses += 1;
        let kinds = self.schedule.kinds();
        if kinds.is_empty() {
            return None;
        }
        let fire = match &self.schedule {
            FlakySchedule::Periodic { period, .. } => {
                *period > 0 && self.responses.is_multiple_of(*period)
            }
            FlakySchedule::Seeded { rate_percent, .. } => {
                self.rng = xorshift64(self.rng);
                self.rng % 100 < u64::from((*rate_percent).min(100))
            }
        };
        if !fire {
            return None;
        }
        let kind = kinds[self.failures % kinds.len()];
        self.failures += 1;
        Some(kind)
    }
}

impl LanguageModel for FlakyLlm {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin_sample(&mut self, problem: &Problem, sample_index: u64) {
        self.inner.begin_sample(problem, sample_index);
    }

    fn respond(&mut self, conversation: &Conversation) -> String {
        match self.next_failure() {
            None => self.inner.respond(conversation),
            Some(FailureKind::RateLimit) => RATE_LIMIT_RESPONSE.to_string(),
            Some(FailureKind::TransientIo) => TRANSIENT_IO_RESPONSE.to_string(),
            Some(FailureKind::Timeout) => TIMEOUT_RESPONSE.to_string(),
            Some(FailureKind::Fatal) => FATAL_AUTH_RESPONSE.to_string(),
            Some(FailureKind::Garbled) => {
                // Unlike the whole-response replacements above, a garbled
                // failure *consumes* the underlying turn: the real
                // response streamed halfway and died, exactly like a
                // dropped connection.
                let full = self.inner.respond(conversation);
                let cut = full
                    .char_indices()
                    .map(|(i, _)| i)
                    .take_while(|&i| i <= full.len() / 2)
                    .last()
                    .unwrap_or(0);
                format!("{}{}", &full[..cut], GARBLED_SUFFIX)
            }
        }
    }
}

impl ModelProvider for FlakyProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn spawn(&self) -> Box<dyn LanguageModel> {
        self.spawn_with(self.inner.spawn(), PAPER_SEED)
    }

    fn spawn_seeded(&self, seed: u64) -> Box<dyn LanguageModel> {
        self.spawn_with(self.inner.spawn_seeded(seed), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_prompt::Role;

    fn mzi_ps() -> Problem {
        picbench_problems::find("mzi-ps").unwrap()
    }

    fn conversation(problem: &Problem) -> Conversation {
        let mut c = Conversation::with_system("You are a PIC designer.");
        c.push(Role::User, problem.description.clone());
        c
    }

    #[test]
    fn profile_provider_spawns_seed_faithful_synthetics() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let provider: Arc<dyn ModelProvider> = Arc::new(ModelProfile::gpt4());
        assert_eq!(provider.name(), "GPT-4");
        let mut spawned = provider.spawn_seeded(7);
        let mut direct = SyntheticLlm::new(ModelProfile::gpt4(), 7);
        spawned.begin_sample(&problem, 0);
        direct.begin_sample(&problem, 0);
        assert_eq!(spawned.respond(&conv), direct.respond(&conv));
    }

    #[test]
    fn replay_serves_transcripts_in_order_then_repeats() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let replay = ReplayLlm::new("Recorded GPT-4")
            .with_response(problem.id.clone(), 0, "first")
            .with_response(problem.id.clone(), 0, "second");
        let mut llm = replay.spawn();
        llm.begin_sample(&problem, 0);
        assert_eq!(llm.respond(&conv), "first");
        assert_eq!(llm.respond(&conv), "second");
        assert_eq!(llm.respond(&conv), "second", "last response repeats");
        // A different sample has no transcript: unparseable marker.
        llm.begin_sample(&problem, 1);
        assert!(llm.respond(&conv).contains("no recorded transcript"));
    }

    #[test]
    fn replay_spawns_share_the_book_but_not_cursors() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let replay = ReplayLlm::new("replay").with_response(problem.id.clone(), 0, "only");
        let mut a = replay.spawn();
        let mut b = replay.spawn();
        a.begin_sample(&problem, 0);
        b.begin_sample(&problem, 0);
        assert_eq!(a.respond(&conv), "only");
        assert_eq!(b.respond(&conv), "only");
    }

    #[test]
    fn flaky_provider_fails_on_schedule_and_recovers() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let inner = Arc::new(ReplayLlm::new("steady").with_response(problem.id.clone(), 0, "ok"));
        let flaky = FlakyProvider::new(inner, 2);
        assert_eq!(flaky.name(), "steady [flaky]");
        let mut llm = flaky.spawn();
        llm.begin_sample(&problem, 0);
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), RATE_LIMIT_RESPONSE);
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), RATE_LIMIT_RESPONSE);
    }

    #[test]
    fn flaky_schedule_cycles_failure_kinds() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let inner = Arc::new(ReplayLlm::new("steady").with_response(problem.id.clone(), 0, "ok"));
        let flaky = FlakyProvider::with_schedule(
            inner,
            FlakySchedule::Periodic {
                period: 2,
                kinds: vec![
                    FailureKind::TransientIo,
                    FailureKind::Timeout,
                    FailureKind::Fatal,
                ],
            },
        );
        let mut llm = flaky.spawn();
        llm.begin_sample(&problem, 0);
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), TRANSIENT_IO_RESPONSE);
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), TIMEOUT_RESPONSE);
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), FATAL_AUTH_RESPONSE);
        assert_eq!(llm.respond(&conv), "ok");
        assert_eq!(llm.respond(&conv), TRANSIENT_IO_RESPONSE, "kinds cycle");
    }

    #[test]
    fn garbled_failure_truncates_the_real_response() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let inner = Arc::new(ReplayLlm::new("steady").with_response(
            problem.id.clone(),
            0,
            "a-long-real-response",
        ));
        let flaky = FlakyProvider::with_schedule(
            inner,
            FlakySchedule::Periodic {
                period: 1,
                kinds: vec![FailureKind::Garbled],
            },
        );
        let mut llm = flaky.spawn();
        llm.begin_sample(&problem, 0);
        let garbled = llm.respond(&conv);
        assert!(garbled.ends_with(GARBLED_SUFFIX), "{garbled}");
        assert!(garbled.starts_with("a-long-rea"), "{garbled}");
        assert!(!garbled.contains("a-long-real-response"));
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_rate_bounded() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let schedule = FlakySchedule::Seeded {
            seed: 99,
            rate_percent: 30,
            kinds: vec![FailureKind::RateLimit, FailureKind::Timeout],
        };
        let inner = Arc::new(ReplayLlm::new("steady").with_response(problem.id.clone(), 0, "ok"));
        let flaky = FlakyProvider::with_schedule(inner, schedule);
        let run = |seed: u64| {
            let mut llm = flaky.spawn_seeded(seed);
            llm.begin_sample(&problem, 0);
            (0..50).map(|_| llm.respond(&conv)).collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same spawn seed, same schedule");
        let c = run(8);
        assert_ne!(a, c, "different spawn seeds see different schedules");
        let failures = a.iter().filter(|r| r.as_str() != "ok").count();
        assert!(failures > 0, "30% over 50 responses should fire");
        assert!(
            failures < 30,
            "and stay roughly rate-bounded, got {failures}"
        );
    }

    #[test]
    fn flaky_period_zero_never_fails() {
        let problem = mzi_ps();
        let conv = conversation(&problem);
        let inner = Arc::new(ReplayLlm::new("steady").with_response(problem.id.clone(), 0, "ok"));
        let flaky = FlakyProvider::new(inner, 0).with_name("renamed");
        assert_eq!(ModelProvider::name(&flaky), "renamed");
        let mut llm = flaky.spawn();
        llm.begin_sample(&problem, 0);
        for _ in 0..5 {
            assert_eq!(llm.respond(&conv), "ok");
        }
    }
}
