//! The synthetic language model.
//!
//! [`SyntheticLlm`] plays one of the five paper models: on the first query
//! of a sample it emits the golden design perturbed by mistakes drawn
//! from its profile; on each feedback turn it repairs the reported errors
//! with its profile's repair probability (and occasionally relapses).
//! The evaluation pipeline never sees any of this — only the rendered
//! chat responses, exactly as the paper's harness sees API output.

use crate::corrupt::{sample_functional_corruption, sample_syntax_corruption, Corruption};
use crate::profile::ModelProfile;
use crate::LanguageModel;
use picbench_netlist::{FailureType, Netlist};
use picbench_problems::Problem;
use picbench_prompt::{Conversation, Role, FUNCTIONAL_FEEDBACK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Marker used to recognize a syntax-feedback turn (a stable fragment of
/// the crafted correction request).
const CORRECTION_MARKER: &str = "fixing the errors in previous code";

fn mix_seed(parts: &[&str], numbers: &[u64]) -> u64 {
    // FNV-1a over the textual parts and numbers: deterministic, stable
    // across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for n in numbers {
        for b in n.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Per-sample generation state.
#[derive(Debug)]
struct SampleState {
    golden: Arc<Netlist>,
    /// The golden design pre-rendered to JSON — the response body of
    /// every corruption-free attempt, shared across samples.
    golden_json: Arc<String>,
    /// Effective syntax difficulty: √instances/2 times the persistent
    /// per-(model, problem) knowledge multiplier.
    difficulty: f64,
    /// Effective functional difficulty.
    functional_difficulty: f64,
    rng: StdRng,
    corruptions: Vec<Corruption>,
    problem_name: String,
    /// Feedback rounds consumed so far in this sample.
    feedback_rounds: usize,
}

/// A standard normal draw from a dedicated seeded stream — used for the
/// persistent per-(model, problem) knowledge multipliers.
fn seeded_normal(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A stochastic stand-in for one commercial LLM, driven by a calibrated
/// [`ModelProfile`].
#[derive(Debug)]
pub struct SyntheticLlm {
    profile: ModelProfile,
    global_seed: u64,
    state: Option<SampleState>,
    /// Per-problem golden design and its rendered JSON, shared across
    /// samples (begin_sample would otherwise clone and re-serialize the
    /// golden for every sample — pure overhead in large campaigns).
    problem_cache: HashMap<String, (Arc<Netlist>, Arc<String>)>,
}

impl SyntheticLlm {
    /// Creates a synthetic model from a profile and a campaign seed.
    pub fn new(profile: ModelProfile, global_seed: u64) -> Self {
        SyntheticLlm {
            profile,
            global_seed,
            state: None,
            problem_cache: HashMap::new(),
        }
    }

    /// The behavioural profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The mistakes currently active (testing/diagnostics).
    pub fn active_corruptions(&self) -> &[Corruption] {
        self.state.as_ref().map_or(&[], |s| &s.corruptions)
    }

    /// Which Table II restrictions are actually present in the system
    /// prompt. A real model only benefits from guidance it was shown;
    /// detecting the texts individually is what makes the leave-one-out
    /// restriction ablation meaningful.
    fn restricted_categories(conversation: &Conversation) -> Vec<FailureType> {
        let Some(system) = conversation.last_from(Role::System) else {
            return Vec::new();
        };
        if !system.content.contains("Restrictions (strictly follow") {
            return Vec::new();
        }
        FailureType::ALL
            .into_iter()
            .filter(|f| !f.restriction().is_empty() && system.content.contains(f.restriction()))
            .collect()
    }

    fn initial_generation(&mut self, restricted: &[FailureType]) {
        let state = self.state.as_mut().expect("begin_sample not called");
        state.corruptions.clear();
        for category in FailureType::ALL {
            let p = self.profile.category_rate(
                category,
                state.difficulty,
                restricted.contains(&category),
            );
            if state.rng.gen_bool(p) {
                if let Some(c) = sample_syntax_corruption(&state.golden, category, &mut state.rng) {
                    state.corruptions.push(c);
                }
            }
        }
        let pf = self
            .profile
            .functional_rate(state.functional_difficulty, !restricted.is_empty());
        if state.rng.gen_bool(pf) {
            if let Some(c) = sample_functional_corruption(&state.golden, &mut state.rng) {
                state.corruptions.push(c);
            }
        }
    }

    fn repair_syntax(&mut self, feedback: &str) {
        let reported: Vec<FailureType> = FailureType::ALL
            .into_iter()
            .filter(|f| feedback.contains(&format!("{} error", f.label())))
            .collect();
        let relapse_rate = self.profile.relapse_rate;
        let state = self.state.as_mut().expect("begin_sample not called");
        // Errors that survive a rewrite are sticky: the first correction
        // round fixes the easy majority, later rounds grind on the rest.
        let repair_rate = (self.profile.repair_rate
            * self.profile.repair_decay.powi(state.feedback_rounds as i32))
        .min(0.97);
        state.feedback_rounds += 1;
        let mut kept = Vec::with_capacity(state.corruptions.len());
        for c in state.corruptions.drain(..) {
            let is_reported = c
                .category()
                .map(|cat| reported.contains(&cat))
                .unwrap_or(false);
            if is_reported && state.rng.gen_bool(repair_rate) {
                continue; // fixed
            }
            // The correction request demands a full rewrite ("write entire
            // code by fixing the errors"), so mistakes the tool has not
            // reported yet — e.g. structural errors masked by a parse
            // failure — also get fixed incidentally, at a reduced rate.
            if !is_reported && !c.is_functional() && state.rng.gen_bool(repair_rate * 0.6) {
                continue; // incidentally fixed during the rewrite
            }
            kept.push(c);
        }
        state.corruptions = kept;
        // Hallucination relapse: occasionally a "fix" breaks something new.
        if state.rng.gen_bool(relapse_rate) {
            let idx = state.rng.gen_range(0..FailureType::ALL.len());
            let category = FailureType::ALL[idx];
            if let Some(c) = sample_syntax_corruption(&state.golden, category, &mut state.rng) {
                state.corruptions.push(c);
            }
        }
    }

    fn repair_functional(&mut self) {
        let repair_rate = self.profile.functional_repair_rate;
        let relapse_rate = self.profile.relapse_rate;
        let state = self.state.as_mut().expect("begin_sample not called");
        state.feedback_rounds += 1;
        let mut kept = Vec::with_capacity(state.corruptions.len());
        for c in state.corruptions.drain(..) {
            if c.is_functional() && state.rng.gen_bool(repair_rate) {
                continue;
            }
            kept.push(c);
        }
        state.corruptions = kept;
        // The vague functional hint can also provoke a fresh syntax slip.
        if state.rng.gen_bool(relapse_rate * 0.5) {
            let idx = state.rng.gen_range(0..FailureType::ALL.len());
            let category = FailureType::ALL[idx];
            if let Some(c) = sample_syntax_corruption(&state.golden, category, &mut state.rng) {
                state.corruptions.push(c);
            }
        }
    }

    fn render_response(&self) -> String {
        let state = self.state.as_ref().expect("begin_sample not called");
        // Belief = golden + structural corruptions (text-level ones are
        // applied to the rendered JSON afterwards). Corruption-free
        // attempts — the common case in converged feedback rounds — use
        // the pre-rendered golden JSON.
        let json = if state.corruptions.is_empty() {
            (*state.golden_json).clone()
        } else {
            let mut belief = (*state.golden).clone();
            for c in &state.corruptions {
                c.apply(&mut belief);
            }
            let mut json = belief.to_json_string();
            for c in &state.corruptions {
                json = c.apply_text(&json);
            }
            json
        };
        format!(
            "<analysis>\nStep 1: identify the required building blocks for the {name} design \
             from the API document.\nStep 2: instantiate each component with the specified \
             parameters, using defaults elsewhere.\nStep 3: wire the components port by port \
             and expose the external I/O ports.\n</analysis>\n<result>\n{json}\n</result>",
            name = state.problem_name,
        )
    }
}

impl LanguageModel for SyntheticLlm {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn begin_sample(&mut self, problem: &Problem, sample_index: u64) {
        let seed = mix_seed(
            &[self.profile.name, &problem.id],
            &[self.global_seed, sample_index],
        );
        // Persistent knowledge multipliers: seeded by (model, problem)
        // only, NOT by the sample index — a model that does not know a
        // design family fails it in every sample, which is what keeps
        // Pass@5 close to Pass@1 on hard problems (as in the paper).
        let base = ModelProfile::difficulty(problem.golden.instances.len());
        let k_syntax = mix_seed(
            &[self.profile.name, &problem.id, "syntax-knowledge"],
            &[self.global_seed],
        );
        let k_func = mix_seed(
            &[self.profile.name, &problem.id, "functional-knowledge"],
            &[self.global_seed],
        );
        let z_syntax = seeded_normal(k_syntax);
        // A model that struggles with a design family syntactically also
        // tends to get its function wrong: correlate the two draws.
        let z_func = 0.7 * z_syntax + (1.0f64 - 0.49).sqrt() * seeded_normal(k_func);
        let syntax_mult = (self.profile.knowledge_sigma * z_syntax).exp();
        let func_mult = (self.profile.functional_knowledge_sigma * z_func).exp();
        let (golden, golden_json) = self
            .problem_cache
            .entry(problem.id.to_string())
            .or_insert_with(|| {
                let golden = Arc::new(problem.golden.clone());
                let json = Arc::new(golden.to_json_string());
                (golden, json)
            })
            .clone();
        self.state = Some(SampleState {
            golden,
            golden_json,
            difficulty: base * syntax_mult,
            functional_difficulty: base * func_mult,
            rng: StdRng::seed_from_u64(seed),
            corruptions: Vec::new(),
            problem_name: problem.name.to_string(),
            feedback_rounds: 0,
        });
    }

    fn respond(&mut self, conversation: &Conversation) -> String {
        assert!(
            self.state.is_some(),
            "begin_sample must be called before respond"
        );
        let restricted = Self::restricted_categories(conversation);
        let last_user = conversation
            .last_from(Role::User)
            .map(|t| t.content.clone())
            .unwrap_or_default();

        if last_user.contains(CORRECTION_MARKER) {
            self.repair_syntax(&last_user);
        } else if last_user.contains(FUNCTIONAL_FEEDBACK) {
            self.repair_functional();
        } else {
            self.initial_generation(&restricted);
        }
        self.render_response()
    }
}

/// An oracle model that always answers with the golden design — used to
/// validate that the evaluation harness itself accepts every problem.
#[derive(Debug, Default)]
pub struct PerfectLlm {
    golden: Option<Netlist>,
}

impl PerfectLlm {
    /// Creates the oracle.
    pub fn new() -> Self {
        PerfectLlm::default()
    }
}

impl LanguageModel for PerfectLlm {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn begin_sample(&mut self, problem: &Problem, _sample_index: u64) {
        self.golden = Some(problem.golden.clone());
    }

    fn respond(&mut self, _conversation: &Conversation) -> String {
        let golden = self.golden.as_ref().expect("begin_sample not called");
        format!(
            "<analysis>\nReproduce the reference design exactly.\n</analysis>\n<result>\n{}\n</result>",
            golden.to_json_string()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_prompt::{render_system_prompt, syntax_feedback, SystemPromptConfig};
    use picbench_sparams::builtin_models;

    fn mzi_ps() -> Problem {
        picbench_problems::find("mzi-ps").unwrap()
    }

    fn conversation(restricted: bool, problem: &Problem) -> Conversation {
        let models = builtin_models();
        let infos: Vec<_> = models.iter().map(|m| m.info().clone()).collect();
        let mut c = Conversation::with_system(render_system_prompt(
            infos.iter(),
            SystemPromptConfig {
                include_restrictions: restricted,
            },
        ));
        c.push(Role::User, problem.description.clone());
        c
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = mzi_ps();
        let conv = conversation(false, &problem);
        let mut a = SyntheticLlm::new(ModelProfile::gpt4(), 7);
        let mut b = SyntheticLlm::new(ModelProfile::gpt4(), 7);
        a.begin_sample(&problem, 0);
        b.begin_sample(&problem, 0);
        assert_eq!(a.respond(&conv), b.respond(&conv));
    }

    #[test]
    fn different_samples_differ() {
        let problem = mzi_ps();
        let conv = conversation(false, &problem);
        let mut llm = SyntheticLlm::new(ModelProfile::gpt_o1_mini(), 7);
        let mut outputs = std::collections::HashSet::new();
        for sample in 0..8 {
            llm.begin_sample(&problem, sample);
            outputs.insert(llm.respond(&conv));
        }
        assert!(outputs.len() > 1, "samples should vary");
    }

    #[test]
    fn responses_have_analysis_and_result_sections() {
        let problem = mzi_ps();
        let conv = conversation(false, &problem);
        let mut llm = SyntheticLlm::new(ModelProfile::claude35_sonnet(), 1);
        llm.begin_sample(&problem, 0);
        let response = llm.respond(&conv);
        assert!(response.contains("<analysis>"));
        assert!(response.contains("<result>"));
    }

    #[test]
    fn restrictions_lower_error_frequency() {
        let problem = picbench_problems::find("benes-8x8").unwrap();
        let mut dirty_plain = 0;
        let mut dirty_restricted = 0;
        let trials = 200;
        for (restricted, counter) in [(false, &mut dirty_plain), (true, &mut dirty_restricted)] {
            let conv = conversation(restricted, &problem);
            let mut llm = SyntheticLlm::new(ModelProfile::gemini15_pro(), 42);
            for sample in 0..trials {
                llm.begin_sample(&problem, sample);
                let _ = llm.respond(&conv);
                // Count every syntax mistake rather than mistake-bearing
                // samples: on a hard problem almost every sample carries at
                // least one mistake, so the indicator saturates and cannot
                // show the restriction effect.
                *counter += llm
                    .active_corruptions()
                    .iter()
                    .filter(|c| !c.is_functional())
                    .count();
            }
        }
        assert!(
            dirty_restricted < dirty_plain,
            "restrictions should reduce mistakes: {dirty_restricted} vs {dirty_plain}"
        );
    }

    #[test]
    fn feedback_repairs_errors_over_rounds() {
        let problem = picbench_problems::find("clements-8x8").unwrap();
        let mut conv = conversation(false, &problem);
        let mut llm = SyntheticLlm::new(ModelProfile::claude35_sonnet(), 3);
        let mut total_before = 0usize;
        let mut total_after = 0usize;
        for sample in 0..50 {
            llm.begin_sample(&problem, sample);
            let _ = llm.respond(&conv);
            let before: Vec<FailureType> = llm
                .active_corruptions()
                .iter()
                .filter_map(Corruption::category)
                .collect();
            total_before += before.len();
            if before.is_empty() {
                continue;
            }
            // Build feedback naming every active category and send it.
            let issues: Vec<picbench_netlist::ValidationIssue> = before
                .iter()
                .map(|f| picbench_netlist::ValidationIssue::new(*f, "details"))
                .collect();
            conv.push(Role::User, syntax_feedback(&problem.id, &issues));
            let _ = llm.respond(&conv);
            total_after += llm
                .active_corruptions()
                .iter()
                .filter(|c| !c.is_functional())
                .count();
        }
        assert!(
            (total_after as f64) < 0.8 * total_before as f64,
            "repair should remove a healthy share of errors: {total_after} vs {total_before}"
        );
    }

    #[test]
    fn perfect_llm_emits_golden() {
        let problem = mzi_ps();
        let mut llm = PerfectLlm::new();
        llm.begin_sample(&problem, 0);
        let response = llm.respond(&conversation(false, &problem));
        let payload = picbench_netlist::extract::extract_payload(&response).unwrap();
        let parsed = Netlist::from_json_str(&payload.json).unwrap();
        assert_eq!(parsed, problem.golden);
    }

    #[test]
    fn harder_problems_fail_more() {
        let easy = mzi_ps();
        let hard = picbench_problems::find("spanke-8x8").unwrap();
        let mut easy_clean = 0;
        let mut hard_clean = 0;
        for (problem, counter) in [(easy, &mut easy_clean), (hard, &mut hard_clean)] {
            let conv = conversation(false, &problem);
            let mut llm = SyntheticLlm::new(ModelProfile::gpt4(), 9);
            for sample in 0..150 {
                llm.begin_sample(&problem, sample);
                let _ = llm.respond(&conv);
                if llm.active_corruptions().is_empty() {
                    *counter += 1;
                }
            }
        }
        assert!(
            easy_clean > hard_clean,
            "difficulty scaling broken: easy {easy_clean} vs hard {hard_clean}"
        );
    }
}
