//! Corruption operators — one per Table II failure type, plus functional
//! corruptions.
//!
//! A synthetic model's "mistake" is a concrete, parameterized edit of the
//! golden design (or of the rendered JSON text). Every operator is
//! deterministic once sampled, so a model's belief state can always be
//! reconstructed as `golden + active corruptions`, which is what makes
//! feedback repair (dropping corruptions one by one) trivially consistent.

use crate::knowledge;
use picbench_netlist::{Connection, FailureType, Netlist, PortRef};
use rand::seq::SliceRandom;
use rand::Rng;

/// A concrete mistake, ready to apply.
#[derive(Debug, Clone, PartialEq)]
pub enum Corruption {
    /// Bind a component to a fabricated model reference.
    UndefinedModel {
        /// Which `models` entry to clobber.
        component: String,
        /// The invented reference.
        bogus_ref: String,
    },
    /// Wire an external port's target into the internal connections too.
    BoundIo {
        /// External port name.
        external: String,
        /// The other endpoint of the illegal connection.
        other: PortRef,
    },
    /// Swap a `models` entry into the `"<ref>": component` form.
    SwapModelsEntry {
        /// The component whose entry gets swapped.
        component: String,
    },
    /// Decorate the result section with fences/prose/comments.
    ExtraText {
        /// Wrap the JSON in markdown fences.
        fence: bool,
        /// Add prose around the JSON.
        prose: bool,
        /// Insert a `//` comment into the JSON body.
        comment: bool,
    },
    /// Connect an already-used port a second time.
    DuplicateConnection {
        /// The port to double-book.
        endpoint: PortRef,
        /// Where the bogus second connection goes.
        other: PortRef,
    },
    /// Expose an arbitrary extra external port.
    DanglingPort {
        /// The invented external name.
        name: String,
        /// The internal target.
        target: PortRef,
    },
    /// Drop a required external port.
    RemoveExternalPort {
        /// Name of the port to drop.
        name: String,
    },
    /// Re-target a connection endpoint to a port the component lacks.
    WrongPort {
        /// Index into `connections`.
        conn_index: usize,
        /// Mutate endpoint `a` (else `b`).
        endpoint_a: bool,
        /// The non-existent port name.
        new_port: String,
    },
    /// Rename an instance to contain an underscore.
    UnderscoreRename {
        /// Original instance name.
        original: String,
    },
    /// Corrupt the JSON text itself.
    BreakJson {
        /// 0 = truncate the closing brace, 1 = doubled comma.
        mode: u8,
    },
    /// Syntax-clean but functionally wrong: change a parameter value.
    FunctionalTweak {
        /// Instance whose setting changes.
        instance: String,
        /// Parameter name.
        param: String,
        /// The wrong value.
        value: f64,
    },
    /// Syntax-clean but functionally wrong: swap two external mappings.
    FunctionalPortSwap {
        /// First external port name.
        a: String,
        /// Second external port name.
        b: String,
    },
}

impl Corruption {
    /// The Table II category this mistake is designed to trigger, or
    /// `None` for functional corruptions.
    pub fn category(&self) -> Option<FailureType> {
        match self {
            Corruption::UndefinedModel { .. } => Some(FailureType::UndefinedModel),
            Corruption::BoundIo { .. } => Some(FailureType::BoundIoPorts),
            Corruption::SwapModelsEntry { .. } => Some(FailureType::InstancesModelsConfusion),
            Corruption::ExtraText { .. } => Some(FailureType::ExtraJsonContent),
            Corruption::DuplicateConnection { .. } => Some(FailureType::DuplicatePortConnection),
            Corruption::DanglingPort { .. } => Some(FailureType::DanglingPortConnection),
            Corruption::RemoveExternalPort { .. } => Some(FailureType::WrongPortCount),
            Corruption::WrongPort { .. } => Some(FailureType::WrongPort),
            Corruption::UnderscoreRename { .. } => Some(FailureType::InvalidComponentName),
            Corruption::BreakJson { .. } => Some(FailureType::OtherSyntax),
            Corruption::FunctionalTweak { .. } | Corruption::FunctionalPortSwap { .. } => None,
        }
    }

    /// Whether this is a functional (syntax-clean) corruption.
    pub fn is_functional(&self) -> bool {
        self.category().is_none()
    }

    /// Applies the structural part of the mistake to a netlist.
    /// Text-level corruptions ([`Corruption::ExtraText`],
    /// [`Corruption::BreakJson`]) are applied at render time instead.
    pub fn apply(&self, netlist: &mut Netlist) {
        match self {
            Corruption::UndefinedModel {
                component,
                bogus_ref,
            } => {
                netlist.models.insert(component.clone(), bogus_ref.clone());
            }
            Corruption::BoundIo { external, other } => {
                if let Some(target) = netlist.ports.get(external).cloned() {
                    netlist.connections.push(Connection {
                        a: other.clone(),
                        b: target,
                    });
                }
            }
            Corruption::SwapModelsEntry { component } => {
                if let Some(model_ref) = netlist.models.remove(component) {
                    netlist.models.insert(model_ref, component.clone());
                }
            }
            Corruption::ExtraText { .. } | Corruption::BreakJson { .. } => {}
            Corruption::DuplicateConnection { endpoint, other } => {
                netlist.connections.push(Connection {
                    a: endpoint.clone(),
                    b: other.clone(),
                });
            }
            Corruption::DanglingPort { name, target } => {
                netlist.ports.insert(name.clone(), target.clone());
            }
            Corruption::RemoveExternalPort { name } => {
                netlist.ports.remove(name);
            }
            Corruption::WrongPort {
                conn_index,
                endpoint_a,
                new_port,
            } => {
                if let Some(conn) = netlist.connections.get_mut(*conn_index) {
                    if *endpoint_a {
                        conn.a.port = new_port.clone();
                    } else {
                        conn.b.port = new_port.clone();
                    }
                }
            }
            Corruption::UnderscoreRename { original } => {
                if let Some(inst) = netlist.instances.remove(original) {
                    let renamed = underscore_name(original);
                    netlist.instances.insert(renamed.clone(), inst);
                    for conn in &mut netlist.connections {
                        if conn.a.instance == *original {
                            conn.a.instance = renamed.clone();
                        }
                        if conn.b.instance == *original {
                            conn.b.instance = renamed.clone();
                        }
                    }
                    let externals: Vec<String> = netlist.ports.keys().map(str::to_string).collect();
                    for ext in externals {
                        if let Some(pr) = netlist.ports.get_mut(&ext) {
                            if pr.instance == *original {
                                pr.instance = renamed.clone();
                            }
                        }
                    }
                }
            }
            Corruption::FunctionalTweak {
                instance,
                param,
                value,
            } => {
                if let Some(inst) = netlist.instances.get_mut(instance) {
                    inst.settings.insert(param.clone(), *value);
                }
            }
            Corruption::FunctionalPortSwap { a, b } => {
                let pa = netlist.ports.get(a).cloned();
                let pb = netlist.ports.get(b).cloned();
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    netlist.ports.insert(a.clone(), pb);
                    netlist.ports.insert(b.clone(), pa);
                }
            }
        }
    }

    /// Applies the text-level part of the mistake to the rendered JSON.
    pub fn apply_text(&self, json: &str) -> String {
        match self {
            Corruption::ExtraText {
                fence,
                prose,
                comment,
            } => {
                let mut body = json.to_string();
                if *comment {
                    if let Some(pos) = body.find('{') {
                        body.insert_str(
                            pos + 1,
                            "\n  // using default values for all unspecified parameters",
                        );
                    }
                }
                let mut out = String::new();
                if *prose {
                    out.push_str("Here is the JSON netlist for the requested design:\n");
                }
                if *fence {
                    out.push_str("```json\n");
                }
                out.push_str(&body);
                if *fence {
                    out.push_str("\n```");
                }
                if *prose {
                    out.push_str("\nI hope this helps! Let me know if you need any changes.");
                }
                out
            }
            Corruption::BreakJson { mode } => match mode {
                0 => {
                    // Truncate the final closing brace.
                    let trimmed = json.trim_end();
                    trimmed[..trimmed.len().saturating_sub(1)].to_string()
                }
                _ => {
                    // Double a comma — a pure syntax slip (not "extra
                    // content", which is its own category).
                    match json.find(',') {
                        Some(pos) => {
                            let mut out = json.to_string();
                            out.insert(pos, ',');
                            out
                        }
                        None => {
                            let trimmed = json.trim_end();
                            trimmed[..trimmed.len().saturating_sub(1)].to_string()
                        }
                    }
                }
            },
            _ => json.to_string(),
        }
    }
}

fn underscore_name(original: &str) -> String {
    // Split camelCase at the first internal capital, else append a suffix.
    if let Some(pos) = original
        .char_indices()
        .skip(1)
        .find(|(_, c)| c.is_ascii_uppercase())
        .map(|(i, _)| i)
    {
        let (head, tail) = original.split_at(pos);
        format!("{}_{}", head, tail.to_lowercase())
    } else {
        format!("{original}_1")
    }
}

/// Parameters considered "magnitude-affecting": tweaking one measurably
/// changes |S|² so the functional check reliably fails.
const TWEAKABLE: &[&str] = &[
    "delta_length",
    "state",
    "theta",
    "coupling",
    "coupling1",
    "coupling2",
    "ratio",
    "radius",
    "attenuation",
    "length",
];

fn tweaked_value(param: &str, old: f64) -> f64 {
    match param {
        "state" => 1.0 - old,
        "theta" => old + 0.5,
        "coupling" | "coupling1" | "coupling2" => (old * 0.4 + 0.25).clamp(0.0, 1.0),
        "ratio" => (1.0 - old).clamp(0.05, 0.95),
        "radius" => old * 1.15,
        "attenuation" => old + 10.0,
        // Lengths: large multiplicative change so even low-loss paths
        // shift measurably above the functional tolerance.
        _ => old * 3.0 + 20.0,
    }
}

/// Samples one syntax corruption of the requested category against the
/// golden design. Returns `None` when the category cannot be staged on
/// this particular design (e.g. no swappable models entry).
pub fn sample_syntax_corruption<R: Rng + ?Sized>(
    golden: &Netlist,
    category: FailureType,
    rng: &mut R,
) -> Option<Corruption> {
    match category {
        FailureType::UndefinedModel => {
            let components: Vec<&str> = golden.models.keys().collect();
            let component = components.choose(rng)?.to_string();
            let bogus = ["mmi3x3", "ring", "ps", "splitter4", "ybranch", "mzmx"]
                .choose(rng)
                .unwrap()
                .to_string();
            Some(Corruption::UndefinedModel {
                component,
                bogus_ref: bogus,
            })
        }
        FailureType::BoundIoPorts => {
            let externals: Vec<&str> = golden.ports.keys().collect();
            let external = externals.choose(rng)?.to_string();
            let other = pick_other_port(golden, rng)?;
            Some(Corruption::BoundIo { external, other })
        }
        FailureType::InstancesModelsConfusion => {
            // Swapping is only visible when component != ref.
            let swappable: Vec<&str> = golden
                .models
                .iter()
                .filter(|(c, r)| *c != r.as_str() && knowledge::is_builtin(r))
                .map(|(c, _)| c)
                .collect();
            let component = swappable.choose(rng)?.to_string();
            Some(Corruption::SwapModelsEntry { component })
        }
        FailureType::ExtraJsonContent => {
            let style = rng.gen_range(0..3);
            Some(Corruption::ExtraText {
                fence: style == 0 || style == 2,
                prose: style == 1,
                comment: style == 2,
            })
        }
        FailureType::DuplicatePortConnection => {
            let conn = golden.connections.choose(rng)?;
            let endpoint = if rng.gen_bool(0.5) {
                conn.a.clone()
            } else {
                conn.b.clone()
            };
            let other = pick_other_port(golden, rng)?;
            Some(Corruption::DuplicateConnection { endpoint, other })
        }
        FailureType::DanglingPortConnection => {
            let free = knowledge::unused_ports(golden);
            let target = if let Some((inst, port)) = free.choose(rng) {
                PortRef::new(inst.clone(), port.clone())
            } else {
                // No genuinely free port: re-expose an existing target
                // under a surplus name (still classified as dangling).
                let (_, pr) = golden.ports.get_index(0)?;
                pr.clone()
            };
            let name = format!("O{}", golden.ports.len() + rng.gen_range(1..4usize));
            Some(Corruption::DanglingPort { name, target })
        }
        FailureType::WrongPortCount => {
            let externals: Vec<&str> = golden.ports.keys().collect();
            let name = externals.choose(rng)?.to_string();
            Some(Corruption::RemoveExternalPort { name })
        }
        FailureType::WrongPort => {
            if golden.connections.is_empty() {
                return None;
            }
            let conn_index = rng.gen_range(0..golden.connections.len());
            let endpoint_a = rng.gen_bool(0.5);
            let conn = &golden.connections[conn_index];
            let instance = if endpoint_a {
                &conn.a.instance
            } else {
                &conn.b.instance
            };
            let new_port = knowledge::bogus_port(golden, instance)?;
            Some(Corruption::WrongPort {
                conn_index,
                endpoint_a,
                new_port,
            })
        }
        FailureType::InvalidComponentName => {
            let instances: Vec<&str> = golden.instances.keys().collect();
            let original = instances.choose(rng)?.to_string();
            Some(Corruption::UnderscoreRename { original })
        }
        FailureType::OtherSyntax => Some(Corruption::BreakJson {
            mode: rng.gen_range(0..2),
        }),
    }
}

/// Samples one functional corruption.
pub fn sample_functional_corruption<R: Rng + ?Sized>(
    golden: &Netlist,
    rng: &mut R,
) -> Option<Corruption> {
    // Prefer a parameter tweak on an instance that already sets a
    // magnitude-affecting parameter.
    let mut candidates: Vec<(String, String, f64)> = Vec::new();
    for (name, inst) in golden.instances.iter() {
        for (param, value) in inst.settings.iter() {
            if TWEAKABLE.contains(&param) {
                candidates.push((name.to_string(), param.to_string(), *value));
            }
        }
    }
    if let Some((instance, param, old)) = candidates.choose(rng) {
        return Some(Corruption::FunctionalTweak {
            instance: instance.clone(),
            param: param.clone(),
            value: tweaked_value(param, *old),
        });
    }
    // Next: swap two same-direction external ports.
    let outputs: Vec<&str> = golden.ports.keys().filter(|p| p.starts_with('O')).collect();
    if outputs.len() >= 2 {
        let a = outputs[rng.gen_range(0..outputs.len())].to_string();
        let mut b = outputs[rng.gen_range(0..outputs.len())].to_string();
        while b == a {
            b = outputs[rng.gen_range(0..outputs.len())].to_string();
        }
        return Some(Corruption::FunctionalPortSwap { a, b });
    }
    // Last resort: make some instance very lossy.
    let instances: Vec<&str> = golden.instances.keys().collect();
    let instance = instances.choose(rng)?.to_string();
    Some(Corruption::FunctionalTweak {
        instance,
        param: "loss".to_string(),
        value: 500.0,
    })
}

fn pick_other_port<R: Rng + ?Sized>(golden: &Netlist, rng: &mut R) -> Option<PortRef> {
    // Prefer genuinely unused ports so the corruption stays focused on
    // its own category.
    let free = knowledge::unused_ports(golden);
    if let Some((inst, port)) = free.choose(rng) {
        return Some(PortRef::new(inst.clone(), port.clone()));
    }
    let conn = golden.connections.choose(rng)?;
    Some(conn.a.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn golden() -> Netlist {
        picbench_netlist::NetlistBuilder::new()
            .instance("mmi1", "mmi")
            .instance("mmi2", "mmi")
            .instance_with("waveBottom", "waveguide", &[("length", 20.0)])
            .instance_with("phaseShifter", "phaseshifter", &[("length", 10.0)])
            .connect("mmi1,O1", "waveBottom,I1")
            .connect("waveBottom,O1", "mmi2,O1")
            .connect("mmi1,O2", "phaseShifter,I1")
            .connect("phaseShifter,O1", "mmi2,O2")
            .port("I1", "mmi1,I1")
            .port("O1", "mmi2,I1")
            .model("mmi", "mmi1x2")
            .model("waveguide", "waveguide")
            .model("phaseshifter", "phaseshifter")
            .build()
    }

    #[test]
    fn every_category_can_be_sampled_on_the_reference_design() {
        let g = golden();
        let mut rng = StdRng::seed_from_u64(1);
        for category in FailureType::ALL {
            let c = sample_syntax_corruption(&g, category, &mut rng)
                .unwrap_or_else(|| panic!("cannot stage {category:?}"));
            assert_eq!(c.category(), Some(category));
        }
    }

    #[test]
    fn wrong_port_mutates_a_connection() {
        let g = golden();
        let c = Corruption::WrongPort {
            conn_index: 1,
            endpoint_a: false,
            new_port: "I2".to_string(),
        };
        let mut n = g.clone();
        c.apply(&mut n);
        assert_eq!(n.connections[1].b.port, "I2");
        assert_eq!(g.connections[1].b.port, "O1");
    }

    #[test]
    fn underscore_rename_updates_references() {
        let g = golden();
        let c = Corruption::UnderscoreRename {
            original: "phaseShifter".to_string(),
        };
        let mut n = g.clone();
        c.apply(&mut n);
        assert!(n.instances.contains_key("phase_shifter"));
        assert!(!n.instances.contains_key("phaseShifter"));
        assert!(n
            .connections
            .iter()
            .any(|conn| conn.a.instance == "phase_shifter" || conn.b.instance == "phase_shifter"));
    }

    #[test]
    fn functional_tweak_changes_setting() {
        let g = golden();
        let mut rng = StdRng::seed_from_u64(3);
        let c = sample_functional_corruption(&g, &mut rng).unwrap();
        assert!(c.is_functional());
        let mut n = g.clone();
        c.apply(&mut n);
        assert_ne!(n, g, "functional corruption must change the netlist");
    }

    #[test]
    fn extra_text_renders_fences_and_comments() {
        let c = Corruption::ExtraText {
            fence: true,
            prose: true,
            comment: true,
        };
        let out = c.apply_text("{\"a\": 1}");
        assert!(out.contains("```json"));
        assert!(out.contains("// using default values"));
        assert!(out.contains("hope this helps"));
    }

    #[test]
    fn break_json_truncates() {
        let c = Corruption::BreakJson { mode: 0 };
        assert_eq!(c.apply_text("{\"a\": 1}"), "{\"a\": 1");
        let c = Corruption::BreakJson { mode: 1 };
        assert_eq!(
            c.apply_text("{\"a\": 1, \"b\": 2}"),
            "{\"a\": 1,, \"b\": 2}"
        );
        // No comma to double: falls back to truncation.
        assert_eq!(c.apply_text("{}"), "{");
    }

    #[test]
    fn swap_models_entry_round() {
        let g = golden();
        let c = Corruption::SwapModelsEntry {
            component: "mmi".to_string(),
        };
        let mut n = g.clone();
        c.apply(&mut n);
        assert!(!n.models.contains_key("mmi"));
        assert_eq!(n.models.get("mmi1x2").map(String::as_str), Some("mmi"));
    }

    #[test]
    fn port_swap_functional_on_multi_output() {
        let multi = picbench_netlist::NetlistBuilder::new()
            .instance("s", "splitter")
            .port("I1", "s,I1")
            .port("O1", "s,O1")
            .port("O2", "s,O2")
            .model("splitter", "splitter")
            .build();
        let c = Corruption::FunctionalPortSwap {
            a: "O1".to_string(),
            b: "O2".to_string(),
        };
        let mut n = multi.clone();
        c.apply(&mut n);
        assert_eq!(n.ports.get("O1"), multi.ports.get("O2"));
        assert_eq!(n.ports.get("O2"), multi.ports.get("O1"));
    }
}
