//! # picbench-synthllm
//!
//! Synthetic language models substituting the five commercial LLM APIs of
//! the paper's evaluation (GPT-4, GPT-o1-mini, GPT-4o, Claude 3.5 Sonnet,
//! Gemini 1.5 Pro), which are unavailable in this environment.
//!
//! Each [`SyntheticLlm`] is driven by a calibrated [`ModelProfile`]: it
//! answers the initial query with the problem's golden design perturbed
//! by mistakes drawn from the Table II taxonomy (frequency scaled by
//! problem difficulty and by the presence of restrictions in the system
//! prompt), and reacts to feedback turns by repairing the reported errors
//! with its profile's self-correction probability. The evaluation
//! pipeline sees only rendered chat text — the corruptions are *real*
//! netlist defects that the *real* validator, simulator and classifier
//! must catch.
//!
//! ## Example
//!
//! ```
//! use picbench_prompt::{Conversation, Role};
//! use picbench_synthllm::{LanguageModel, ModelProfile, SyntheticLlm};
//!
//! let problem = picbench_problems::find("mzi-ps").unwrap();
//! let mut llm = SyntheticLlm::new(ModelProfile::claude35_sonnet(), 42);
//! llm.begin_sample(&problem, 0);
//! let mut conversation = Conversation::with_system("You are a PIC designer…");
//! conversation.push(Role::User, problem.description.clone());
//! let response = llm.respond(&conversation);
//! assert!(response.contains("<result>"));
//! ```

#![warn(missing_docs)]

pub mod corrupt;
mod knowledge;
mod profile;
mod provider;
mod retry;
mod synthetic;

pub use corrupt::Corruption;
pub use knowledge::{bogus_port, instance_ports, ports_of, unused_ports, BUILTIN_PORTS};
pub use profile::ModelProfile;
pub use provider::{
    FailureKind, FlakyProvider, FlakySchedule, ModelProvider, ReplayLlm, FATAL_AUTH_RESPONSE,
    GARBLED_SUFFIX, MISSING_TRANSCRIPT, NO_ACTIVE_SAMPLE, PAPER_SEED, RATE_LIMIT_RESPONSE,
    TIMEOUT_RESPONSE, TRANSIENT_IO_RESPONSE,
};
pub use retry::{
    classify_transport, RetryEvent, RetryPolicy, RetryProvider, RetrySink, TransportErrorKind,
};
pub use synthetic::{PerfectLlm, SyntheticLlm};

use picbench_problems::Problem;
use picbench_prompt::Conversation;

/// A chat-style design generator: the interface the benchmark drives.
///
/// The paper's harness is "compatible with a wide range of LLMs as long
/// as they provide a Python API"; this trait is the Rust equivalent of
/// that seam. [`SyntheticLlm`] implements it stochastically,
/// [`PerfectLlm`] as an oracle; a real API client could implement it too.
pub trait LanguageModel: Send {
    /// Display name used in reports.
    fn name(&self) -> &str;

    /// Resets per-sample state; called once before each sample's first
    /// query. `sample_index` distinguishes the n Pass@k samples.
    fn begin_sample(&mut self, problem: &Problem, sample_index: u64);

    /// Produces the raw chat response to the conversation so far.
    fn respond(&mut self, conversation: &Conversation) -> String;
}
