//! Static component knowledge used by the synthetic models.
//!
//! A real LLM has (imperfect) knowledge of the component API from its
//! prompt and training. The synthetic models carry the same information
//! as a static table: the port list of every built-in model. Corruption
//! operators use it to craft *specific* realistic mistakes (connecting to
//! a port the component does not have, re-exposing genuinely unused
//! ports, …).

use picbench_netlist::Netlist;

/// Port lists of the built-in component models, mirroring
/// `picbench_sparams::builtin_models()`.
pub const BUILTIN_PORTS: &[(&str, &[&str])] = &[
    ("waveguide", &["I1", "O1"]),
    ("phaseshifter", &["I1", "O1"]),
    ("mmi1x2", &["I1", "O1", "O2"]),
    ("mmi2x2", &["I1", "I2", "O1", "O2"]),
    ("coupler", &["I1", "I2", "O1", "O2"]),
    ("mzi", &["I1", "O1"]),
    ("mzi2x2", &["I1", "I2", "O1", "O2"]),
    ("mzm", &["I1", "O1"]),
    ("ringap", &["I1", "O1"]),
    ("ringad", &["I1", "I2", "O1", "O2"]),
    ("crossing", &["I1", "I2", "O1", "O2"]),
    ("switch1x2", &["I1", "O1", "O2"]),
    ("switch2x2", &["I1", "I2", "O1", "O2"]),
    ("splitter", &["I1", "O1", "O2"]),
    ("attenuator", &["I1", "O1"]),
    ("reflector", &["I1", "O1"]),
    ("gc", &["I1", "O1"]),
];

/// The port list of a built-in model, if known.
pub fn ports_of(model_ref: &str) -> Option<&'static [&'static str]> {
    BUILTIN_PORTS
        .iter()
        .find(|(name, _)| *name == model_ref)
        .map(|(_, ports)| *ports)
}

/// Whether a name is a built-in model reference.
pub fn is_builtin(model_ref: &str) -> bool {
    ports_of(model_ref).is_some()
}

/// Resolves an instance's model reference through the netlist's `models`
/// section (falling back to the component name itself).
pub fn instance_model_ref<'a>(netlist: &'a Netlist, instance: &str) -> Option<&'a str> {
    let inst = netlist.instances.get(instance)?;
    Some(
        netlist
            .models
            .get(&inst.component)
            .map(String::as_str)
            .unwrap_or(inst.component.as_str()),
    )
}

/// The port list of an instance in a netlist, if its model is built-in.
pub fn instance_ports(netlist: &Netlist, instance: &str) -> Option<&'static [&'static str]> {
    ports_of(instance_model_ref(netlist, instance)?)
}

/// Every `(instance, port)` pair in the netlist that exists on its
/// component but is used by no connection and no external port.
pub fn unused_ports(netlist: &Netlist) -> Vec<(String, String)> {
    let used: Vec<String> = netlist
        .all_endpoint_refs()
        .iter()
        .map(|pr| pr.to_string())
        .collect();
    let mut free = Vec::new();
    for (name, _) in netlist.instances.iter() {
        if let Some(ports) = instance_ports(netlist, name) {
            for port in ports {
                let key = format!("{name},{port}");
                if !used.contains(&key) {
                    free.push((name.to_string(), (*port).to_string()));
                }
            }
        }
    }
    free
}

/// A port name that does **not** exist on the given instance — the raw
/// material of a "Wrong ports" mistake. Returns `None` when the model is
/// unknown.
pub fn bogus_port(netlist: &Netlist, instance: &str) -> Option<String> {
    let ports = instance_ports(netlist, instance)?;
    for candidate in ["I2", "O2", "I3", "O3", "I4", "O4"] {
        if !ports.contains(&candidate) {
            return Some(candidate.to_string());
        }
    }
    Some("X9".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::NetlistBuilder;

    fn sample() -> Netlist {
        NetlistBuilder::new()
            .instance("mmi1", "mmi")
            .instance_with("wg", "waveguide", &[("length", 5.0)])
            .connect("mmi1,O1", "wg,I1")
            .port("I1", "mmi1,I1")
            .port("O1", "wg,O1")
            .model("mmi", "mmi1x2")
            .model("waveguide", "waveguide")
            .build()
    }

    #[test]
    fn port_table_matches_sparams_models() {
        for model in picbench_sparams::builtin_models() {
            let expected = model.info().ports();
            let got = ports_of(model.info().name)
                .unwrap_or_else(|| panic!("missing table entry for {}", model.info().name));
            assert_eq!(
                got.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
                expected,
                "port mismatch for {}",
                model.info().name
            );
        }
        assert_eq!(
            BUILTIN_PORTS.len(),
            picbench_sparams::builtin_models().len()
        );
    }

    #[test]
    fn resolves_instance_ports_via_models_section() {
        let n = sample();
        assert_eq!(instance_model_ref(&n, "mmi1"), Some("mmi1x2"));
        assert_eq!(instance_ports(&n, "mmi1").unwrap(), &["I1", "O1", "O2"]);
        assert_eq!(instance_ports(&n, "nope"), None);
    }

    #[test]
    fn finds_unused_ports() {
        let n = sample();
        let free = unused_ports(&n);
        // mmi1,O2 is the only free port.
        assert_eq!(free, vec![("mmi1".to_string(), "O2".to_string())]);
    }

    #[test]
    fn bogus_port_is_never_real() {
        let n = sample();
        let bogus = bogus_port(&n, "mmi1").unwrap();
        assert!(!instance_ports(&n, "mmi1")
            .unwrap()
            .contains(&bogus.as_str()));
        // The classic Fig. 4 mistake: I2 on a 1x2 MMI.
        assert_eq!(bogus, "I2");
    }
}
