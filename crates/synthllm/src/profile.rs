//! Calibrated behavioural profiles for the five evaluated models.
//!
//! The paper evaluates GPT-4, GPT-o1-mini, GPT-4o, Claude 3.5 Sonnet and
//! Gemini 1.5 Pro. Those APIs are not available here, so each model is
//! replaced by a stochastic profile with the same *observable* behaviour:
//!
//! * a base error intensity `λ_unit`, scaled by per-problem difficulty
//!   (√instances/2) and split across the Table II categories by weights —
//!   `P(sample clean) ≈ e^{−λ}` reproduces the no-feedback Pass@1 columns;
//! * a `restriction_factor` multiplying the intensity when the Table II
//!   restrictions are present in the system prompt (Table IV);
//! * a `repair_rate` — the per-round probability that a reported error is
//!   fixed, which makes syntax success decay multiplicatively with
//!   feedback iterations exactly as Tables III/IV show;
//! * functional corruption/repair rates doing the same for the Func.
//!   columns.
//!
//! The constants below were fitted to the paper's Tables III and IV with
//! the closed-form `e^{−λ(1−r)^t}` model described in `EXPERIMENTS.md`.

use picbench_netlist::FailureType;

/// Behavioural parameters of one synthetic model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Display name (matches the paper's tables).
    pub name: &'static str,
    /// Base syntax-error intensity per unit difficulty.
    pub lambda_unit: f64,
    /// Intensity multiplier when restrictions are in the system prompt.
    pub restriction_factor: f64,
    /// Relative frequency of each failure category (Table II order);
    /// normalized internally.
    pub category_weights: [f64; 10],
    /// Per-feedback-round probability of fixing a reported syntax error
    /// (first round; later rounds decay by [`ModelProfile::repair_decay`]).
    pub repair_rate: f64,
    /// Multiplicative decay of the repair rate per additional feedback
    /// round — residual errors are sticky.
    pub repair_decay: f64,
    /// Per-feedback-round probability of introducing a fresh error.
    pub relapse_rate: f64,
    /// Base functional-error intensity per unit difficulty.
    pub functional_unit: f64,
    /// Functional intensity multiplier under restrictions.
    pub functional_restriction_factor: f64,
    /// Probability that the (vague) functional feedback round fixes a
    /// functional error.
    pub functional_repair_rate: f64,
    /// Log-normal spread of the per-(model, problem) syntax knowledge
    /// multiplier: large values make the model bimodal — it either
    /// "knows" a design family or reliably fails it, which is what pins
    /// Pass@5 close to Pass@1 as in the paper's tables.
    pub knowledge_sigma: f64,
    /// Log-normal spread of the per-(model, problem) functional knowledge
    /// multiplier.
    pub functional_knowledge_sigma: f64,
}

impl ModelProfile {
    /// Difficulty of a problem whose golden design has `instances`
    /// components: `√instances / 2` (≈1 for the 4-component fundamental
    /// devices, ≈5 for the 112-switch Spanke 8×8).
    pub fn difficulty(instances: usize) -> f64 {
        (instances as f64).sqrt() / 2.0
    }

    /// Probability of injecting a mistake of the given category into one
    /// generation.
    pub fn category_rate(&self, category: FailureType, difficulty: f64, restricted: bool) -> f64 {
        let idx = FailureType::ALL
            .iter()
            .position(|f| *f == category)
            .expect("category is in ALL");
        let total: f64 = self.category_weights.iter().sum();
        let weight = self.category_weights[idx] / total;
        // Restrictions address every category except "Other syntax error"
        // (Table II has no restriction text for it).
        let factor = if restricted && category != FailureType::OtherSyntax {
            self.restriction_factor
        } else {
            1.0
        };
        1.0 - (-self.lambda_unit * weight * difficulty * factor).exp()
    }

    /// Probability of a functional mistake in one generation.
    pub fn functional_rate(&self, difficulty: f64, restricted: bool) -> f64 {
        let factor = if restricted {
            self.functional_restriction_factor
        } else {
            1.0
        };
        1.0 - (-self.functional_unit * difficulty * factor).exp()
    }

    /// GPT-4 profile: best raw pattern recognition without restrictions,
    /// but the weakest gains from restrictions and modest self-repair.
    pub fn gpt4() -> Self {
        ModelProfile {
            name: "GPT-4",
            lambda_unit: 2.25,
            restriction_factor: 0.80,
            category_weights: [12.0, 8.0, 10.0, 12.0, 14.0, 6.0, 8.0, 20.0, 5.0, 5.0],
            repair_rate: 0.70,
            repair_decay: 0.55,
            relapse_rate: 0.03,
            functional_unit: 0.87,
            functional_restriction_factor: 1.25,
            functional_repair_rate: 0.08,
            knowledge_sigma: 1.0,
            functional_knowledge_sigma: 0.9,
        }
    }

    /// GPT-o1-mini profile: weakest raw syntax, strong reasoning-driven
    /// self-repair.
    pub fn gpt_o1_mini() -> Self {
        ModelProfile {
            name: "GPT-o1-mini",
            lambda_unit: 2.60,
            restriction_factor: 0.75,
            category_weights: [10.0, 8.0, 12.0, 14.0, 12.0, 6.0, 8.0, 20.0, 5.0, 5.0],
            repair_rate: 0.80,
            repair_decay: 0.78,
            relapse_rate: 0.03,
            functional_unit: 1.35,
            functional_restriction_factor: 1.0,
            functional_repair_rate: 0.22,
            knowledge_sigma: 1.1,
            functional_knowledge_sigma: 0.9,
        }
    }

    /// GPT-4o profile: strong instruction following — restrictions remove
    /// most of its error mass.
    pub fn gpt4o() -> Self {
        ModelProfile {
            name: "GPT-4o",
            lambda_unit: 1.85,
            restriction_factor: 0.068,
            category_weights: [12.0, 8.0, 12.0, 14.0, 12.0, 6.0, 8.0, 18.0, 5.0, 5.0],
            repair_rate: 0.78,
            repair_decay: 0.68,
            relapse_rate: 0.03,
            functional_unit: 1.50,
            functional_restriction_factor: 0.85,
            functional_repair_rate: 0.25,
            knowledge_sigma: 1.2,
            functional_knowledge_sigma: 1.0,
        }
    }

    /// Claude 3.5 Sonnet profile: the strongest feedback-driven
    /// self-correction in both syntax and functionality.
    pub fn claude35_sonnet() -> Self {
        ModelProfile {
            name: "Claude 3.5 Sonnet",
            lambda_unit: 5.60,
            restriction_factor: 0.056,
            category_weights: [12.0, 8.0, 10.0, 14.0, 12.0, 6.0, 8.0, 20.0, 5.0, 5.0],
            repair_rate: 0.93,
            repair_decay: 0.88,
            relapse_rate: 0.02,
            functional_unit: 4.20,
            functional_restriction_factor: 0.55,
            functional_repair_rate: 0.40,
            knowledge_sigma: 1.7,
            functional_knowledge_sigma: 1.2,
        }
    }

    /// Gemini 1.5 Pro profile: the most dramatic in-context gains from
    /// restrictions; high functional fidelity once syntax passes.
    pub fn gemini15_pro() -> Self {
        ModelProfile {
            name: "Gemini 1.5 pro",
            lambda_unit: 10.50,
            restriction_factor: 0.003,
            category_weights: [12.0, 8.0, 12.0, 16.0, 12.0, 6.0, 8.0, 16.0, 5.0, 5.0],
            repair_rate: 0.85,
            repair_decay: 0.72,
            relapse_rate: 0.03,
            functional_unit: 0.12,
            functional_restriction_factor: 4.0,
            functional_repair_rate: 0.25,
            knowledge_sigma: 1.7,
            functional_knowledge_sigma: 1.0,
        }
    }

    /// The five profiles of the paper's evaluation, in table order.
    pub fn all_paper_models() -> Vec<ModelProfile> {
        vec![
            ModelProfile::gpt4(),
            ModelProfile::gpt_o1_mini(),
            ModelProfile::gpt4o(),
            ModelProfile::claude35_sonnet(),
            ModelProfile::gemini15_pro(),
        ]
    }

    /// Looks up a paper profile by its table name, case-insensitively
    /// (`"GPT-4"`, `"claude 3.5 sonnet"`, …). Worker processes use this
    /// to rebuild a campaign's provider set from plain CLI flags.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        ModelProfile::all_paper_models()
            .into_iter()
            .find(|profile| profile.name.eq_ignore_ascii_case(name.trim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_paper_models_with_unique_names() {
        let models = ModelProfile::all_paper_models();
        assert_eq!(models.len(), 5);
        let mut names: Vec<&str> = models.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn by_name_resolves_every_paper_model_case_insensitively() {
        for model in ModelProfile::all_paper_models() {
            let found = ModelProfile::by_name(model.name).expect("exact name resolves");
            assert_eq!(found.name, model.name);
            let relaxed = format!("  {}  ", model.name.to_uppercase());
            let found = ModelProfile::by_name(&relaxed).expect("case/space-insensitive");
            assert_eq!(found.name, model.name);
        }
        assert!(ModelProfile::by_name("GPT-5").is_none());
    }

    #[test]
    fn difficulty_grows_with_size() {
        assert!((ModelProfile::difficulty(4) - 1.0).abs() < 1e-12);
        assert!(ModelProfile::difficulty(112) > 5.0);
        assert!(ModelProfile::difficulty(36) > ModelProfile::difficulty(10));
    }

    #[test]
    fn rates_are_probabilities() {
        for profile in ModelProfile::all_paper_models() {
            for d in [0.5, 1.0, 3.0, 6.0] {
                for restricted in [false, true] {
                    for cat in FailureType::ALL {
                        let p = profile.category_rate(cat, d, restricted);
                        assert!((0.0..=1.0).contains(&p));
                    }
                    let f = profile.functional_rate(d, restricted);
                    assert!((0.0..=1.0).contains(&f));
                }
            }
        }
    }

    #[test]
    fn restrictions_reduce_error_rates() {
        for profile in ModelProfile::all_paper_models() {
            let base = profile.category_rate(FailureType::WrongPort, 1.0, false);
            let restricted = profile.category_rate(FailureType::WrongPort, 1.0, true);
            assert!(restricted < base, "{}", profile.name);
        }
    }

    #[test]
    fn other_syntax_is_not_reduced_by_restrictions() {
        let p = ModelProfile::gemini15_pro();
        let base = p.category_rate(FailureType::OtherSyntax, 1.0, false);
        let restricted = p.category_rate(FailureType::OtherSyntax, 1.0, true);
        assert!((base - restricted).abs() < 1e-12);
    }

    #[test]
    fn clean_probability_matches_closed_form() {
        // Π(1−p_c) = e^{−λd} because rates are 1−e^{−wλd} with Σw = 1.
        let p = ModelProfile::gpt4();
        let d = 1.7;
        let product: f64 = FailureType::ALL
            .iter()
            .map(|&c| 1.0 - p.category_rate(c, d, false))
            .product();
        let closed = (-p.lambda_unit * d).exp();
        assert!((product - closed).abs() < 1e-12);
    }

    #[test]
    fn gemini_has_strongest_restriction_gain() {
        let models = ModelProfile::all_paper_models();
        let gemini = models.iter().find(|m| m.name == "Gemini 1.5 pro").unwrap();
        for other in &models {
            if other.name != gemini.name {
                assert!(gemini.restriction_factor <= other.restriction_factor);
            }
        }
    }

    #[test]
    fn claude_has_strongest_repair() {
        let models = ModelProfile::all_paper_models();
        let claude = models
            .iter()
            .find(|m| m.name == "Claude 3.5 Sonnet")
            .unwrap();
        for other in &models {
            if other.name != claude.name {
                assert!(claude.repair_rate >= other.repair_rate);
            }
        }
    }
}
