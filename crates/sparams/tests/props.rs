//! Property-based physics checks: every built-in model must stay
//! reciprocal and passive for any valid parameters anywhere in the band,
//! and lossless configurations must conserve energy.

use picbench_sparams::{builtin_models, Settings};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_models_reciprocal_and_passive_at_defaults(wl in 1.51f64..1.59) {
        for model in builtin_models() {
            let s = model.s_matrix(wl, &Settings::new()).unwrap();
            prop_assert!(s.is_reciprocal(1e-9), "{} not reciprocal", model.info().name);
            prop_assert!(s.is_passive(1e-9), "{} not passive", model.info().name);
        }
    }

    #[test]
    fn waveguide_passive_for_any_length_and_loss(
        wl in 1.51f64..1.59,
        length in 0.0f64..5000.0,
        loss in 0.0f64..50.0,
    ) {
        let models = builtin_models();
        let wg = models.iter().find(|m| m.info().name == "waveguide").unwrap();
        let mut settings = Settings::new();
        settings.insert("length", length);
        settings.insert("loss", loss);
        let s = wg.s_matrix(wl, &settings).unwrap();
        let t = s.s("I1", "O1").unwrap();
        prop_assert!(t.abs() <= 1.0 + 1e-12);
        prop_assert!(s.is_reciprocal(1e-12));
    }

    #[test]
    fn coupler_is_unitary_for_any_coupling(
        wl in 1.51f64..1.59,
        kappa in 0.0f64..=1.0,
    ) {
        let models = builtin_models();
        let c = models.iter().find(|m| m.info().name == "coupler").unwrap();
        let mut settings = Settings::new();
        settings.insert("coupling", kappa);
        let s = c.s_matrix(wl, &settings).unwrap();
        prop_assert!(s.is_unitary(1e-10));
    }

    #[test]
    fn mzi2x2_is_unitary_for_any_angles(
        theta in -10.0f64..10.0,
        phi in -10.0f64..10.0,
    ) {
        let models = builtin_models();
        let m = models.iter().find(|m| m.info().name == "mzi2x2").unwrap();
        let mut settings = Settings::new();
        settings.insert("theta", theta);
        settings.insert("phi", phi);
        let s = m.s_matrix(1.55, &settings).unwrap();
        prop_assert!(s.is_unitary(1e-10));
        prop_assert!(s.is_reciprocal(1e-10));
    }

    #[test]
    fn lossless_ring_conserves_energy(
        wl in 1.51f64..1.59,
        radius in 1.0f64..20.0,
        k1 in 0.01f64..0.99,
        k2 in 0.01f64..0.99,
    ) {
        let models = builtin_models();
        let ring = models.iter().find(|m| m.info().name == "ringad").unwrap();
        let mut settings = Settings::new();
        settings.insert("radius", radius);
        settings.insert("coupling1", k1);
        settings.insert("coupling2", k2);
        settings.insert("loss", 0.0);
        let s = ring.s_matrix(wl, &settings).unwrap();
        let total = s.s("I1", "O1").unwrap().norm_sqr() + s.s("I1", "O2").unwrap().norm_sqr();
        prop_assert!((total - 1.0).abs() < 1e-9, "energy {total} at wl={wl}");
    }

    #[test]
    fn switch_states_partition_power(
        state in 0.0f64..=1.0,
        wl in 1.51f64..1.59,
    ) {
        let models = builtin_models();
        for name in ["switch1x2", "switch2x2"] {
            let sw = models.iter().find(|m| m.info().name == name).unwrap();
            let mut settings = Settings::new();
            settings.insert("state", state);
            let s = sw.s_matrix(wl, &settings).unwrap();
            let total = s.s("I1", "O1").unwrap().norm_sqr() + s.s("I1", "O2").unwrap().norm_sqr();
            prop_assert!((total - 1.0).abs() < 1e-10, "{name} leaks at state {state}");
        }
    }

    #[test]
    fn mzi_fringe_power_bounded(
        wl in 1.51f64..1.59,
        delta in 0.0f64..200.0,
    ) {
        let models = builtin_models();
        let mzi = models.iter().find(|m| m.info().name == "mzi").unwrap();
        let mut settings = Settings::new();
        settings.insert("delta_length", delta);
        settings.insert("loss", 0.0);
        let s = mzi.s_matrix(wl, &settings).unwrap();
        let p = s.s("I1", "O1").unwrap().norm_sqr();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }
}
