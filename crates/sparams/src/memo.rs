//! Per-instance S-matrix memoization for wavelength sweeps.

use crate::{Model, ModelError, SMatrix, Settings};

/// Caches the S-matrix of one `(model, settings)` pair across a
/// wavelength sweep.
///
/// When the model declares itself wavelength-independent for the given
/// settings ([`Model::is_wavelength_independent`]), the matrix is computed
/// on the first call and returned by reference forever after — the sweep
/// hot path then performs zero model evaluations and zero allocations for
/// that instance. Dispersive models bypass the cache.
///
/// # Examples
///
/// ```
/// use picbench_sparams::{models::Coupler, Model, Settings, SMatrixMemo};
///
/// let coupler = Coupler::default();
/// let settings = Settings::new();
/// let mut memo = SMatrixMemo::new();
/// let first = memo.get_or_eval(&coupler, 1.51, &settings)?.cloned();
/// let second = memo.get_or_eval(&coupler, 1.59, &settings)?.cloned();
/// // The ideal coupler is dispersionless: one evaluation served both.
/// assert_eq!(first, second);
/// assert!(memo.is_cached());
/// # Ok::<(), picbench_sparams::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SMatrixMemo {
    cached: Option<SMatrix>,
}

/// The result of a memo lookup: either a reference into the cache or a
/// freshly evaluated matrix the caller now owns.
#[derive(Debug)]
pub enum MemoResult<'a> {
    /// The model is wavelength-independent; the matrix lives in the memo.
    Cached(&'a SMatrix),
    /// The model is dispersive; the matrix was evaluated for this call.
    Fresh(SMatrix),
}

impl MemoResult<'_> {
    /// The matrix, by reference.
    pub fn get(&self) -> &SMatrix {
        match self {
            MemoResult::Cached(s) => s,
            MemoResult::Fresh(s) => s,
        }
    }

    /// The matrix, cloned out of the cache when necessary.
    pub fn cloned(self) -> SMatrix {
        match self {
            MemoResult::Cached(s) => s.clone(),
            MemoResult::Fresh(s) => s,
        }
    }
}

impl SMatrixMemo {
    /// An empty memo.
    pub fn new() -> Self {
        SMatrixMemo::default()
    }

    /// Whether a wavelength-independent matrix has been captured.
    pub fn is_cached(&self) -> bool {
        self.cached.is_some()
    }

    /// The captured matrix, if any.
    pub fn cached(&self) -> Option<&SMatrix> {
        self.cached.as_ref()
    }

    /// The model's S-matrix at `wavelength_um`, served from the cache when
    /// the model is wavelength-independent under `settings`.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from the underlying evaluation.
    pub fn get_or_eval(
        &mut self,
        model: &dyn Model,
        wavelength_um: f64,
        settings: &Settings,
    ) -> Result<MemoResult<'_>, ModelError> {
        if model.is_wavelength_independent(settings) {
            if self.cached.is_none() {
                self.cached = Some(model.s_matrix(wavelength_um, settings)?);
            }
            Ok(MemoResult::Cached(
                self.cached.as_ref().expect("just filled"),
            ))
        } else {
            Ok(MemoResult::Fresh(model.s_matrix(wavelength_um, settings)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Coupler, Waveguide};

    #[test]
    fn dispersive_models_bypass_the_cache() {
        let wg = Waveguide::default();
        let settings = Settings::new();
        let mut memo = SMatrixMemo::new();
        let a = memo.get_or_eval(&wg, 1.51, &settings).unwrap().cloned();
        let b = memo.get_or_eval(&wg, 1.59, &settings).unwrap().cloned();
        assert!(!memo.is_cached());
        assert!(a.max_abs_diff(&b) > 1e-6, "waveguide must disperse");
    }

    #[test]
    fn independent_models_evaluate_once() {
        let coupler = Coupler::default();
        let settings = Settings::new();
        let mut memo = SMatrixMemo::new();
        let a = memo
            .get_or_eval(&coupler, 1.51, &settings)
            .unwrap()
            .cloned();
        assert!(memo.is_cached());
        let b = memo
            .get_or_eval(&coupler, 1.59, &settings)
            .unwrap()
            .cloned();
        assert_eq!(a, b);
    }
}
