//! Mach-Zehnder structures: the built-in 1×1 MZI, the ideal 2×2 mesh
//! block, and the Mach-Zehnder modulator.

use super::from_transfer;
use super::guide_param_specs;
use super::waveguide::GuideParams;
use crate::model::{check_known_params, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::{CMatrix, Complex};

/// Built-in 1×1 Mach-Zehnder interferometer.
///
/// Ports: `I1 → O1`. Internally: an equal split, two arms of length
/// `length` and `length + delta_length`, and a combiner. The transfer is
/// `(e^{iφ₁} + e^{iφ₂})/2`, which produces the classic sinusoidal fringe
/// over wavelength. This mirrors the paper's API-document entry
/// "mzi: Mach-Zehnder interferometer with one input and one output;
/// parameters: delta length…".
#[derive(Debug)]
pub struct Mzi {
    info: ModelInfo,
}

impl Default for Mzi {
    fn default() -> Self {
        let mut params = vec![
            ParamSpec::new("delta_length", 10.0, "um", "arm length difference"),
            ParamSpec::new("length", 10.0, "um", "base (shorter) arm length"),
        ];
        params.extend(guide_param_specs());
        Mzi {
            info: ModelInfo {
                name: "mzi",
                description: "Mach-Zehnder interferometer with one input and one output",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params,
            },
        }
    }
}

impl Model for Mzi {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let delta = settings.resolve(&self.info.params[0]);
        let length = settings.resolve(&self.info.params[1]);
        let guide = GuideParams::resolve(settings);
        let short = guide.propagate(wavelength_um, length);
        let long = guide.propagate(wavelength_um, length + delta);
        let t = (short + long) * 0.5;
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", t);
        Ok(s)
    }
}

/// Ideal calibrated 2×2 MZI mesh block.
///
/// Ports: `I1, I2 → O1, O2`. Implements exactly the Givens/Clements factor
///
/// ```text
/// ⎡ e^{iφ}·cosθ   −sinθ ⎤
/// ⎣ e^{iφ}·sinθ    cosθ ⎦
/// ```
///
/// so that a mesh of these blocks, with settings produced by
/// `picbench_math::decomp`, realizes a target unitary *exactly*. This is
/// the building block of the Clements/Reck mesh and U-matrix-block golden
/// designs.
///
/// Parameters: `theta` (mixing angle, rad), `phi` (input phase, rad).
#[derive(Debug)]
pub struct Mzi2x2 {
    info: ModelInfo,
}

impl Default for Mzi2x2 {
    fn default() -> Self {
        Mzi2x2 {
            info: ModelInfo {
                name: "mzi2x2",
                description: "Calibrated 2x2 MZI block realizing a Givens rotation (theta, phi)",
                inputs: vec!["I1".into(), "I2".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![
                    ParamSpec::new("theta", 0.0, "rad", "mixing angle"),
                    ParamSpec::new("phi", 0.0, "rad", "input phase on I1"),
                ],
            },
        }
    }
}

impl Model for Mzi2x2 {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let theta = settings.resolve(&self.info.params[0]);
        let phi = settings.resolve(&self.info.params[1]);
        let (sin, cos) = theta.sin_cos();
        let ph = Complex::cis(phi);
        let t = CMatrix::from_rows(&[
            vec![ph * cos, Complex::real(-sin)],
            vec![ph * sin, Complex::real(cos)],
        ]);
        Ok(from_transfer(&["I1", "I2"], &["O1", "O2"], &t))
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

/// Built-in Mach-Zehnder modulator.
///
/// Ports: `I1 → O1`. Two arms with independent drive phases (`phase_top`,
/// `phase_bottom`) and an optional arm imbalance `delta_length`. At a
/// fixed bias this is the frequency-domain transfer the paper's
/// interconnect problems (direct/QPSK/QAM modulators) are built from.
#[derive(Debug)]
pub struct Mzm {
    info: ModelInfo,
}

impl Default for Mzm {
    fn default() -> Self {
        let mut params = vec![
            ParamSpec::new("phase_top", 0.0, "rad", "drive phase on the top arm"),
            ParamSpec::new("phase_bottom", 0.0, "rad", "drive phase on the bottom arm"),
            ParamSpec::new("delta_length", 0.0, "um", "arm length imbalance"),
            ParamSpec::new("length", 10.0, "um", "base arm length"),
        ];
        params.extend(guide_param_specs());
        Mzm {
            info: ModelInfo {
                name: "mzm",
                description: "Mach-Zehnder modulator with independent arm drive phases",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params,
            },
        }
    }
}

impl Model for Mzm {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let phase_top = settings.resolve(&self.info.params[0]);
        let phase_bottom = settings.resolve(&self.info.params[1]);
        let delta = settings.resolve(&self.info.params[2]);
        let length = settings.resolve(&self.info.params[3]);
        let guide = GuideParams::resolve(settings);
        let top = guide.propagate(wavelength_um, length) * Complex::cis(phase_top);
        let bottom = guide.propagate(wavelength_um, length + delta) * Complex::cis(phase_bottom);
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", (top + bottom) * 0.5);
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> Settings {
        let mut s = Settings::new();
        s.insert("loss", 0.0);
        s
    }

    #[test]
    fn mzi_fringe_oscillates_over_wavelength() {
        let mzi = Mzi::default();
        let mut settings = lossless();
        settings.insert("delta_length", 30.0);
        let mut min_p = f64::INFINITY;
        let mut max_p = f64::NEG_INFINITY;
        let mut wl = 1.51;
        while wl <= 1.59 {
            let p = mzi
                .s_matrix(wl, &settings)
                .unwrap()
                .s("I1", "O1")
                .unwrap()
                .norm_sqr();
            min_p = min_p.min(p);
            max_p = max_p.max(p);
            wl += 0.0005;
        }
        assert!(max_p > 0.95, "fringe peak should be near unity");
        assert!(min_p < 0.05, "fringe null should be near zero");
    }

    #[test]
    fn mzi_balanced_arms_transmit_fully() {
        let mzi = Mzi::default();
        let mut settings = lossless();
        settings.insert("delta_length", 0.0);
        let t = mzi
            .s_matrix(1.55, &settings)
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        assert!((t.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mzi2x2_matches_givens_factor() {
        use picbench_math::GivensFactor;
        let block = Mzi2x2::default();
        let f = GivensFactor {
            mode: 0,
            theta: 0.83,
            phi: -0.4,
        };
        let mut settings = Settings::new();
        settings.insert("theta", f.theta);
        settings.insert("phi", f.phi);
        let s = block.s_matrix(1.55, &settings).unwrap();
        let b = f.block();
        assert!((s.s("I1", "O1").unwrap() - b[0][0]).abs() < 1e-12);
        assert!((s.s("I2", "O1").unwrap() - b[0][1]).abs() < 1e-12);
        assert!((s.s("I1", "O2").unwrap() - b[1][0]).abs() < 1e-12);
        assert!((s.s("I2", "O2").unwrap() - b[1][1]).abs() < 1e-12);
    }

    #[test]
    fn mzi2x2_is_unitary_for_any_angles() {
        let block = Mzi2x2::default();
        for (theta, phi) in [(0.0, 0.0), (0.5, 1.0), (1.2, -2.0), (1.6, 3.2)] {
            let mut settings = Settings::new();
            settings.insert("theta", theta);
            settings.insert("phi", phi);
            let s = block.s_matrix(1.55, &settings).unwrap();
            assert!(s.is_unitary(1e-12));
            assert!(s.is_reciprocal(1e-12));
        }
    }

    #[test]
    fn mzm_push_pull_extinguishes() {
        let mzm = Mzm::default();
        let mut settings = lossless();
        settings.insert("phase_top", std::f64::consts::FRAC_PI_2);
        settings.insert("phase_bottom", -std::f64::consts::FRAC_PI_2);
        let t = mzm
            .s_matrix(1.55, &settings)
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        assert!(t.abs() < 1e-12, "push-pull at ±π/2 should extinguish");
    }

    #[test]
    fn mzm_default_is_transparent() {
        let mzm = Mzm::default();
        let t = mzm
            .s_matrix(1.55, &lossless())
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        assert!((t.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mzm_phase_difference_sets_amplitude() {
        let mzm = Mzm::default();
        let mut settings = lossless();
        settings.insert("phase_top", std::f64::consts::FRAC_PI_2);
        let t = mzm
            .s_matrix(1.55, &settings)
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        // |cos(Δφ/2)| with Δφ = π/2 → 1/√2.
        assert!((t.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }
}
