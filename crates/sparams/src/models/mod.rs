//! Built-in photonic component models.
//!
//! These are the Rust equivalents of the component library the paper builds
//! on top of SAX ("waveguides, couplers, MMIs, MZIs, MRRs, and phase
//! shifters", §IV-A), plus the auxiliary devices the benchmark circuits
//! need (crossings, 1×2/2×2 switches, asymmetric splitters, attenuators,
//! Mach-Zehnder modulators).
//!
//! All models share conventions:
//!
//! * wavelengths in micrometres, lengths in micrometres (the paper's
//!   "default unit is micron"),
//! * input ports `I1..In`, output ports `O1..Om`,
//! * reciprocal scattering (`S = Sᵀ`) and passivity (`|S| ≤ 1`),
//! * silicon-on-insulator-flavoured dispersion defaults
//!   (n_eff = 2.34, n_g = 4.2 at λ₀ = 1.55 µm).

mod coupler;
mod crossing;
mod misc;
mod mmi;
mod mzi;
mod reflect;
mod ring;
mod switch;
mod waveguide;

pub use coupler::Coupler;
pub use crossing::Crossing;
pub use misc::{Attenuator, Splitter};
pub use mmi::{Mmi1x2, Mmi2x2};
pub use mzi::{Mzi, Mzi2x2, Mzm};
pub use reflect::{GratingCoupler, Reflector};
pub use ring::{RingAddDrop, RingAllPass};
pub use switch::{Switch1x2, Switch2x2};
pub use waveguide::{PhaseShifter, Waveguide};

use crate::{ParamSpec, SMatrix};
use picbench_math::{CMatrix, Complex};

/// Default effective index at the reference wavelength.
pub const DEFAULT_NEFF: f64 = 2.34;
/// Default group index.
pub const DEFAULT_NG: f64 = 4.2;
/// Default propagation loss in dB/cm.
pub const DEFAULT_LOSS_DB_CM: f64 = 2.0;
/// Default reference wavelength in µm.
pub const DEFAULT_WL0_UM: f64 = 1.55;

/// The shared guided-propagation parameter specs (`neff`, `ng`, `loss`,
/// `wl0`), appended to models that contain waveguide sections.
pub fn guide_param_specs() -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("neff", DEFAULT_NEFF, "", "effective index at wl0"),
        ParamSpec::new("ng", DEFAULT_NG, "", "group index"),
        ParamSpec::new("loss", DEFAULT_LOSS_DB_CM, "dB/cm", "propagation loss"),
        ParamSpec::new("wl0", DEFAULT_WL0_UM, "um", "reference wavelength"),
    ]
}

/// First-order dispersive effective index:
/// `n_eff(λ) = n_eff0 + (n_eff0 − n_g)·(λ − λ₀)/λ₀`.
///
/// ```
/// use picbench_sparams::models::effective_index;
/// let n = effective_index(1.55, 2.34, 4.2, 1.55);
/// assert!((n - 2.34).abs() < 1e-12);
/// ```
pub fn effective_index(wavelength_um: f64, neff0: f64, ng: f64, wl0_um: f64) -> f64 {
    neff0 + (neff0 - ng) * (wavelength_um - wl0_um) / wl0_um
}

/// Complex propagation factor of a guided section: amplitude from dB/cm
/// loss over `length_um`, phase `2π·n_eff·L/λ`.
///
/// ```
/// use picbench_sparams::models::propagation;
/// let p = propagation(1.55, 100.0, 2.34, 4.2, 1.55, 0.0);
/// assert!((p.abs() - 1.0).abs() < 1e-12); // lossless keeps unit magnitude
/// ```
pub fn propagation(
    wavelength_um: f64,
    length_um: f64,
    neff0: f64,
    ng: f64,
    wl0_um: f64,
    loss_db_cm: f64,
) -> Complex {
    let neff = effective_index(wavelength_um, neff0, ng, wl0_um);
    let phase = 2.0 * std::f64::consts::PI * neff * length_um / wavelength_um;
    let amplitude = 10f64.powf(-loss_db_cm * (length_um * 1e-4) / 20.0);
    Complex::from_polar(amplitude, phase)
}

/// Builds a reciprocal 2N-port S-matrix from a forward transfer block:
/// `S[out, in] = T`, `S[in, out] = Tᵀ`, no reflections.
///
/// `t[o][i]` is the amplitude transfer from `ins[i]` to `outs[o]`.
///
/// # Panics
///
/// Panics if `t` is not `outs.len() × ins.len()`.
pub fn from_transfer(ins: &[&str], outs: &[&str], t: &CMatrix) -> SMatrix {
    assert_eq!(t.rows(), outs.len(), "transfer rows must match outputs");
    assert_eq!(t.cols(), ins.len(), "transfer cols must match inputs");
    let ports: Vec<String> = ins
        .iter()
        .chain(outs.iter())
        .map(|p| p.to_string())
        .collect();
    let mut s = SMatrix::new(ports);
    for (o, out) in outs.iter().enumerate() {
        for (i, inp) in ins.iter().enumerate() {
            s.set(inp, out, t[(o, i)]);
            s.set(out, inp, t[(o, i)]);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_index_reduces_with_wavelength() {
        // Normal dispersion: ng > neff, so neff decreases as λ grows.
        let lo = effective_index(1.51, DEFAULT_NEFF, DEFAULT_NG, DEFAULT_WL0_UM);
        let hi = effective_index(1.59, DEFAULT_NEFF, DEFAULT_NG, DEFAULT_WL0_UM);
        assert!(lo > hi);
    }

    #[test]
    fn group_index_matches_derivative() {
        // ng = neff − λ·dn/dλ at λ₀.
        let d = 1e-6;
        let n_plus = effective_index(DEFAULT_WL0_UM + d, DEFAULT_NEFF, DEFAULT_NG, DEFAULT_WL0_UM);
        let n_minus = effective_index(DEFAULT_WL0_UM - d, DEFAULT_NEFF, DEFAULT_NG, DEFAULT_WL0_UM);
        let slope = (n_plus - n_minus) / (2.0 * d);
        let ng = DEFAULT_NEFF - DEFAULT_WL0_UM * slope;
        assert!((ng - DEFAULT_NG).abs() < 1e-6);
    }

    #[test]
    fn propagation_loss_halves_power_at_3db() {
        // 3.0103 dB total → |S|² = 0.5. 2 dB/cm × 1.50515 cm ≈ 3.0103 dB.
        let length_um = 3.0103 / 2.0 * 1e4;
        let p = propagation(1.55, length_um, DEFAULT_NEFF, DEFAULT_NG, 1.55, 2.0);
        assert!((p.norm_sqr() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn propagation_phase_wraps_with_wavelength() {
        let p1 = propagation(1.55, 10.0, DEFAULT_NEFF, DEFAULT_NG, 1.55, 0.0);
        let p2 = propagation(1.56, 10.0, DEFAULT_NEFF, DEFAULT_NG, 1.55, 0.0);
        assert!((p1.arg() - p2.arg()).abs() > 1e-3);
    }

    #[test]
    fn from_transfer_is_reciprocal() {
        let t = CMatrix::from_rows(&[
            vec![Complex::real(0.6), Complex::new(0.0, 0.8)],
            vec![Complex::new(0.0, 0.8), Complex::real(0.6)],
        ]);
        let s = from_transfer(&["I1", "I2"], &["O1", "O2"], &t);
        assert!(s.is_reciprocal(1e-12));
        assert_eq!(s.s("I1", "O2"), Some(Complex::new(0.0, 0.8)));
        assert_eq!(s.s("O2", "I1"), Some(Complex::new(0.0, 0.8)));
        assert_eq!(s.s("I1", "I2"), Some(Complex::ZERO));
    }

    #[test]
    fn guide_specs_have_expected_names() {
        let names: Vec<&str> = guide_param_specs().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["neff", "ng", "loss", "wl0"]);
    }
}
