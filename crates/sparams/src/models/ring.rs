//! Microring resonators (all-pass and add-drop).

use super::guide_param_specs;
use super::waveguide::GuideParams;
use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::Complex;
use std::f64::consts::PI;

/// Resolved ring geometry shared by both ring models.
struct RingParams {
    /// Round-trip amplitude (loss).
    a: f64,
    /// Round-trip phase at the evaluation wavelength.
    phi: f64,
}

fn ring_params(wavelength_um: f64, radius_um: f64, guide: &GuideParams) -> RingParams {
    let circumference = 2.0 * PI * radius_um;
    let p = guide.propagate(wavelength_um, circumference);
    RingParams {
        a: p.abs(),
        phi: 2.0
            * PI
            * super::effective_index(wavelength_um, guide.neff, guide.ng, guide.wl0)
            * circumference
            / wavelength_um,
    }
}

/// All-pass microring resonator.
///
/// Ports: `I1 → O1`. A single bus coupled to a ring; the through response
/// is `(t − a·e^{iφ})/(1 − t·a·e^{iφ})`, giving periodic notches at the
/// ring resonances when the ring is lossy.
///
/// Parameters: `radius`, `coupling` plus the dispersion block.
#[derive(Debug)]
pub struct RingAllPass {
    info: ModelInfo,
}

impl Default for RingAllPass {
    fn default() -> Self {
        let mut params = vec![
            ParamSpec::new("radius", 5.0, "um", "ring radius"),
            ParamSpec::new("coupling", 0.1, "", "bus-to-ring power coupling"),
        ];
        params.extend(guide_param_specs());
        RingAllPass {
            info: ModelInfo {
                name: "ringap",
                description: "All-pass microring resonator on a single bus waveguide",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params,
            },
        }
    }
}

impl Model for RingAllPass {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let radius = settings.resolve(&self.info.params[0]);
        let kappa = settings.resolve(&self.info.params[1]);
        check_range("ringap", "radius", radius, 1e-3, 1e6)?;
        check_range("ringap", "coupling", kappa, 0.0, 1.0)?;
        let guide = GuideParams::resolve(settings);
        let ring = ring_params(wavelength_um, radius, &guide);
        let t = (1.0 - kappa).sqrt();
        let phasor = Complex::cis(ring.phi) * ring.a;
        let through = (Complex::real(t) - phasor) / (Complex::ONE - phasor * t);
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", through);
        Ok(s)
    }
}

/// Add-drop microring resonator.
///
/// Ports: `I1` (in), `I2` (add), `O1` (through), `O2` (drop). On
/// resonance, power entering `I1` transfers to the drop port `O2`; the WDM
/// multiplexer/demultiplexer golden designs chain these with staggered
/// radii.
///
/// Parameters: `radius`, `coupling1` (input bus), `coupling2` (drop bus)
/// plus the dispersion block.
#[derive(Debug)]
pub struct RingAddDrop {
    info: ModelInfo,
}

impl Default for RingAddDrop {
    fn default() -> Self {
        let mut params = vec![
            ParamSpec::new("radius", 5.0, "um", "ring radius"),
            ParamSpec::new("coupling1", 0.1, "", "input-bus power coupling"),
            ParamSpec::new("coupling2", 0.1, "", "drop-bus power coupling"),
        ];
        params.extend(guide_param_specs());
        RingAddDrop {
            info: ModelInfo {
                name: "ringad",
                description: "Add-drop microring resonator coupled to two bus waveguides",
                inputs: vec!["I1".into(), "I2".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params,
            },
        }
    }
}

impl Model for RingAddDrop {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let radius = settings.resolve(&self.info.params[0]);
        let k1 = settings.resolve(&self.info.params[1]);
        let k2 = settings.resolve(&self.info.params[2]);
        check_range("ringad", "radius", radius, 1e-3, 1e6)?;
        check_range("ringad", "coupling1", k1, 0.0, 1.0)?;
        check_range("ringad", "coupling2", k2, 0.0, 1.0)?;
        let guide = GuideParams::resolve(settings);
        let ring = ring_params(wavelength_um, radius, &guide);
        let t1 = (1.0 - k1).sqrt();
        let t2 = (1.0 - k2).sqrt();
        let full = Complex::cis(ring.phi) * ring.a;
        let half = Complex::cis(ring.phi / 2.0) * ring.a.sqrt();
        let denom = Complex::ONE - full * (t1 * t2);
        let through1 = (Complex::real(t1) - full * t2) / denom;
        let through2 = (Complex::real(t2) - full * t1) / denom;
        let drop = -(half * (k1 * k2).sqrt()) / denom;

        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", through1);
        s.set_sym("I2", "O2", through2);
        s.set_sym("I1", "O2", drop);
        s.set_sym("I2", "O1", drop);
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> Settings {
        let mut s = Settings::new();
        s.insert("loss", 0.0);
        s
    }

    /// Scans 1510–1590 nm and returns (min, max) of |S(from→to)|².
    fn scan(model: &dyn Model, settings: &Settings, from: &str, to: &str) -> (f64, f64) {
        let mut min_p = f64::INFINITY;
        let mut max_p = f64::NEG_INFINITY;
        let mut wl = 1.51;
        while wl <= 1.59 {
            let p = model
                .s_matrix(wl, settings)
                .unwrap()
                .s(from, to)
                .unwrap()
                .norm_sqr();
            min_p = min_p.min(p);
            max_p = max_p.max(p);
            wl += 0.0001;
        }
        (min_p, max_p)
    }

    #[test]
    fn allpass_lossless_is_all_pass() {
        let ring = RingAllPass::default();
        let (min_p, max_p) = scan(&ring, &lossless(), "I1", "O1");
        assert!(min_p > 1.0 - 1e-9, "lossless all-pass must keep |S|=1");
        assert!(max_p < 1.0 + 1e-9);
    }

    #[test]
    fn allpass_lossy_shows_notches() {
        let ring = RingAllPass::default();
        let mut settings = Settings::new();
        settings.insert("loss", 50.0); // strong loss to make deep notches
        let (min_p, max_p) = scan(&ring, &settings, "I1", "O1");
        assert!(max_p > 0.8, "off resonance mostly transmits");
        assert!(min_p < 0.3, "on resonance the notch dips");
    }

    #[test]
    fn adddrop_resonance_routes_to_drop() {
        let ring = RingAddDrop::default();
        let settings = lossless();
        let (_, drop_max) = scan(&ring, &settings, "I1", "O2");
        let (thru_min, _) = scan(&ring, &settings, "I1", "O1");
        assert!(
            drop_max > 0.99,
            "symmetric lossless ring fully drops on resonance"
        );
        assert!(thru_min < 0.01, "through port extinguishes on resonance");
    }

    #[test]
    fn adddrop_conserves_energy_lossless() {
        let ring = RingAddDrop::default();
        let settings = lossless();
        let mut wl = 1.51;
        while wl <= 1.59 {
            let s = ring.s_matrix(wl, &settings).unwrap();
            let total = s.s("I1", "O1").unwrap().norm_sqr() + s.s("I1", "O2").unwrap().norm_sqr();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "energy must be conserved at wl={wl}"
            );
            wl += 0.001;
        }
    }

    #[test]
    fn adddrop_is_reciprocal() {
        let ring = RingAddDrop::default();
        let s = ring.s_matrix(1.5512, &Settings::new()).unwrap();
        assert!(s.is_reciprocal(1e-12));
        assert!(s.is_passive(1e-9));
    }

    #[test]
    fn radius_shifts_resonance() {
        // Two different radii must not share all resonance wavelengths:
        // compare drop responses at a probe wavelength near a resonance of
        // the first ring.
        let ring = RingAddDrop::default();
        let mut s1 = lossless();
        s1.insert("radius", 5.0);
        let mut s2 = lossless();
        s2.insert("radius", 5.08);
        // find the strongest drop wavelength for ring 1
        let mut best_wl = 1.51;
        let mut best_p = 0.0;
        let mut wl = 1.51;
        while wl <= 1.59 {
            let p = ring
                .s_matrix(wl, &s1)
                .unwrap()
                .s("I1", "O2")
                .unwrap()
                .norm_sqr();
            if p > best_p {
                best_p = p;
                best_wl = wl;
            }
            wl += 0.0001;
        }
        let p_other = ring
            .s_matrix(best_wl, &s2)
            .unwrap()
            .s("I1", "O2")
            .unwrap()
            .norm_sqr();
        assert!(best_p > 0.99);
        assert!(
            p_other < 0.9,
            "detuned ring should not fully drop at the same wl"
        );
    }

    #[test]
    fn invalid_coupling_rejected() {
        let ring = RingAllPass::default();
        let mut settings = Settings::new();
        settings.insert("coupling", 1.5);
        assert!(matches!(
            ring.s_matrix(1.55, &settings),
            Err(ModelError::InvalidValue { .. })
        ));
    }
}
