//! Elementary optical switches (1×2 and 2×2).

use super::from_transfer;
use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::{CMatrix, Complex};
use std::f64::consts::{FRAC_PI_2, PI};

/// 2×2 electro-optic switch element (balanced MZI with a drive phase).
///
/// Ports: `I1, I2 → O1, O2`. `state = 0` is the **bar** state
/// (`I1→O1`, `I2→O2`), `state = 1` the **cross** state (`I1→O2`,
/// `I2→O1`). Intermediate values model partial switching. The transfer is
/// the physical balanced-MZI response `H·diag(e^{iφ},1)·H` with
/// `φ = π·(1 − state)`, so the phases carried by the routed light are
/// exactly those of a real switch cell.
///
/// Parameters: `state` ∈ [0, 1], `loss` (dB).
#[derive(Debug)]
pub struct Switch2x2 {
    info: ModelInfo,
}

impl Default for Switch2x2 {
    fn default() -> Self {
        Switch2x2 {
            info: ModelInfo {
                name: "switch2x2",
                description: "2x2 MZI switch element; state 0 = bar, state 1 = cross",
                inputs: vec!["I1".into(), "I2".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![
                    ParamSpec::new("state", 0.0, "", "switch state: 0 bar, 1 cross"),
                    ParamSpec::new("loss", 0.0, "dB", "insertion loss"),
                ],
            },
        }
    }
}

impl Model for Switch2x2 {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let state = settings.resolve(&self.info.params[0]);
        let loss_db = settings.resolve(&self.info.params[1]);
        check_range("switch2x2", "state", state, 0.0, 1.0)?;
        check_range("switch2x2", "loss", loss_db, 0.0, 100.0)?;
        let amp = 10f64.powf(-loss_db / 20.0);
        // Balanced MZI: M(φ) = ½[[e^{iφ}−1, i(e^{iφ}+1)], [i(e^{iφ}+1), −(e^{iφ}−1)]].
        let phi = PI * (1.0 - state);
        let e = Complex::cis(phi);
        let d = (e - Complex::ONE) * 0.5;
        let c = Complex::i() * (e + Complex::ONE) * 0.5;
        let t = CMatrix::from_rows(&[vec![d * amp, c * amp], vec![c * amp, -d * amp]]);
        Ok(from_transfer(&["I1", "I2"], &["O1", "O2"], &t))
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

/// 1×2 routing switch.
///
/// Ports: `I1 → O1, O2`. `state = 0` routes the input to `O1`, `state = 1`
/// to `O2`; intermediate values split. Spanke fabrics build their
/// splitting trees from these (and, reversed, their combining trees).
///
/// Parameters: `state` ∈ [0, 1], `loss` (dB).
#[derive(Debug)]
pub struct Switch1x2 {
    info: ModelInfo,
}

impl Default for Switch1x2 {
    fn default() -> Self {
        Switch1x2 {
            info: ModelInfo {
                name: "switch1x2",
                description: "1x2 routing switch; state 0 routes to O1, state 1 to O2",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![
                    ParamSpec::new("state", 0.0, "", "routing state: 0 to O1, 1 to O2"),
                    ParamSpec::new("loss", 0.0, "dB", "insertion loss"),
                ],
            },
        }
    }
}

impl Model for Switch1x2 {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let state = settings.resolve(&self.info.params[0]);
        let loss_db = settings.resolve(&self.info.params[1]);
        check_range("switch1x2", "state", state, 0.0, 1.0)?;
        check_range("switch1x2", "loss", loss_db, 0.0, 100.0)?;
        let amp = 10f64.powf(-loss_db / 20.0);
        let angle = state * FRAC_PI_2;
        let t = CMatrix::from_rows(&[
            vec![Complex::real(amp * angle.cos())],
            vec![Complex::new(0.0, amp * angle.sin())],
        ]);
        Ok(from_transfer(&["I1"], &["O1", "O2"], &t))
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s_of(model: &dyn Model, state: f64) -> SMatrix {
        let mut settings = Settings::new();
        settings.insert("state", state);
        model.s_matrix(1.55, &settings).unwrap()
    }

    #[test]
    fn bar_state_routes_straight() {
        let sw = Switch2x2::default();
        let s = s_of(&sw, 0.0);
        assert!((s.s("I1", "O1").unwrap().norm_sqr() - 1.0).abs() < 1e-12);
        assert!(s.s("I1", "O2").unwrap().abs() < 1e-12);
        assert!((s.s("I2", "O2").unwrap().norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_state_routes_across() {
        let sw = Switch2x2::default();
        let s = s_of(&sw, 1.0);
        assert!((s.s("I1", "O2").unwrap().norm_sqr() - 1.0).abs() < 1e-12);
        assert!(s.s("I1", "O1").unwrap().abs() < 1e-12);
        assert!((s.s("I2", "O1").unwrap().norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_state_splits_evenly() {
        let sw = Switch2x2::default();
        let s = s_of(&sw, 0.5);
        assert!((s.s("I1", "O1").unwrap().norm_sqr() - 0.5).abs() < 1e-12);
        assert!((s.s("I1", "O2").unwrap().norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn switch2x2_is_unitary_everywhere() {
        let sw = Switch2x2::default();
        for state in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let s = s_of(&sw, state);
            assert!(s.is_unitary(1e-12), "state {state}");
            assert!(s.is_reciprocal(1e-12), "state {state}");
        }
    }

    #[test]
    fn switch1x2_routes_by_state() {
        let sw = Switch1x2::default();
        let s0 = s_of(&sw, 0.0);
        assert!((s0.s("I1", "O1").unwrap().norm_sqr() - 1.0).abs() < 1e-12);
        assert!(s0.s("I1", "O2").unwrap().abs() < 1e-12);
        let s1 = s_of(&sw, 1.0);
        assert!((s1.s("I1", "O2").unwrap().norm_sqr() - 1.0).abs() < 1e-12);
        assert!(s1.s("I1", "O1").unwrap().abs() < 1e-12);
    }

    #[test]
    fn switch1x2_conserves_power() {
        let sw = Switch1x2::default();
        for state in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let s = s_of(&sw, state);
            let total = s.s("I1", "O1").unwrap().norm_sqr() + s.s("I1", "O2").unwrap().norm_sqr();
            assert!((total - 1.0).abs() < 1e-12, "state {state}");
        }
    }

    #[test]
    fn out_of_range_state_rejected() {
        let sw2 = Switch2x2::default();
        let sw1 = Switch1x2::default();
        let mut settings = Settings::new();
        settings.insert("state", 1.5);
        assert!(sw2.s_matrix(1.55, &settings).is_err());
        assert!(sw1.s_matrix(1.55, &settings).is_err());
    }

    #[test]
    fn loss_attenuates_routed_power() {
        let sw = Switch2x2::default();
        let mut settings = Settings::new();
        settings.insert("state", 1.0);
        settings.insert("loss", 3.0103);
        let s = sw.s_matrix(1.55, &settings).unwrap();
        assert!((s.s("I1", "O2").unwrap().norm_sqr() - 0.5).abs() < 1e-5);
    }
}
