//! Waveguide crossing.

use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::Complex;

/// Low-loss waveguide crossing.
///
/// Ports: `I1 → O1` and `I2 → O2` pass straight through; a small
/// crosstalk amplitude leaks `I1 → O2` / `I2 → O1`. Crossbar switch
/// fabrics route their column buses through these.
///
/// Parameters: `loss` (through loss, dB), `crosstalk` (power leakage, dB,
/// negative).
#[derive(Debug)]
pub struct Crossing {
    info: ModelInfo,
}

impl Default for Crossing {
    fn default() -> Self {
        Crossing {
            info: ModelInfo {
                name: "crossing",
                description: "Waveguide crossing: straight-through paths with weak crosstalk",
                inputs: vec!["I1".into(), "I2".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![
                    ParamSpec::new("loss", 0.1, "dB", "through-path insertion loss"),
                    ParamSpec::new("crosstalk", -40.0, "dB", "cross-path power leakage"),
                ],
            },
        }
    }
}

impl Model for Crossing {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let loss_db = settings.resolve(&self.info.params[0]);
        let xt_db = settings.resolve(&self.info.params[1]);
        check_range("crossing", "loss", loss_db, 0.0, 100.0)?;
        check_range("crossing", "crosstalk", xt_db, -300.0, 0.0)?;
        let through = Complex::real(10f64.powf(-loss_db / 20.0));
        let xt = Complex::new(0.0, 10f64.powf(xt_db / 20.0));
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", through);
        s.set_sym("I2", "O2", through);
        s.set_sym("I1", "O2", xt);
        s.set_sym("I2", "O1", xt);
        Ok(s)
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn through_dominates_crosstalk() {
        let x = Crossing::default();
        let s = x.s_matrix(1.55, &Settings::new()).unwrap();
        let thru = s.s("I1", "O1").unwrap().norm_sqr();
        let leak = s.s("I1", "O2").unwrap().norm_sqr();
        assert!(thru > 0.97);
        assert!(leak < 1.1e-4);
        assert!((picbench_math::power_ratio_to_db(leak) + 40.0).abs() < 0.1);
    }

    #[test]
    fn passivity_and_reciprocity() {
        let x = Crossing::default();
        let s = x.s_matrix(1.55, &Settings::new()).unwrap();
        assert!(s.is_passive(1e-9));
        assert!(s.is_reciprocal(1e-12));
    }

    #[test]
    fn ideal_crossing_is_lossless() {
        let x = Crossing::default();
        let mut settings = Settings::new();
        settings.insert("loss", 0.0);
        settings.insert("crosstalk", -300.0);
        let s = x.s_matrix(1.55, &settings).unwrap();
        assert!((s.s("I1", "O1").unwrap().abs() - 1.0).abs() < 1e-12);
        assert!(s.s("I1", "O2").unwrap().abs() < 1e-14);
    }

    #[test]
    fn positive_crosstalk_rejected() {
        let x = Crossing::default();
        let mut settings = Settings::new();
        settings.insert("crosstalk", 3.0);
        assert!(x.s_matrix(1.55, &settings).is_err());
    }
}
