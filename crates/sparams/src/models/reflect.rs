//! Reflective and fiber-interface elements: partial reflector and
//! grating coupler.

use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::Complex;

/// A partial mirror (e.g. a broadband Bragg reflector or facet).
///
/// Ports: `I1 ↔ O1`. Power reflectivity `reflectivity` is returned at
/// each port; the remainder transmits with a 90° phase (the lossless
/// symmetric-mirror convention `S = [[r, it], [it, r]]`, which is
/// unitary). Two of these around a waveguide form a Fabry-Perot cavity —
/// the validation workload for the simulator's multiple-reflection
/// handling.
///
/// Parameters: `reflectivity` ∈ [0, 1] (default 0.9), `loss` (dB).
#[derive(Debug)]
pub struct Reflector {
    info: ModelInfo,
}

impl Default for Reflector {
    fn default() -> Self {
        Reflector {
            info: ModelInfo {
                name: "reflector",
                description: "Partial mirror: reflects a set power fraction, transmits the rest",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params: vec![
                    ParamSpec::new("reflectivity", 0.9, "", "power reflectivity"),
                    ParamSpec::new("loss", 0.0, "dB", "excess insertion loss"),
                ],
            },
        }
    }
}

impl Model for Reflector {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let reflectivity = settings.resolve(&self.info.params[0]);
        let loss_db = settings.resolve(&self.info.params[1]);
        check_range("reflector", "reflectivity", reflectivity, 0.0, 1.0)?;
        check_range("reflector", "loss", loss_db, 0.0, 100.0)?;
        let amp = 10f64.powf(-loss_db / 20.0);
        let r = Complex::real(amp * reflectivity.sqrt());
        let t = Complex::new(0.0, amp * (1.0 - reflectivity).sqrt());
        let mut s = SMatrix::new(self.info.ports());
        s.set("I1", "I1", r);
        s.set("O1", "O1", r);
        s.set_sym("I1", "O1", t);
        Ok(s)
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

/// A fiber grating coupler with a Gaussian passband.
///
/// Ports: `I1` (fiber) ↔ `O1` (chip). The power transfer is
/// `-loss − ((λ − center)/(bandwidth1db/2))²` dB, i.e. `loss` dB at the
/// center wavelength and 1 dB more at ±half the 1 dB bandwidth.
///
/// Parameters: `center` (µm), `bandwidth1db` (µm), `loss` (dB).
#[derive(Debug)]
pub struct GratingCoupler {
    info: ModelInfo,
}

impl Default for GratingCoupler {
    fn default() -> Self {
        GratingCoupler {
            info: ModelInfo {
                name: "gc",
                description: "Fiber grating coupler with a Gaussian spectral response",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params: vec![
                    ParamSpec::new("center", 1.55, "um", "center wavelength"),
                    ParamSpec::new("bandwidth1db", 0.035, "um", "1 dB bandwidth"),
                    ParamSpec::new("loss", 3.0, "dB", "insertion loss at center"),
                ],
            },
        }
    }
}

impl Model for GratingCoupler {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let center = settings.resolve(&self.info.params[0]);
        let bandwidth = settings.resolve(&self.info.params[1]);
        let loss_db = settings.resolve(&self.info.params[2]);
        check_range("gc", "center", center, 0.5, 3.0)?;
        check_range("gc", "bandwidth1db", bandwidth, 1e-4, 1.0)?;
        check_range("gc", "loss", loss_db, 0.0, 100.0)?;
        let detune = (wavelength_um - center) / (bandwidth / 2.0);
        let total_db = loss_db + detune * detune;
        let amp = 10f64.powf(-total_db / 20.0);
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", Complex::real(amp));
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_reflector_is_unitary() {
        let m = Reflector::default();
        for reflectivity in [0.0, 0.3, 0.5, 0.9, 1.0] {
            let mut settings = Settings::new();
            settings.insert("reflectivity", reflectivity);
            let s = m.s_matrix(1.55, &settings).unwrap();
            assert!(s.is_unitary(1e-12), "R = {reflectivity}");
            assert!(s.is_reciprocal(1e-12));
            assert!((s.s("I1", "I1").unwrap().norm_sqr() - reflectivity).abs() < 1e-12);
        }
    }

    #[test]
    fn full_mirror_transmits_nothing() {
        let m = Reflector::default();
        let mut settings = Settings::new();
        settings.insert("reflectivity", 1.0);
        let s = m.s_matrix(1.55, &settings).unwrap();
        assert!(s.s("I1", "O1").unwrap().abs() < 1e-12);
    }

    #[test]
    fn grating_coupler_peaks_at_center() {
        let m = GratingCoupler::default();
        let s_center = m.s_matrix(1.55, &Settings::new()).unwrap();
        let s_off = m.s_matrix(1.58, &Settings::new()).unwrap();
        let p_center = s_center.s("I1", "O1").unwrap().norm_sqr();
        let p_off = s_off.s("I1", "O1").unwrap().norm_sqr();
        assert!(p_center > p_off);
        // 3 dB insertion loss at center: |S|² = 0.501.
        assert!((picbench_math::power_ratio_to_db(p_center) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn grating_coupler_one_db_bandwidth_definition() {
        let m = GratingCoupler::default();
        let settings = Settings::new();
        let at = |wl: f64| {
            picbench_math::power_ratio_to_db(
                m.s_matrix(wl, &settings)
                    .unwrap()
                    .s("I1", "O1")
                    .unwrap()
                    .norm_sqr(),
            )
        };
        let center = at(1.55);
        let edge = at(1.55 + 0.035 / 2.0);
        assert!((center - edge - 1.0).abs() < 1e-9, "{center} vs {edge}");
    }

    #[test]
    fn reflector_rejects_bad_reflectivity() {
        let m = Reflector::default();
        let mut settings = Settings::new();
        settings.insert("reflectivity", 1.5);
        assert!(matches!(
            m.s_matrix(1.55, &settings),
            Err(ModelError::InvalidValue { .. })
        ));
    }
}
