//! Directional coupler with adjustable coupling ratio.

use super::from_transfer;
use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::{CMatrix, Complex};

/// 2×2 directional coupler.
///
/// Ports: `I1, I2 → O1, O2`. The power coupling ratio `coupling` sets the
/// cross-port power; the bar amplitude is `√(1−κ)` and the cross amplitude
/// `i·√κ`. The non-linear-sign-gate golden design uses couplers with the
/// KLM reflectivities.
///
/// Parameters: `coupling` (power fraction to the cross port, default 0.5),
/// `loss` (excess loss in dB).
#[derive(Debug)]
pub struct Coupler {
    info: ModelInfo,
}

impl Default for Coupler {
    fn default() -> Self {
        Coupler {
            info: ModelInfo {
                name: "coupler",
                description: "Directional coupler with adjustable power coupling ratio",
                inputs: vec!["I1".into(), "I2".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![
                    ParamSpec::new(
                        "coupling",
                        0.5,
                        "",
                        "power coupling ratio to the cross port",
                    ),
                    ParamSpec::new("loss", 0.0, "dB", "excess insertion loss"),
                ],
            },
        }
    }
}

impl Model for Coupler {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let kappa = settings.resolve(&self.info.params[0]);
        let loss_db = settings.resolve(&self.info.params[1]);
        check_range("coupler", "coupling", kappa, 0.0, 1.0)?;
        check_range("coupler", "loss", loss_db, 0.0, 100.0)?;
        let amp = 10f64.powf(-loss_db / 20.0);
        let bar = Complex::real(amp * (1.0 - kappa).sqrt());
        let cross = Complex::new(0.0, amp * kappa.sqrt());
        let t = CMatrix::from_rows(&[vec![bar, cross], vec![cross, bar]]);
        Ok(from_transfer(&["I1", "I2"], &["O1", "O2"], &t))
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_50_50() {
        let c = Coupler::default();
        let s = c.s_matrix(1.55, &Settings::new()).unwrap();
        assert!((s.s("I1", "O1").unwrap().norm_sqr() - 0.5).abs() < 1e-12);
        assert!((s.s("I1", "O2").unwrap().norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coupling_sets_cross_power() {
        let c = Coupler::default();
        for kappa in [0.0, 0.1, 0.2265, 0.5, 0.9, 1.0] {
            let mut settings = Settings::new();
            settings.insert("coupling", kappa);
            let s = c.s_matrix(1.55, &settings).unwrap();
            assert!((s.s("I1", "O2").unwrap().norm_sqr() - kappa).abs() < 1e-12);
            assert!((s.s("I1", "O1").unwrap().norm_sqr() - (1.0 - kappa)).abs() < 1e-12);
            assert!(s.is_unitary(1e-12), "lossless coupler must be unitary");
        }
    }

    #[test]
    fn out_of_range_coupling_rejected() {
        let c = Coupler::default();
        for bad in [-0.1, 1.1, f64::NAN] {
            let mut settings = Settings::new();
            settings.insert("coupling", bad);
            assert!(c.s_matrix(1.55, &settings).is_err());
        }
    }

    #[test]
    fn reciprocity_holds() {
        let c = Coupler::default();
        let mut settings = Settings::new();
        settings.insert("coupling", 0.3);
        let s = c.s_matrix(1.55, &settings).unwrap();
        assert!(s.is_reciprocal(1e-12));
    }
}
