//! Auxiliary passive devices: asymmetric splitter and attenuator.

use super::from_transfer;
use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::{CMatrix, Complex};

/// 1×2 power splitter with an adjustable ratio.
///
/// Ports: `I1 → O1, O2` with power `ratio` to `O1` and `1 − ratio` to
/// `O2`. The QAM modulator golden designs use asymmetric splits to weight
/// their constellation branches.
///
/// Parameters: `ratio` ∈ [0, 1] (default 0.5), `loss` (dB).
#[derive(Debug)]
pub struct Splitter {
    info: ModelInfo,
}

impl Default for Splitter {
    fn default() -> Self {
        Splitter {
            info: ModelInfo {
                name: "splitter",
                description: "1x2 power splitter with adjustable split ratio",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![
                    ParamSpec::new("ratio", 0.5, "", "power fraction routed to O1"),
                    ParamSpec::new("loss", 0.0, "dB", "excess insertion loss"),
                ],
            },
        }
    }
}

impl Model for Splitter {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let ratio = settings.resolve(&self.info.params[0]);
        let loss_db = settings.resolve(&self.info.params[1]);
        check_range("splitter", "ratio", ratio, 0.0, 1.0)?;
        check_range("splitter", "loss", loss_db, 0.0, 100.0)?;
        let amp = 10f64.powf(-loss_db / 20.0);
        let t = CMatrix::from_rows(&[
            vec![Complex::real(amp * ratio.sqrt())],
            vec![Complex::real(amp * (1.0 - ratio).sqrt())],
        ]);
        Ok(from_transfer(&["I1"], &["O1", "O2"], &t))
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

/// Fixed optical attenuator.
///
/// Ports: `I1 → O1`. Parameters: `attenuation` (power attenuation in dB).
#[derive(Debug)]
pub struct Attenuator {
    info: ModelInfo,
}

impl Default for Attenuator {
    fn default() -> Self {
        Attenuator {
            info: ModelInfo {
                name: "attenuator",
                description: "Fixed optical attenuator",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params: vec![ParamSpec::new(
                    "attenuation",
                    3.0103,
                    "dB",
                    "power attenuation",
                )],
            },
        }
    }
}

impl Model for Attenuator {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let att_db = settings.resolve(&self.info.params[0]);
        check_range("attenuator", "attenuation", att_db, 0.0, 300.0)?;
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", Complex::real(10f64.powf(-att_db / 20.0)));
        Ok(s)
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_ratio_controls_power() {
        let sp = Splitter::default();
        for ratio in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let mut settings = Settings::new();
            settings.insert("ratio", ratio);
            let s = sp.s_matrix(1.55, &settings).unwrap();
            assert!((s.s("I1", "O1").unwrap().norm_sqr() - ratio).abs() < 1e-12);
            assert!((s.s("I1", "O2").unwrap().norm_sqr() - (1.0 - ratio)).abs() < 1e-12);
        }
    }

    #[test]
    fn splitter_rejects_bad_ratio() {
        let sp = Splitter::default();
        let mut settings = Settings::new();
        settings.insert("ratio", 1.2);
        assert!(sp.s_matrix(1.55, &settings).is_err());
    }

    #[test]
    fn attenuator_default_is_half_power() {
        let att = Attenuator::default();
        let s = att.s_matrix(1.55, &Settings::new()).unwrap();
        assert!((s.s("I1", "O1").unwrap().norm_sqr() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn attenuator_20db_is_one_percent() {
        let att = Attenuator::default();
        let mut settings = Settings::new();
        settings.insert("attenuation", 20.0);
        let s = att.s_matrix(1.55, &settings).unwrap();
        assert!((s.s("I1", "O1").unwrap().norm_sqr() - 0.01).abs() < 1e-10);
    }

    #[test]
    fn negative_attenuation_rejected() {
        let att = Attenuator::default();
        let mut settings = Settings::new();
        settings.insert("attenuation", -3.0);
        assert!(matches!(
            att.s_matrix(1.55, &settings),
            Err(ModelError::InvalidValue { .. })
        ));
    }
}
