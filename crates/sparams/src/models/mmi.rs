//! Multimode interference couplers (1×2 and 2×2).

use super::from_transfer;
use crate::model::{check_known_params, check_range, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::{CMatrix, Complex};

const SQRT_HALF: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// 1×2 multimode interference splitter/combiner.
///
/// Ports: `I1 → O1, O2` (equal split). Because the S-matrix is reciprocal,
/// the same component acts as a 2→1 combiner when driven through `O1`/`O2`
/// — exactly how the paper's golden `MZI ps` design uses its second MMI
/// (Fig. 4).
///
/// Parameters: `loss` (excess insertion loss in dB).
#[derive(Debug)]
pub struct Mmi1x2 {
    info: ModelInfo,
}

impl Default for Mmi1x2 {
    fn default() -> Self {
        Mmi1x2 {
            info: ModelInfo {
                name: "mmi1x2",
                description: "1x2 multimode interference splitter (equal power split)",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![ParamSpec::new("loss", 0.0, "dB", "excess insertion loss")],
            },
        }
    }
}

impl Model for Mmi1x2 {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let loss_db = settings.resolve(&self.info.params[0]);
        check_range("mmi1x2", "loss", loss_db, 0.0, 100.0)?;
        let t = 10f64.powf(-loss_db / 20.0) * SQRT_HALF;
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", Complex::real(t));
        s.set_sym("I1", "O2", Complex::real(t));
        Ok(s)
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

/// 2×2 multimode interference coupler (quadrature hybrid).
///
/// Ports: `I1, I2 → O1, O2`. The cross path picks up a 90° phase relative
/// to the bar path, which is what makes Mach-Zehnder structures built from
/// two of these interfere correctly.
///
/// Parameters: `loss` (excess insertion loss in dB).
#[derive(Debug)]
pub struct Mmi2x2 {
    info: ModelInfo,
}

impl Default for Mmi2x2 {
    fn default() -> Self {
        Mmi2x2 {
            info: ModelInfo {
                name: "mmi2x2",
                description: "2x2 multimode interference coupler (50/50, 90-degree hybrid)",
                inputs: vec!["I1".into(), "I2".into()],
                outputs: vec!["O1".into(), "O2".into()],
                params: vec![ParamSpec::new("loss", 0.0, "dB", "excess insertion loss")],
            },
        }
    }
}

impl Model for Mmi2x2 {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, _wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let loss_db = settings.resolve(&self.info.params[0]);
        check_range("mmi2x2", "loss", loss_db, 0.0, 100.0)?;
        let amp = 10f64.powf(-loss_db / 20.0) * SQRT_HALF;
        let bar = Complex::real(amp);
        let cross = Complex::new(0.0, amp);
        let t = CMatrix::from_rows(&[vec![bar, cross], vec![cross, bar]]);
        Ok(from_transfer(&["I1", "I2"], &["O1", "O2"], &t))
    }

    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        true // ideal dispersionless model: the matrix never depends on wavelength
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmi1x2_splits_power_equally() {
        let mmi = Mmi1x2::default();
        let s = mmi.s_matrix(1.55, &Settings::new()).unwrap();
        let p1 = s.s("I1", "O1").unwrap().norm_sqr();
        let p2 = s.s("I1", "O2").unwrap().norm_sqr();
        assert!((p1 - 0.5).abs() < 1e-12);
        assert!((p2 - 0.5).abs() < 1e-12);
        assert!(s.is_reciprocal(1e-12));
        assert!(s.is_passive(1e-12));
    }

    #[test]
    fn mmi1x2_loss_reduces_power() {
        let mmi = Mmi1x2::default();
        let mut settings = Settings::new();
        settings.insert("loss", 3.0103);
        let s = mmi.s_matrix(1.55, &settings).unwrap();
        let p = s.s("I1", "O1").unwrap().norm_sqr();
        assert!((p - 0.25).abs() < 1e-5);
    }

    #[test]
    fn mmi1x2_negative_loss_rejected() {
        let mmi = Mmi1x2::default();
        let mut settings = Settings::new();
        settings.insert("loss", -1.0);
        assert!(matches!(
            mmi.s_matrix(1.55, &settings),
            Err(ModelError::InvalidValue { .. })
        ));
    }

    #[test]
    fn mmi2x2_is_lossless_unitary() {
        let mmi = Mmi2x2::default();
        let s = mmi.s_matrix(1.55, &Settings::new()).unwrap();
        assert!(s.is_unitary(1e-12));
        assert!(s.is_reciprocal(1e-12));
    }

    #[test]
    fn mmi2x2_cross_path_is_quadrature() {
        let mmi = Mmi2x2::default();
        let s = mmi.s_matrix(1.55, &Settings::new()).unwrap();
        let bar = s.s("I1", "O1").unwrap();
        let cross = s.s("I1", "O2").unwrap();
        assert!(((cross / bar).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn two_mmi2x2_in_series_form_full_cross() {
        // A balanced MZI with zero phase difference: H·H = i·X.
        let mmi = Mmi2x2::default();
        let s = mmi.s_matrix(1.55, &Settings::new()).unwrap();
        let t = CMatrix::from_rows(&[
            vec![s.s("I1", "O1").unwrap(), s.s("I2", "O1").unwrap()],
            vec![s.s("I1", "O2").unwrap(), s.s("I2", "O2").unwrap()],
        ]);
        let tt = &t * &t;
        assert!(tt[(0, 0)].abs() < 1e-12);
        assert!((tt[(0, 1)] - Complex::i()).abs() < 1e-12);
    }
}
