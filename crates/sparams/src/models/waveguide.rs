//! Straight waveguide and phase shifter.

use super::{guide_param_specs, propagation};
use crate::model::{check_known_params, Model, ModelError, ModelInfo};
use crate::{ParamSpec, SMatrix, Settings};
use picbench_math::Complex;

/// Resolved guided-propagation parameters shared by several models.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GuideParams {
    pub neff: f64,
    pub ng: f64,
    pub loss: f64,
    pub wl0: f64,
}

impl GuideParams {
    pub(crate) fn resolve(settings: &Settings) -> Self {
        let specs = guide_param_specs();
        GuideParams {
            neff: settings.resolve(&specs[0]),
            ng: settings.resolve(&specs[1]),
            loss: settings.resolve(&specs[2]),
            wl0: settings.resolve(&specs[3]),
        }
    }

    pub(crate) fn propagate(&self, wavelength_um: f64, length_um: f64) -> Complex {
        propagation(
            wavelength_um,
            length_um,
            self.neff,
            self.ng,
            self.wl0,
            self.loss,
        )
    }
}

/// A straight single-mode waveguide section.
///
/// Ports: `I1 → O1`. Parameters: `length` plus the shared dispersion block.
///
/// # Examples
///
/// ```
/// use picbench_sparams::{models::Waveguide, Model, Settings};
///
/// let wg = Waveguide::default();
/// let mut settings = Settings::new();
/// settings.insert("length", 100.0);
/// settings.insert("loss", 0.0);
/// let s = wg.s_matrix(1.55, &settings)?;
/// assert!((s.s("I1", "O1").unwrap().abs() - 1.0).abs() < 1e-12);
/// # Ok::<(), picbench_sparams::ModelError>(())
/// ```
#[derive(Debug)]
pub struct Waveguide {
    info: ModelInfo,
}

impl Default for Waveguide {
    fn default() -> Self {
        let mut params = vec![ParamSpec::new("length", 10.0, "um", "physical length")];
        params.extend(guide_param_specs());
        Waveguide {
            info: ModelInfo {
                name: "waveguide",
                description: "Straight waveguide section with dispersion and propagation loss",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params,
            },
        }
    }
}

impl Model for Waveguide {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let length = settings.resolve(&self.info.params[0]);
        let guide = GuideParams::resolve(settings);
        let mut s = SMatrix::new(self.info.ports());
        s.set_sym("I1", "O1", guide.propagate(wavelength_um, length));
        Ok(s)
    }
}

/// A thermo/electro-optic phase shifter: a waveguide section with an extra
/// programmable phase.
///
/// Ports: `I1 → O1`. Parameters: `length`, `phase` plus the dispersion
/// block. The paper's MZI-with-phase-shifter problem (`MZI ps`) places one
/// of these on the top arm.
#[derive(Debug)]
pub struct PhaseShifter {
    info: ModelInfo,
}

impl Default for PhaseShifter {
    fn default() -> Self {
        let mut params = vec![
            ParamSpec::new("length", 10.0, "um", "physical length"),
            ParamSpec::new("phase", 0.0, "rad", "additional programmable phase"),
        ];
        params.extend(guide_param_specs());
        PhaseShifter {
            info: ModelInfo {
                name: "phaseshifter",
                description: "Waveguide phase shifter with programmable additional phase",
                inputs: vec!["I1".into()],
                outputs: vec!["O1".into()],
                params,
            },
        }
    }
}

impl Model for PhaseShifter {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        check_known_params(&self.info, settings)?;
        let length = settings.resolve(&self.info.params[0]);
        let phase = settings.resolve(&self.info.params[1]);
        let guide = GuideParams::resolve(settings);
        let mut s = SMatrix::new(self.info.ports());
        let t = guide.propagate(wavelength_um, length) * Complex::cis(phase);
        s.set_sym("I1", "O1", t);
        Ok(s)
    }

    fn is_wavelength_independent(&self, settings: &Settings) -> bool {
        // With zero physical length only the programmable phase remains,
        // and that does not disperse. Mesh goldens use exactly this
        // configuration for their output phase screens.
        settings.resolve(&self.info.params[0]) == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveguide_is_reciprocal_and_passive() {
        let wg = Waveguide::default();
        let s = wg.s_matrix(1.55, &Settings::new()).unwrap();
        assert!(s.is_reciprocal(1e-12));
        assert!(s.is_passive(1e-12));
        assert_eq!(s.s("I1", "I1"), Some(Complex::ZERO));
    }

    #[test]
    fn waveguide_phase_scales_with_length() {
        let wg = Waveguide::default();
        let mut s1 = Settings::new();
        s1.insert("length", 1.0);
        s1.insert("loss", 0.0);
        let mut s2 = Settings::new();
        s2.insert("length", 2.0);
        s2.insert("loss", 0.0);
        let t1 = wg.s_matrix(1.55, &s1).unwrap().s("I1", "O1").unwrap();
        let t2 = wg.s_matrix(1.55, &s2).unwrap().s("I1", "O1").unwrap();
        // Doubling the length squares the unit-loss transfer.
        assert!((t1 * t1 - t2).abs() < 1e-10);
    }

    #[test]
    fn waveguide_rejects_unknown_setting() {
        let wg = Waveguide::default();
        let mut s = Settings::new();
        s.insert("bananas", 1.0);
        assert!(matches!(
            wg.s_matrix(1.55, &s),
            Err(ModelError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn phase_shifter_adds_exact_phase() {
        let ps = PhaseShifter::default();
        let base = ps
            .s_matrix(1.55, &Settings::new())
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        let mut with_phase = Settings::new();
        with_phase.insert("phase", std::f64::consts::FRAC_PI_2);
        let shifted = ps
            .s_matrix(1.55, &with_phase)
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        let ratio = shifted / base;
        assert!((ratio.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((ratio.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pi_phase_flips_sign() {
        let ps = PhaseShifter::default();
        let mut s = Settings::new();
        s.insert("phase", std::f64::consts::PI);
        s.insert("loss", 0.0);
        let mut s0 = Settings::new();
        s0.insert("loss", 0.0);
        let t_pi = ps.s_matrix(1.55, &s).unwrap().s("I1", "O1").unwrap();
        let t_0 = ps.s_matrix(1.55, &s0).unwrap().s("I1", "O1").unwrap();
        assert!((t_pi + t_0).abs() < 1e-12);
    }
}
