//! Port naming conventions.
//!
//! PICBench netlists follow the paper's convention: input ports are named
//! `I1`, `I2`, …, output ports `O1`, `O2`, …. This module centralises
//! parsing and classification of those names.

use std::fmt;

/// The nominal signal direction of a port, inferred from its name.
///
/// Direction is a *documentation* concept: S-parameter models are
/// bidirectional, and the benchmark's golden designs routinely drive
/// combiner MMIs through their `O` ports. The benchmark only uses the
/// direction to check external port counts against a problem's
/// specification (the "Wrong ports number" failure type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Name starts with `I`.
    Input,
    /// Name starts with `O`.
    Output,
    /// Any other prefix.
    Unknown,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDirection::Input => write!(f, "input"),
            PortDirection::Output => write!(f, "output"),
            PortDirection::Unknown => write!(f, "unknown"),
        }
    }
}

/// Classifies a port name by its leading letter.
///
/// ```
/// use picbench_sparams::{port_direction, PortDirection};
/// assert_eq!(port_direction("I2"), PortDirection::Input);
/// assert_eq!(port_direction("O1"), PortDirection::Output);
/// assert_eq!(port_direction("north"), PortDirection::Unknown);
/// ```
pub fn port_direction(name: &str) -> PortDirection {
    match name.chars().next() {
        Some('I') => PortDirection::Input,
        Some('O') => PortDirection::Output,
        _ => PortDirection::Unknown,
    }
}

/// Generates the conventional port name for an input index (1-based).
///
/// ```
/// use picbench_sparams::input_port;
/// assert_eq!(input_port(3), "I3");
/// ```
pub fn input_port(index: usize) -> String {
    format!("I{index}")
}

/// Generates the conventional port name for an output index (1-based).
///
/// ```
/// use picbench_sparams::output_port;
/// assert_eq!(output_port(1), "O1");
/// ```
pub fn output_port(index: usize) -> String {
    format!("O{index}")
}

/// Builds the standard port list for a device with `n_in` inputs and
/// `n_out` outputs: `I1..In, O1..Om`.
///
/// ```
/// use picbench_sparams::standard_ports;
/// assert_eq!(standard_ports(2, 2), vec!["I1", "I2", "O1", "O2"]);
/// ```
pub fn standard_ports(n_in: usize, n_out: usize) -> Vec<String> {
    let mut ports = Vec::with_capacity(n_in + n_out);
    for i in 1..=n_in {
        ports.push(input_port(i));
    }
    for o in 1..=n_out {
        ports.push(output_port(o));
    }
    ports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classification() {
        assert_eq!(port_direction("I1"), PortDirection::Input);
        assert_eq!(port_direction("I17"), PortDirection::Input);
        assert_eq!(port_direction("O4"), PortDirection::Output);
        assert_eq!(port_direction(""), PortDirection::Unknown);
        assert_eq!(port_direction("x1"), PortDirection::Unknown);
    }

    #[test]
    fn standard_ports_layout() {
        assert_eq!(standard_ports(1, 2), vec!["I1", "O1", "O2"]);
        assert_eq!(standard_ports(0, 1), vec!["O1"]);
        let p = standard_ports(8, 8);
        assert_eq!(p.len(), 16);
        assert_eq!(p[0], "I1");
        assert_eq!(p[15], "O8");
    }

    #[test]
    fn direction_display() {
        assert_eq!(PortDirection::Input.to_string(), "input");
        assert_eq!(PortDirection::Output.to_string(), "output");
        assert_eq!(PortDirection::Unknown.to_string(), "unknown");
    }
}
