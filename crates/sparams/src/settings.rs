//! Component settings and parameter metadata.
//!
//! Netlist instances carry a `settings` object overriding model defaults.
//! Models publish their parameters as [`ParamSpec`]s; that metadata is also
//! what the prompt kit renders into the "API document" section of the
//! system prompt (Fig. 3 of the paper).

use std::collections::BTreeMap;
use std::fmt;

/// Declarative description of one model parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as it appears in netlists, e.g. `delta_length`.
    pub name: &'static str,
    /// Default value applied when the netlist omits the parameter.
    pub default: f64,
    /// Human-readable unit, e.g. `um`, `rad`, `dB/cm` (empty if unitless).
    pub unit: &'static str,
    /// One-line description used in the generated API document.
    pub description: &'static str,
}

impl ParamSpec {
    /// Creates a parameter spec.
    pub const fn new(
        name: &'static str,
        default: f64,
        unit: &'static str,
        description: &'static str,
    ) -> Self {
        ParamSpec {
            name,
            default,
            unit,
            description,
        }
    }
}

impl fmt::Display for ParamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unit.is_empty() {
            write!(
                f,
                "{} (default {}): {}",
                self.name, self.default, self.description
            )
        } else {
            write!(
                f,
                "{} (default {} {}): {}",
                self.name, self.default, self.unit, self.description
            )
        }
    }
}

/// A set of parameter values supplied by a netlist instance.
///
/// # Examples
///
/// ```
/// use picbench_sparams::Settings;
///
/// let mut s = Settings::new();
/// s.insert("delta_length", 10.0);
/// assert_eq!(s.get_or("delta_length", 0.0), 10.0);
/// assert_eq!(s.get_or("phase", 1.5), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Settings {
    values: BTreeMap<String, f64>,
}

impl Settings {
    /// Creates an empty settings map.
    pub fn new() -> Self {
        Settings::default()
    }

    /// Inserts or replaces a value, returning the previous one if any.
    pub fn insert(&mut self, name: impl Into<String>, value: f64) -> Option<f64> {
        self.values.insert(name.into(), value)
    }

    /// Looks up a value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Looks up a value, falling back to `default`.
    pub fn get_or(&self, name: &str, default: f64) -> f64 {
        self.get(name).unwrap_or(default)
    }

    /// Resolves a parameter against its spec (netlist value or default).
    pub fn resolve(&self, spec: &ParamSpec) -> f64 {
        self.get_or(spec.name, spec.default)
    }

    /// Number of explicitly provided values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values were provided.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of provided parameters that are not in `specs` — used to flag
    /// hallucinated parameters in generated netlists.
    pub fn unknown_params<'a>(&'a self, specs: &[ParamSpec]) -> Vec<&'a str> {
        self.values
            .keys()
            .filter(|k| !specs.iter().any(|s| s.name == k.as_str()))
            .map(String::as_str)
            .collect()
    }
}

impl FromIterator<(String, f64)> for Settings {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        Settings {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, f64)> for Settings {
    fn extend<I: IntoIterator<Item = (String, f64)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LENGTH: ParamSpec = ParamSpec::new("length", 10.0, "um", "waveguide length");
    const PHASE: ParamSpec = ParamSpec::new("phase", 0.0, "rad", "extra phase");

    #[test]
    fn insert_and_get() {
        let mut s = Settings::new();
        assert!(s.is_empty());
        assert_eq!(s.insert("length", 20.0), None);
        assert_eq!(s.insert("length", 30.0), Some(20.0));
        assert_eq!(s.get("length"), Some(30.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn resolve_uses_default_when_absent() {
        let s = Settings::new();
        assert_eq!(s.resolve(&LENGTH), 10.0);
        let s: Settings = [("length".to_string(), 42.0)].into_iter().collect();
        assert_eq!(s.resolve(&LENGTH), 42.0);
    }

    #[test]
    fn unknown_params_detected() {
        let mut s = Settings::new();
        s.insert("length", 1.0);
        s.insert("bogus", 2.0);
        let unknown = s.unknown_params(&[LENGTH, PHASE]);
        assert_eq!(unknown, vec!["bogus"]);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Settings::new();
        s.insert("z", 1.0);
        s.insert("a", 2.0);
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn param_spec_display() {
        assert_eq!(
            LENGTH.to_string(),
            "length (default 10 um): waveguide length"
        );
        let unitless = ParamSpec::new("ratio", 0.5, "", "power ratio");
        assert_eq!(unitless.to_string(), "ratio (default 0.5): power ratio");
    }
}
