//! # picbench-sparams
//!
//! Photonic component S-parameter models for the PICBench-rs reproduction.
//!
//! This crate provides the component vocabulary the benchmark's netlists
//! reference — the Rust counterpart of the component library the paper
//! constructs for SAX (§IV-A: "waveguides, couplers, MMIs, MZIs, MRRs, and
//! phase shifters"). Each model:
//!
//! * publishes machine-readable metadata ([`ModelInfo`], [`ParamSpec`]) from
//!   which the prompt kit renders the system prompt's "API document",
//! * evaluates a port-labelled [`SMatrix`] at any wavelength, and
//! * validates its settings (unknown parameters and out-of-range values are
//!   reported as [`ModelError`]s, which the benchmark classifies).
//!
//! ## Example
//!
//! ```
//! use picbench_sparams::{models::Mzi, Model, Settings};
//!
//! let mzi = Mzi::default();
//! let mut settings = Settings::new();
//! settings.insert("delta_length", 10.0);
//! let s = mzi.s_matrix(1.55, &settings)?;
//! println!("T = {}", s.s("I1", "O1").unwrap().norm_sqr());
//! # Ok::<(), picbench_sparams::ModelError>(())
//! ```

#![warn(missing_docs)]

mod memo;
mod model;
pub mod models;
mod port;
mod settings;
mod smatrix;

pub use memo::{MemoResult, SMatrixMemo};
pub use model::{check_known_params, check_range, Model, ModelError, ModelInfo};
pub use port::{input_port, output_port, port_direction, standard_ports, PortDirection};
pub use settings::{ParamSpec, Settings};
pub use smatrix::SMatrix;

use std::sync::Arc;

/// All built-in models, in API-document order.
///
/// This is the device set the system prompt offers to the language model
/// ("You have access to the following built-in devices, only these devices
/// are permitted unless otherwise specified").
pub fn builtin_models() -> Vec<Arc<dyn Model>> {
    vec![
        Arc::new(models::Waveguide::default()),
        Arc::new(models::PhaseShifter::default()),
        Arc::new(models::Mmi1x2::default()),
        Arc::new(models::Mmi2x2::default()),
        Arc::new(models::Coupler::default()),
        Arc::new(models::Mzi::default()),
        Arc::new(models::Mzi2x2::default()),
        Arc::new(models::Mzm::default()),
        Arc::new(models::RingAllPass::default()),
        Arc::new(models::RingAddDrop::default()),
        Arc::new(models::Crossing::default()),
        Arc::new(models::Switch1x2::default()),
        Arc::new(models::Switch2x2::default()),
        Arc::new(models::Splitter::default()),
        Arc::new(models::Attenuator::default()),
        Arc::new(models::Reflector::default()),
        Arc::new(models::GratingCoupler::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_model_names_are_unique() {
        let models = builtin_models();
        let mut names: Vec<&str> = models.iter().map(|m| m.info().name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate model names");
    }

    #[test]
    fn builtin_models_cover_paper_component_set() {
        let models = builtin_models();
        let names: Vec<&str> = models.iter().map(|m| m.info().name).collect();
        for required in [
            "waveguide",
            "coupler",
            "mmi1x2",
            "mmi2x2",
            "mzi",
            "ringap",
            "ringad",
            "phaseshifter",
        ] {
            assert!(names.contains(&required), "missing paper model {required}");
        }
    }

    #[test]
    fn all_builtins_evaluate_at_defaults() {
        for model in builtin_models() {
            let s = model
                .s_matrix(1.55, &Settings::new())
                .unwrap_or_else(|e| panic!("{} failed: {e}", model.info().name));
            assert_eq!(s.dim(), model.info().ports().len());
            assert!(
                s.is_passive(1e-9),
                "{} is not passive at defaults",
                model.info().name
            );
            assert!(
                s.is_reciprocal(1e-9),
                "{} is not reciprocal at defaults",
                model.info().name
            );
        }
    }

    #[test]
    fn all_builtins_reject_unknown_parameter() {
        for model in builtin_models() {
            let mut settings = Settings::new();
            settings.insert("definitely_not_a_param", 1.0);
            assert!(
                matches!(
                    model.s_matrix(1.55, &settings),
                    Err(ModelError::UnknownParameter { .. })
                ),
                "{} accepted an unknown parameter",
                model.info().name
            );
        }
    }

    #[test]
    fn wavelength_independence_claims_are_truthful() {
        // A model that declares itself dispersionless must produce the
        // same matrix across the band — otherwise the sweep memo would
        // silently corrupt results.
        let mut claimed = 0;
        for model in builtin_models() {
            let settings = Settings::new();
            if !model.is_wavelength_independent(&settings) {
                continue;
            }
            claimed += 1;
            let reference = model.s_matrix(1.51, &settings).unwrap();
            for wl in [1.53, 1.55, 1.59] {
                let other = model.s_matrix(wl, &settings).unwrap();
                assert_eq!(
                    reference.matrix(),
                    other.matrix(),
                    "{} claims wavelength independence but disperses",
                    model.info().name
                );
            }
        }
        assert!(claimed >= 8, "expected most ideal models to claim the hint");
    }

    #[test]
    fn model_names_have_no_underscores() {
        // Table II: "Underscores are prohibited in component names."
        for model in builtin_models() {
            assert!(
                !model.info().name.contains('_'),
                "model name {} contains an underscore",
                model.info().name
            );
        }
    }
}
