//! Port-labelled scattering matrices.

use crate::port::port_direction;
use crate::PortDirection;
use picbench_math::{CMatrix, Complex};
use std::fmt;

/// A scattering matrix whose rows/columns are addressed by port name.
///
/// Convention: with incident amplitudes `a` and outgoing amplitudes `b`
/// indexed by the same port list, `b = S·a`. The transfer from port `p`
/// to port `q` is therefore the entry at row `q`, column `p`, exposed as
/// [`SMatrix::s`]`(p, q)`.
///
/// # Examples
///
/// ```
/// use picbench_sparams::SMatrix;
/// use picbench_math::Complex;
///
/// let mut s = SMatrix::new(vec!["I1".into(), "O1".into()]);
/// s.set_sym("I1", "O1", Complex::cis(0.3));
/// assert!((s.s("I1", "O1").unwrap().abs() - 1.0).abs() < 1e-12);
/// assert!(s.is_reciprocal(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SMatrix {
    ports: Vec<String>,
    m: CMatrix,
}

impl SMatrix {
    /// Creates an all-zero scattering matrix over the given port list.
    ///
    /// # Panics
    ///
    /// Panics if the port list contains duplicates.
    pub fn new(ports: Vec<String>) -> Self {
        for (i, p) in ports.iter().enumerate() {
            assert!(
                !ports[..i].contains(p),
                "duplicate port name {p:?} in S-matrix"
            );
        }
        let n = ports.len();
        SMatrix {
            ports,
            m: CMatrix::zeros(n, n),
        }
    }

    /// Creates a scattering matrix from a port list and a dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square with dimension `ports.len()`.
    pub fn from_matrix(ports: Vec<String>, m: CMatrix) -> Self {
        assert!(m.is_square(), "S-matrix must be square");
        assert_eq!(m.rows(), ports.len(), "port count must match matrix size");
        let mut s = SMatrix::new(ports);
        s.m = m;
        s
    }

    /// The port names, in index order.
    pub fn ports(&self) -> &[String] {
        &self.ports
    }

    /// Number of ports.
    pub fn dim(&self) -> usize {
        self.ports.len()
    }

    /// The underlying dense matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.m
    }

    /// Mutable access to the underlying dense matrix, for sweep engines
    /// that fill preallocated samples in place.
    ///
    /// The caller must keep the matrix square with dimension
    /// [`SMatrix::dim`] — [`CMatrix::copy_from`] from an equally sized
    /// matrix is the intended use.
    pub fn matrix_mut(&mut self) -> &mut CMatrix {
        &mut self.m
    }

    /// Index of a port by name.
    pub fn port_index(&self, name: &str) -> Option<usize> {
        self.ports.iter().position(|p| p == name)
    }

    /// Transfer coefficient from `from` to `to`, or `None` if either port
    /// does not exist.
    pub fn s(&self, from: &str, to: &str) -> Option<Complex> {
        let f = self.port_index(from)?;
        let t = self.port_index(to)?;
        Some(self.m[(t, f)])
    }

    /// Sets the transfer coefficient from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either port does not exist.
    pub fn set(&mut self, from: &str, to: &str, value: Complex) {
        let f = self
            .port_index(from)
            .unwrap_or_else(|| panic!("unknown port {from:?}"));
        let t = self
            .port_index(to)
            .unwrap_or_else(|| panic!("unknown port {to:?}"));
        self.m[(t, f)] = value;
    }

    /// Sets the transfer symmetrically in both directions (reciprocal
    /// passive device).
    ///
    /// # Panics
    ///
    /// Panics if either port does not exist.
    pub fn set_sym(&mut self, a: &str, b: &str, value: Complex) {
        self.set(a, b, value);
        self.set(b, a, value);
    }

    /// Whether `S = Sᵀ` within `tol` (reciprocity).
    pub fn is_reciprocal(&self, tol: f64) -> bool {
        self.reciprocity_defect() <= tol
    }

    /// Largest entry-wise |S − Sᵀ| — zero for a perfectly reciprocal
    /// network. The quantitative form of [`SMatrix::is_reciprocal`],
    /// used by conformance oracles to report *how far* a matrix is from
    /// reciprocity.
    pub fn reciprocity_defect(&self) -> f64 {
        self.m.max_abs_diff(&self.m.transpose())
    }

    /// Whether the matrix is unitary within `tol` (lossless network).
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.m.is_unitary(tol)
    }

    /// Largest entry-wise |S†S − I| — zero for a perfectly unitary
    /// (lossless) network. The quantitative form of
    /// [`SMatrix::is_unitary`].
    pub fn unitarity_defect(&self) -> f64 {
        let n = self.dim();
        let mut worst = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                let mut acc = Complex::ZERO;
                for k in 0..n {
                    acc += self.m[(k, r)].conj() * self.m[(k, c)];
                }
                if r == c {
                    acc -= Complex::ONE;
                }
                worst = worst.max(acc.abs());
            }
        }
        worst
    }

    /// Largest column power sum in excess of 1 — zero for a passive
    /// network. The quantitative form of [`SMatrix::is_passive`].
    pub fn passivity_defect(&self) -> f64 {
        let mut worst = 0.0f64;
        for c in 0..self.dim() {
            let power: f64 = (0..self.dim()).map(|r| self.m[(r, c)].norm_sqr()).sum();
            worst = worst.max(power - 1.0);
        }
        worst.max(0.0)
    }

    /// Whether the network is passive: no column's total output power
    /// exceeds `1 + tol`.
    pub fn is_passive(&self, tol: f64) -> bool {
        for c in 0..self.dim() {
            let power: f64 = (0..self.dim()).map(|r| self.m[(r, c)].norm_sqr()).sum();
            if power > 1.0 + tol {
                return false;
            }
        }
        true
    }

    /// Ports whose name classifies as an input (`I*`).
    pub fn input_ports(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| port_direction(p) == PortDirection::Input)
            .map(String::as_str)
            .collect()
    }

    /// Ports whose name classifies as an output (`O*`).
    pub fn output_ports(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| port_direction(p) == PortDirection::Output)
            .map(String::as_str)
            .collect()
    }

    /// Largest entry-wise magnitude difference between two S-matrices with
    /// identical port lists.
    ///
    /// # Panics
    ///
    /// Panics if the port lists differ.
    pub fn max_abs_diff(&self, other: &SMatrix) -> f64 {
        assert_eq!(self.ports, other.ports, "port lists differ");
        self.m.max_abs_diff(&other.m)
    }
}

impl fmt::Display for SMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "S-matrix over ports {:?}:", self.ports)?;
        write!(f, "{}", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_port() -> SMatrix {
        let mut s = SMatrix::new(vec!["I1".into(), "O1".into()]);
        s.set_sym("I1", "O1", Complex::new(0.0, 1.0));
        s
    }

    #[test]
    fn set_get_roundtrip() {
        let s = two_port();
        assert_eq!(s.s("I1", "O1"), Some(Complex::i()));
        assert_eq!(s.s("O1", "I1"), Some(Complex::i()));
        assert_eq!(s.s("I1", "I1"), Some(Complex::ZERO));
        assert_eq!(s.s("I1", "bogus"), None);
    }

    #[test]
    fn directional_set() {
        let mut s = SMatrix::new(vec!["I1".into(), "O1".into()]);
        s.set("I1", "O1", Complex::ONE);
        assert_eq!(s.s("I1", "O1"), Some(Complex::ONE));
        assert_eq!(s.s("O1", "I1"), Some(Complex::ZERO));
        assert!(!s.is_reciprocal(1e-12));
    }

    #[test]
    fn unitarity_and_passivity() {
        let s = two_port();
        assert!(s.is_unitary(1e-12));
        assert!(s.is_passive(1e-12));

        let mut lossy = SMatrix::new(vec!["I1".into(), "O1".into()]);
        lossy.set_sym("I1", "O1", Complex::real(0.5));
        assert!(!lossy.is_unitary(1e-6));
        assert!(lossy.is_passive(1e-12));

        let mut gain = SMatrix::new(vec!["I1".into(), "O1".into()]);
        gain.set_sym("I1", "O1", Complex::real(2.0));
        assert!(!gain.is_passive(1e-12));
    }

    #[test]
    fn port_classification() {
        let s = SMatrix::new(vec!["I1".into(), "I2".into(), "O1".into()]);
        assert_eq!(s.input_ports(), vec!["I1", "I2"]);
        assert_eq!(s.output_ports(), vec!["O1"]);
    }

    #[test]
    #[should_panic(expected = "duplicate port")]
    fn duplicate_ports_panic() {
        let _ = SMatrix::new(vec!["I1".into(), "I1".into()]);
    }

    #[test]
    #[should_panic(expected = "unknown port")]
    fn unknown_port_set_panics() {
        let mut s = two_port();
        s.set("I9", "O1", Complex::ONE);
    }

    #[test]
    fn from_matrix_wraps_dense() {
        let m = CMatrix::identity(2);
        let s = SMatrix::from_matrix(vec!["I1".into(), "O1".into()], m);
        assert_eq!(s.s("I1", "I1"), Some(Complex::ONE));
        assert_eq!(s.s("I1", "O1"), Some(Complex::ZERO));
    }

    #[test]
    fn diff_between_matrices() {
        let a = two_port();
        let mut b = two_port();
        b.set_sym("I1", "O1", Complex::new(0.0, 0.5));
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }
}
