//! The component-model trait and its error type.

use crate::{ParamSpec, SMatrix, Settings};
use std::error::Error;
use std::fmt;

/// Static metadata describing a component model.
///
/// This is the machine-readable form of one entry in the paper's
/// "API document" prompt section: name, behaviour, port list and
/// configurable parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Registry name, e.g. `"waveguide"`.
    pub name: &'static str,
    /// One-line behavioural description.
    pub description: &'static str,
    /// Input port names (`I*`).
    pub inputs: Vec<String>,
    /// Output port names (`O*`).
    pub outputs: Vec<String>,
    /// Configurable parameters.
    pub params: Vec<ParamSpec>,
}

impl ModelInfo {
    /// All ports, inputs first.
    pub fn ports(&self) -> Vec<String> {
        self.inputs.iter().chain(&self.outputs).cloned().collect()
    }
}

/// Error produced when a model cannot evaluate its S-matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A provided setting does not correspond to any declared parameter.
    UnknownParameter {
        /// Model name.
        model: String,
        /// Offending parameter name.
        param: String,
        /// The parameters the model accepts.
        allowed: Vec<String>,
    },
    /// A parameter value is outside the physically meaningful range.
    InvalidValue {
        /// Model name.
        model: String,
        /// Parameter name.
        param: String,
        /// Offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be within [0, 1]"`.
        constraint: String,
    },
    /// The requested wavelength is outside the model's validity range.
    WavelengthOutOfRange {
        /// Model name.
        model: String,
        /// Requested wavelength in µm.
        wavelength_um: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownParameter {
                model,
                param,
                allowed,
            } => write!(
                f,
                "Model {model} does not accept parameter '{param}'. Allowed parameters: {allowed:?}."
            ),
            ModelError::InvalidValue {
                model,
                param,
                value,
                constraint,
            } => write!(
                f,
                "Model {model}: parameter '{param}' = {value} is invalid ({constraint})."
            ),
            ModelError::WavelengthOutOfRange {
                model,
                wavelength_um,
            } => write!(
                f,
                "Model {model}: wavelength {wavelength_um} um is outside the supported range."
            ),
        }
    }
}

impl Error for ModelError {}

/// A frequency-domain component model.
///
/// Implementors produce a port-labelled scattering matrix at a given
/// wavelength under the provided settings. The trait is object-safe so the
/// simulator's registry can store heterogeneous models.
///
/// # Examples
///
/// ```
/// use picbench_sparams::{models::Waveguide, Model, Settings};
///
/// let wg = Waveguide::default();
/// let s = wg.s_matrix(1.55, &Settings::new())?;
/// // A passive waveguide transmits with |S| ≤ 1.
/// assert!(s.s("I1", "O1").unwrap().abs() <= 1.0);
/// # Ok::<(), picbench_sparams::ModelError>(())
/// ```
pub trait Model: Send + Sync {
    /// Metadata: name, description, ports, parameters.
    fn info(&self) -> &ModelInfo;

    /// Evaluates the scattering matrix at `wavelength_um` under `settings`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for unknown parameters, out-of-range values or
    /// unsupported wavelengths.
    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError>;

    /// Whether the S-matrix is independent of wavelength under `settings`.
    ///
    /// Dispersionless models (ideal couplers, MMIs, switches, …) return
    /// `true` so sweep engines can evaluate them **once** per sweep instead
    /// of once per wavelength point (see [`SMatrixMemo`]). The hint may
    /// depend on the settings — a zero-length phase shifter is
    /// wavelength-independent even though the model in general is not.
    ///
    /// The default is `false`, which is always correct (merely slower).
    ///
    /// [`SMatrixMemo`]: crate::SMatrixMemo
    fn is_wavelength_independent(&self, _settings: &Settings) -> bool {
        false
    }
}

/// Shared validation: rejects settings whose names are not declared
/// parameters of the model.
///
/// # Errors
///
/// Returns [`ModelError::UnknownParameter`] naming the first offender.
pub fn check_known_params(info: &ModelInfo, settings: &Settings) -> Result<(), ModelError> {
    let unknown = settings.unknown_params(&info.params);
    if let Some(first) = unknown.first() {
        return Err(ModelError::UnknownParameter {
            model: info.name.to_string(),
            param: (*first).to_string(),
            allowed: info.params.iter().map(|p| p.name.to_string()).collect(),
        });
    }
    Ok(())
}

/// Shared validation: checks `value ∈ [lo, hi]`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidValue`] when out of range.
pub fn check_range(
    model: &str,
    param: &str,
    value: f64,
    lo: f64,
    hi: f64,
) -> Result<(), ModelError> {
    if value.is_finite() && value >= lo && value <= hi {
        Ok(())
    } else {
        Err(ModelError::InvalidValue {
            model: model.to_string(),
            param: param.to_string(),
            value,
            constraint: format!("must be within [{lo}, {hi}]"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ModelInfo {
        ModelInfo {
            name: "dummy",
            description: "test model",
            inputs: vec!["I1".into()],
            outputs: vec!["O1".into()],
            params: vec![ParamSpec::new("length", 1.0, "um", "length")],
        }
    }

    #[test]
    fn ports_concatenates_inputs_then_outputs() {
        assert_eq!(info().ports(), vec!["I1", "O1"]);
    }

    #[test]
    fn unknown_parameter_is_rejected() {
        let mut s = Settings::new();
        s.insert("nonsense", 3.0);
        let err = check_known_params(&info(), &s).unwrap_err();
        match &err {
            ModelError::UnknownParameter { param, allowed, .. } => {
                assert_eq!(param, "nonsense");
                assert_eq!(allowed, &vec!["length".to_string()]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("does not accept parameter"));
    }

    #[test]
    fn known_parameter_is_accepted() {
        let mut s = Settings::new();
        s.insert("length", 3.0);
        assert!(check_known_params(&info(), &s).is_ok());
    }

    #[test]
    fn range_check() {
        assert!(check_range("m", "x", 0.5, 0.0, 1.0).is_ok());
        assert!(check_range("m", "x", -0.1, 0.0, 1.0).is_err());
        assert!(check_range("m", "x", f64::NAN, 0.0, 1.0).is_err());
        let err = check_range("m", "x", 2.0, 0.0, 1.0).unwrap_err();
        assert!(err.to_string().contains("invalid"));
    }
}
