//! Feedback prompt construction (Fig. 4 of the paper).
//!
//! When the evaluator detects a syntax error, the classified category plus
//! the detailed error report and the crafted correction request are sent
//! back to the model. Functional errors get the paper's fixed one-liner.

use picbench_netlist::ValidationIssue;
use std::fmt::Write as _;

/// The crafted correction request of Fig. 4.
pub const CORRECTION_REQUEST: &str = "\
Here are the errors in previously generated code.
Please follow the restrictions and write entire code by fixing the errors in previous code.
Please only give me the code in the <result> part, for anything beside the code, please properly comment it out in <analysis> part.";

/// The paper's functional-error feedback line (§III-E).
pub const FUNCTIONAL_FEEDBACK: &str = "The syntax is correct, but a functional error has \
occurred. Please review the problem description carefully";

/// Renders the evaluation information block for a set of classified
/// issues, in the `eval_<problem>: <category> error, <details>` shape of
/// Fig. 4.
pub fn evaluation_info(problem_id: &str, issues: &[ValidationIssue]) -> String {
    let mut out = String::new();
    let tag = problem_id.replace('-', "_");
    for issue in issues {
        let _ = writeln!(out, "eval_{tag}: {issue}");
    }
    out
}

/// Renders the full syntax-error feedback prompt: evaluation information
/// followed by the correction request.
///
/// # Examples
///
/// ```
/// use picbench_netlist::{FailureType, ValidationIssue};
/// use picbench_prompt::syntax_feedback;
///
/// let issues = vec![ValidationIssue::new(
///     FailureType::WrongPort,
///     "Instance mmi2 does not contain port I2. Available ports: [\"I1\", \"O1\", \"O2\"].",
/// )];
/// let prompt = syntax_feedback("mzi-ps", &issues);
/// assert!(prompt.contains("eval_mzi_ps: Wrong ports error,"));
/// assert!(prompt.contains("fixing the errors"));
/// ```
pub fn syntax_feedback(problem_id: &str, issues: &[ValidationIssue]) -> String {
    let mut out = evaluation_info(problem_id, issues);
    out.push('\n');
    out.push_str(CORRECTION_REQUEST);
    out
}

/// Renders the functional-error feedback prompt.
pub fn functional_feedback() -> String {
    format!("{FUNCTIONAL_FEEDBACK}.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::FailureType;

    #[test]
    fn fig4_example_reproduced() {
        let issues = vec![ValidationIssue::new(
            FailureType::WrongPort,
            "Instance mmi2 does not contain port I2. Available ports: [\"I1\", \"O1\", \"O2\"].",
        )];
        let info = evaluation_info("mzi-ps", &issues);
        assert_eq!(
            info.trim(),
            "eval_mzi_ps: Wrong ports error, Instance mmi2 does not contain port I2. \
             Available ports: [\"I1\", \"O1\", \"O2\"]."
        );
    }

    #[test]
    fn multiple_issues_listed_line_by_line() {
        let issues = vec![
            ValidationIssue::new(FailureType::UndefinedModel, "a"),
            ValidationIssue::new(FailureType::DuplicatePortConnection, "b"),
        ];
        let prompt = syntax_feedback("benes-4x4", &issues);
        assert_eq!(prompt.matches("eval_benes_4x4:").count(), 2);
        assert!(prompt.ends_with("<analysis> part."));
    }

    #[test]
    fn functional_feedback_is_the_paper_line() {
        assert!(functional_feedback().starts_with("The syntax is correct"));
    }
}
