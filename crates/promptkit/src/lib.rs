//! # picbench-prompt
//!
//! Prompt construction for the PICBench-rs benchmark:
//!
//! * the three-section **system prompt** of Fig. 3 (format schema,
//!   auto-generated API document, general notes) with the optional
//!   **Table II restrictions** block ([`render_system_prompt`]);
//! * the **feedback prompts** of Fig. 4 ([`syntax_feedback`],
//!   [`functional_feedback`]);
//! * [`Conversation`] transcripts recording every turn of the feedback
//!   loop.
//!
//! ## Example
//!
//! ```
//! use picbench_prompt::{render_system_prompt, SystemPromptConfig};
//! use picbench_sparams::builtin_models;
//!
//! let models = builtin_models();
//! let infos: Vec<_> = models.iter().map(|m| m.info().clone()).collect();
//! let prompt = render_system_prompt(infos.iter(), SystemPromptConfig::default());
//! assert!(prompt.contains("<<<API document>>>"));
//! ```

#![warn(missing_docs)]

mod conversation;
mod feedback;
mod system;

pub use conversation::{Conversation, Role, Turn};
pub use feedback::{
    evaluation_info, functional_feedback, syntax_feedback, CORRECTION_REQUEST, FUNCTIONAL_FEEDBACK,
};
pub use system::{
    api_document, api_entry, render_system_prompt, render_system_prompt_with_restrictions,
    restrictions_block, restrictions_block_for, SystemPromptConfig, GENERAL_NOTES, NETLIST_FORMAT,
};
