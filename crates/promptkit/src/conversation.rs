//! Conversation transcripts.
//!
//! The feedback loop is a multi-turn chat; recording it verbatim gives
//! the benchmark auditable traces (and powers the Fig. 1 / Fig. 4
//! reproduction binaries).

use std::fmt;

/// Who produced a turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The fixed system prompt.
    System,
    /// The benchmark (problem description or feedback).
    User,
    /// The language model.
    Assistant,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::System => write!(f, "system"),
            Role::User => write!(f, "user"),
            Role::Assistant => write!(f, "assistant"),
        }
    }
}

/// One chat turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Turn {
    /// Speaker.
    pub role: Role,
    /// Verbatim content.
    pub content: String,
}

/// An ordered chat transcript.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Conversation {
    turns: Vec<Turn>,
}

impl Conversation {
    /// Creates an empty conversation.
    pub fn new() -> Self {
        Conversation::default()
    }

    /// Starts a conversation from a system prompt.
    pub fn with_system(system_prompt: impl Into<String>) -> Self {
        let mut c = Conversation::new();
        c.push(Role::System, system_prompt);
        c
    }

    /// Appends a turn.
    pub fn push(&mut self, role: Role, content: impl Into<String>) {
        self.turns.push(Turn {
            role,
            content: content.into(),
        });
    }

    /// The turns in order.
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Number of turns.
    pub fn len(&self) -> usize {
        self.turns.len()
    }

    /// Whether the conversation is empty.
    pub fn is_empty(&self) -> bool {
        self.turns.is_empty()
    }

    /// The most recent turn from a given role.
    pub fn last_from(&self, role: Role) -> Option<&Turn> {
        self.turns.iter().rev().find(|t| t.role == role)
    }

    /// The latest user-visible request (system prompt + all user turns),
    /// concatenated — what a stateless generator conditions on.
    pub fn rendered_context(&self) -> String {
        let mut out = String::new();
        for turn in &self.turns {
            out.push_str(&format!("[{}]\n{}\n\n", turn.role, turn.content));
        }
        out
    }
}

impl fmt::Display for Conversation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for turn in &self.turns {
            writeln!(f, "=== {} ===", turn.role)?;
            writeln!(f, "{}", turn.content)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut c = Conversation::with_system("sys");
        c.push(Role::User, "describe");
        c.push(Role::Assistant, "netlist-1");
        c.push(Role::User, "fix it");
        c.push(Role::Assistant, "netlist-2");
        assert_eq!(c.len(), 5);
        assert_eq!(c.last_from(Role::Assistant).unwrap().content, "netlist-2");
        assert_eq!(c.last_from(Role::System).unwrap().content, "sys");
        assert!(!c.is_empty());
    }

    #[test]
    fn rendered_context_interleaves_roles() {
        let mut c = Conversation::with_system("S");
        c.push(Role::User, "U");
        let ctx = c.rendered_context();
        let sys_pos = ctx.find("[system]").unwrap();
        let user_pos = ctx.find("[user]").unwrap();
        assert!(sys_pos < user_pos);
    }

    #[test]
    fn display_contains_markers() {
        let mut c = Conversation::new();
        c.push(Role::Assistant, "hello");
        assert!(c.to_string().contains("=== assistant ==="));
    }
}
