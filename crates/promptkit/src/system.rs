//! The system prompt template (Fig. 3 of the paper).
//!
//! Three sections, exactly as the paper structures them:
//!
//! 1. **Required format** — the JSON netlist schema;
//! 2. **API document** — auto-generated from the component models'
//!    metadata (ports, parameters, defaults);
//! 3. **Notes / Restrictions** — the general answering rules, plus
//!    (optionally) the Table II restrictions that §IV-B2 evaluates.

use picbench_netlist::FailureType;
use picbench_sparams::ModelInfo;
use std::fmt::Write as _;

/// Configuration for rendering the system prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SystemPromptConfig {
    /// Include the Table II restriction list (the paper's "+ restrictions"
    /// configurations in Table IV).
    pub include_restrictions: bool,
}

/// The JSON netlist schema shown in the "Required format" section.
pub const NETLIST_FORMAT: &str = r#"{
  "netlist": {
    "instances": {
      "<component_name1>": "<component>",
      "<component_name2>": {"component": "<component>", "settings": {"<parameter>": <value>}}
    },
    "connections": {
      "<component_name>,<port>": "<component_name>,<port>"
    },
    "ports": {
      "<port_name>": "<component_name>,<port>"
    }
  },
  "models": {
    "<component>": "<ref>"
  }
}"#;

/// Renders one API-document entry from a model's metadata.
pub fn api_entry(info: &ModelInfo) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}:", info.name);
    let _ = writeln!(out, "    description: {}", info.description);
    let _ = writeln!(
        out,
        "    input ports: {}  output ports: {}",
        info.inputs.join(", "),
        info.outputs.join(", ")
    );
    if info.params.is_empty() {
        let _ = writeln!(out, "    parameters: (none)");
    } else {
        let _ = writeln!(out, "    parameters:");
        for p in &info.params {
            let _ = writeln!(out, "      - {p}");
        }
    }
    out
}

/// Renders the full API document for a set of models.
pub fn api_document<'a, I: IntoIterator<Item = &'a ModelInfo>>(models: I) -> String {
    let mut out = String::new();
    for info in models {
        out.push_str(&api_entry(info));
    }
    out
}

/// The paper's general answering rules (Fig. 3, "Note that" items 1-6).
pub const GENERAL_NOTES: &str = "\
Note that:
1. Your answers should be professional and logical.
2. The analyses should be as detailed as possible. For example, you can think it step by step.
3. The response must consist of two sections:
   - analysis: A detailed explanation of how the netlist was generated. Start by <analysis>.
   - result: The generated netlist JSON content. Start by <result>. Only the JSON content is required in the result.
4. Never specify extra parameters unless explicitly stated in the instructions; always use default values. If a difference between two parameters is specified, use the default value for one and adjust the other by the specified difference.
5. The default unit is micron.
6. Unless otherwise specified, use built-in components to implement whenever possible. Never specify extra parameters if the instruction do not specify, always use the default value.";

/// Renders the Table II restrictions block for a subset of categories
/// (used by the leave-one-out restriction ablation).
pub fn restrictions_block_for(categories: &[FailureType]) -> String {
    let mut out = String::from("Restrictions (strictly follow each of these):\n");
    let mut index = 1;
    for failure in FailureType::ALL {
        if !categories.contains(&failure) {
            continue;
        }
        let text = failure.restriction();
        if text.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{index}. {text}");
        index += 1;
    }
    out
}

/// Renders the full Table II restrictions block.
pub fn restrictions_block() -> String {
    restrictions_block_for(&FailureType::ALL)
}

/// Renders the complete system prompt.
///
/// # Examples
///
/// ```
/// use picbench_prompt::{render_system_prompt, SystemPromptConfig};
/// use picbench_sparams::builtin_models;
///
/// let models = builtin_models();
/// let infos: Vec<_> = models.iter().map(|m| m.info().clone()).collect();
/// let prompt = render_system_prompt(
///     infos.iter(),
///     SystemPromptConfig { include_restrictions: true },
/// );
/// assert!(prompt.contains("professional Photonic Integrated Circuit"));
/// assert!(prompt.contains("mzi2x2"));
/// assert!(prompt.contains("Restrictions"));
/// ```
pub fn render_system_prompt<'a, I: IntoIterator<Item = &'a ModelInfo>>(
    models: I,
    config: SystemPromptConfig,
) -> String {
    let mut out = String::new();
    out.push_str(
        "You are a professional Photonic Integrated Circuit (PIC) designer. Your task is to \
         generate a JSON netlist based on the user's design requirements. This netlist should \
         specify input/output ports, the necessary components, their configurations, and \
         detailed connections between them. You only complete chats with syntax correct JSON \
         code and the format is as follows:\n\n<<<JSON format>>>\n",
    );
    out.push_str(NETLIST_FORMAT);
    out.push_str(
        "\n\nYou have access to the following built-in devices, only these devices are \
         permitted unless otherwise specified:\n\n<<<API document>>>\n",
    );
    out.push_str(&api_document(models));
    out.push('\n');
    out.push_str(GENERAL_NOTES);
    if config.include_restrictions {
        out.push_str("\n\n");
        out.push_str(&restrictions_block());
    }
    out
}

/// Renders the system prompt with an explicit restriction subset — the
/// entry point of the leave-one-out restriction ablation.
pub fn render_system_prompt_with_restrictions<'a, I: IntoIterator<Item = &'a ModelInfo>>(
    models: I,
    categories: &[FailureType],
) -> String {
    let mut out = render_system_prompt(models, SystemPromptConfig::default());
    out.push_str("\n\n");
    out.push_str(&restrictions_block_for(categories));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_sparams::builtin_models;

    fn infos() -> Vec<ModelInfo> {
        builtin_models().iter().map(|m| m.info().clone()).collect()
    }

    #[test]
    fn prompt_contains_all_three_sections() {
        let prompt = render_system_prompt(infos().iter(), SystemPromptConfig::default());
        assert!(prompt.contains("<<<JSON format>>>"));
        assert!(prompt.contains("<<<API document>>>"));
        assert!(prompt.contains("Note that:"));
        assert!(!prompt.contains("Restrictions (strictly follow"));
    }

    #[test]
    fn restrictions_toggle_works() {
        let with = render_system_prompt(
            infos().iter(),
            SystemPromptConfig {
                include_restrictions: true,
            },
        );
        assert!(with.contains("Restrictions (strictly follow"));
        // All nine non-empty Table II restrictions are numbered.
        assert!(with.contains("9. "));
        assert!(!with.contains("10. "));
        assert!(with.contains("Underscores are prohibited"));
    }

    #[test]
    fn api_document_lists_every_builtin() {
        let doc = api_document(infos().iter());
        for m in builtin_models() {
            assert!(
                doc.contains(&format!("{}:", m.info().name)),
                "API doc missing {}",
                m.info().name
            );
        }
    }

    #[test]
    fn api_entry_mentions_ports_and_defaults() {
        let all = infos();
        let mzi = all.iter().find(|i| i.name == "mzi").unwrap();
        let entry = api_entry(mzi);
        assert!(entry.contains("input ports: I1"));
        assert!(entry.contains("output ports: O1"));
        assert!(entry.contains("delta_length (default 10 um)"));
    }

    #[test]
    fn format_section_shows_paper_schema() {
        assert!(NETLIST_FORMAT.contains("\"instances\""));
        assert!(NETLIST_FORMAT.contains("\"connections\""));
        assert!(NETLIST_FORMAT.contains("\"ports\""));
        assert!(NETLIST_FORMAT.contains("\"models\""));
        // The schema itself is valid-ish JSON template (placeholders aside).
        assert!(NETLIST_FORMAT.contains("<component_name1>"));
    }
}
