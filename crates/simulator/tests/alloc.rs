//! Proof that the steady-state per-point solve is allocation-free.
//!
//! This test binary installs a counting global allocator (per-thread
//! counters, so concurrently running tests cannot pollute each other) and
//! drives [`SweepPlan::evaluate_into`] after a single warm-up point. For a
//! circuit whose models are all wavelength-independent (served from the
//! plan memo), the per-point solve of **both** backends must perform zero
//! heap allocations — the acceptance bar the reusable-workspace design is
//! built around. A dispersive circuit is exercised too, asserting that the
//! only allocations left come from the per-point model evaluations.

use picbench_math::CMatrix;
use picbench_netlist::{Netlist, NetlistBuilder};
use picbench_sim::{Backend, Circuit, ModelRegistry, SweepPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

// SAFETY: defers entirely to the system allocator; the bookkeeping only
// touches thread-local counters and allocates nothing itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCATIONS.with(|a| a.set(a.get() + 1));
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCATIONS.with(|a| a.set(a.get() + 1));
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Counts this thread's allocations during `f`.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    let result = f();
    COUNTING.with(|c| c.set(false));
    (ALLOCATIONS.with(|a| a.get()), result)
}

fn elaborate(netlist: &Netlist) -> Circuit {
    let registry = ModelRegistry::with_builtins();
    Circuit::elaborate(netlist, &registry, None).unwrap()
}

/// A ladder of couplers and crossings: every model is wavelength-
/// independent, so after planning the per-point work is pure composition.
fn memoizable_ladder(rungs: usize) -> Netlist {
    let mut b = NetlistBuilder::new();
    for k in 0..rungs {
        b.instance_with(&format!("dc{k}"), "coupler", &[("coupling", 0.3)])
            .instance(&format!("x{k}"), "crossing");
        b.connect(&format!("dc{k},O1"), &format!("x{k},I1"));
        b.connect(&format!("dc{k},O2"), &format!("x{k},I2"));
        if k > 0 {
            b.connect(&format!("x{},O1", k - 1), &format!("dc{k},I1"));
            b.connect(&format!("x{},O2", k - 1), &format!("dc{k},I2"));
        }
    }
    let last = rungs - 1;
    b.port("I1", "dc0,I1")
        .port("I2", "dc0,I2")
        .port("O1", &format!("x{last},O1"))
        .port("O2", &format!("x{last},O2"))
        .model("coupler", "coupler")
        .model("crossing", "crossing")
        .build()
}

#[test]
fn per_point_solve_is_allocation_free_on_both_backends() {
    let circuit = elaborate(&memoizable_ladder(6));
    for backend in Backend::ALL {
        let plan = SweepPlan::new(&circuit, backend).unwrap();
        assert_eq!(
            plan.memoized_instance_count(),
            circuit.instance_count(),
            "ladder must be fully memoizable for this test to be meaningful"
        );
        let mut ws = plan.workspace();
        let mut out = CMatrix::zeros(0, 0);
        // Warm-up: reach every buffer's high-water mark.
        plan.evaluate_into(&mut ws, 1.55, &mut out).unwrap();

        let (allocations, result) = count_allocations(|| {
            let mut status = Ok(());
            let mut wl = 1.51;
            while wl <= 1.59 {
                if let Err(e) = plan.evaluate_into(&mut ws, wl, &mut out) {
                    status = Err(e);
                    break;
                }
                wl += 0.005;
            }
            status
        });
        result.unwrap();
        assert_eq!(
            allocations, 0,
            "{backend}: steady-state per-point solve must not allocate"
        );
    }
}

#[test]
fn batched_stripe_solve_is_allocation_free_after_warmup() {
    // The block-sparse batched execution: after one warm-up stripe has
    // pushed every buffer (factor values, pivots, scratch, RHS panel,
    // output matrices) to its high-water mark, an entire stripe —
    // assembly, factorization, the panel solve and the per-point output
    // replication (this fully memoized ladder takes the factor-once copy
    // path) — must run without touching the allocator. (The recombine
    // stripe path evaluates dispersive models per point, which allocate
    // by design; its correctness is covered in tests/block_sparse.rs.)
    let circuit = elaborate(&memoizable_ladder(6));
    let plan = SweepPlan::new(&circuit, Backend::BlockSparse).unwrap();
    let wavelengths: Vec<f64> = (0..16).map(|i| 1.51 + 0.005 * i as f64).collect();
    let n_ext = 4;
    let mut ws = plan.workspace();
    let mut outs: Vec<CMatrix> = (0..wavelengths.len())
        .map(|_| CMatrix::zeros(n_ext, n_ext))
        .collect();
    // Warm-up stripe.
    plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut outs)
        .unwrap();

    let (allocations, result) = count_allocations(|| {
        let mut status = Ok(());
        for _ in 0..4 {
            if let Err((_, e)) = plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut outs) {
                status = Err(e);
                break;
            }
        }
        status
    });
    result.unwrap();
    assert_eq!(
        allocations, 0,
        "batched per-stripe solve must not allocate after warmup"
    );
}

#[test]
fn warmed_soa_stripe_solve_is_allocation_free_on_every_dispatch_tier() {
    // The split-complex (SoA) panel kernels must not hide allocations
    // behind ISA dispatch: once the stripe buffers are warmed, the
    // whole solve stays allocation-free both under the ambient (widest
    // detected) SIMD tier and with dispatch forced to the scalar
    // kernels — the tiers share the panel workspace, they differ only
    // in the kernel bodies.
    let circuit = elaborate(&memoizable_ladder(6));
    let plan = SweepPlan::new(&circuit, Backend::BlockSparse).unwrap();
    let wavelengths: Vec<f64> = (0..16).map(|i| 1.51 + 0.005 * i as f64).collect();
    let mut ws = plan.workspace();
    let mut outs: Vec<CMatrix> = (0..wavelengths.len())
        .map(|_| CMatrix::zeros(4, 4))
        .collect();
    // Warm up under both tiers.
    plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut outs)
        .unwrap();
    picbench_math::simd::with_forced_scalar(|| {
        plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut outs)
    })
    .unwrap();

    let (ambient, result) =
        count_allocations(|| plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut outs));
    result.map_err(|(_, e)| e).unwrap();
    assert_eq!(
        ambient,
        0,
        "warmed SoA stripe solve must not allocate under the {} tier",
        picbench_math::simd::active_level().token()
    );
    let (scalar, result) = count_allocations(|| {
        picbench_math::simd::with_forced_scalar(|| {
            plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut outs)
        })
    });
    result.map_err(|(_, e)| e).unwrap();
    assert_eq!(
        scalar, 0,
        "warmed SoA stripe solve must not allocate under forced-scalar dispatch"
    );
}

#[test]
fn dispersive_circuits_only_allocate_in_model_evaluation() {
    // With waveguides in the loop the models themselves build fresh
    // S-matrices per point; the *composition* must still be free. Sanity
    // bound: a handful of small allocations per instance per point, not
    // O(ports²) matrix churn.
    let netlist = NetlistBuilder::new()
        .instance("split", "mmi1x2")
        .instance("combine", "mmi1x2")
        .instance_with("top", "waveguide", &[("length", 10.0)])
        .instance_with("bottom", "waveguide", &[("length", 25.0)])
        .connect("split,O1", "top,I1")
        .connect("split,O2", "bottom,I1")
        .connect("top,O1", "combine,O1")
        .connect("bottom,O1", "combine,O2")
        .port("I1", "split,I1")
        .port("O1", "combine,I1")
        .model("mmi1x2", "mmi1x2")
        .model("waveguide", "waveguide")
        .build();
    let circuit = elaborate(&netlist);
    for backend in Backend::ALL {
        let plan = SweepPlan::new(&circuit, backend).unwrap();
        let mut ws = plan.workspace();
        let mut out = CMatrix::zeros(0, 0);
        plan.evaluate_into(&mut ws, 1.55, &mut out).unwrap();

        let points = 16u64;
        let (allocations, result) = count_allocations(|| {
            let mut status = Ok(());
            for i in 0..points {
                let wl = 1.51 + 0.005 * i as f64;
                if let Err(e) = plan.evaluate_into(&mut ws, wl, &mut out) {
                    status = Err(e);
                    break;
                }
            }
            status
        });
        result.unwrap();
        // Two dispersive waveguides per point; each model evaluation may
        // allocate a few small buffers (matrix data, port list). Anything
        // beyond that budget means the solve itself regressed.
        let budget = points * 2 * 8;
        assert!(
            allocations <= budget,
            "{backend}: {allocations} allocations for {points} points exceeds the \
             model-evaluation budget {budget}"
        );
    }
}
