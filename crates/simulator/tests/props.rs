//! Property-based equivalence checks for the sweep pipeline: over random
//! circuits and grids, the plan/execute path must match the naive
//! per-point rebuild to machine precision, and the parallel executor must
//! be element-wise identical to the serial one.

use picbench_netlist::{Netlist, NetlistBuilder};
use picbench_sim::{
    sweep, sweep_naive, sweep_parallel, sweep_planned, sweep_serial, Backend, Circuit,
    ModelRegistry, ScheduleCache, SweepPlan, WavelengthGrid,
};
use proptest::prelude::*;

/// A randomized two-arm interferometer chain: `stages` MZIs built from
/// discrete parts (splitter, two arms of random length, combiner) wired in
/// series, exercising both dispersive (waveguide) and memoized (MMI)
/// models plus a non-trivial internal-port partition.
fn chain_netlist(arm_lengths: &[(f64, f64)]) -> Netlist {
    let mut b = NetlistBuilder::new();
    for (k, (top, bottom)) in arm_lengths.iter().enumerate() {
        b.instance(&format!("split{k}"), "mmi1x2")
            .instance(&format!("combine{k}"), "mmi1x2")
            .instance_with(&format!("top{k}"), "waveguide", &[("length", *top)])
            .instance_with(&format!("bottom{k}"), "waveguide", &[("length", *bottom)])
            .connect(&format!("split{k},O1"), &format!("top{k},I1"))
            .connect(&format!("split{k},O2"), &format!("bottom{k},I1"))
            .connect(&format!("top{k},O1"), &format!("combine{k},O1"))
            .connect(&format!("bottom{k},O1"), &format!("combine{k},O2"));
        if k > 0 {
            b.connect(&format!("combine{},I1", k - 1), &format!("split{k},I1"));
        }
    }
    let last = arm_lengths.len() - 1;
    b.port("I1", "split0,I1")
        .port("O1", &format!("combine{last},I1"))
        .model("mmi1x2", "mmi1x2")
        .model("waveguide", "waveguide")
        .build()
}

fn elaborate(netlist: &Netlist) -> Circuit {
    Circuit::elaborate(netlist, &ModelRegistry::with_builtins(), None).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planned_sweep_matches_naive_sweep(
        arms in proptest::collection::vec((1.0f64..80.0, 1.0f64..80.0), 1..4),
        points in 1usize..48,
    ) {
        let circuit = elaborate(&chain_netlist(&arms));
        let grid = WavelengthGrid::new(1.51, 1.59, points);
        for backend in Backend::ALL {
            let naive = sweep_naive(&circuit, &grid, backend).unwrap();
            let planned = sweep_serial(&circuit, &grid, backend).unwrap();
            let cmp = naive.compare(&planned);
            prop_assert!(cmp.is_equivalent(1e-12), "{}: {}", backend, cmp);
        }
    }

    #[test]
    fn parallel_sweep_identical_to_serial(
        arms in proptest::collection::vec((1.0f64..80.0, 1.0f64..80.0), 1..3),
        points in 1usize..40,
        threads in 2usize..6,
    ) {
        let circuit = elaborate(&chain_netlist(&arms));
        let grid = WavelengthGrid::new(1.51, 1.59, points);
        for backend in Backend::ALL {
            let serial = sweep_serial(&circuit, &grid, backend).unwrap();
            let parallel = sweep_parallel(&circuit, &grid, backend, threads).unwrap();
            // Element-wise identical, not merely within tolerance.
            prop_assert_eq!(&serial, &parallel);
            // The public default must agree with both.
            let default = sweep(&circuit, &grid, backend).unwrap();
            prop_assert_eq!(&serial, &default);
        }
    }

    #[test]
    fn workspace_reusing_sweep_identical_to_serial(
        arms_a in proptest::collection::vec((1.0f64..80.0, 1.0f64..80.0), 1..4),
        arms_b in proptest::collection::vec((1.0f64..80.0, 1.0f64..80.0), 1..4),
        points in 1usize..32,
    ) {
        // One workspace and one schedule cache serving two different
        // circuits back to back — the evaluation pipeline's inner loop —
        // must reproduce the fresh-workspace serial sweep bit for bit.
        let circuit_a = elaborate(&chain_netlist(&arms_a));
        let circuit_b = elaborate(&chain_netlist(&arms_b));
        let grid = WavelengthGrid::new(1.51, 1.59, points);
        let mut schedules = ScheduleCache::new();
        for backend in Backend::ALL {
            let plan_a =
                SweepPlan::with_schedule(&circuit_a, backend, schedules.get_or_build(&circuit_a))
                    .unwrap();
            let mut ws = plan_a.workspace();
            let reused_a = sweep_planned(&plan_a, &grid, &mut ws).unwrap();
            // Same-length arm lists share a topology; the cache must not
            // grow beyond the distinct topologies seen.
            let plan_b =
                SweepPlan::with_schedule(&circuit_b, backend, schedules.get_or_build(&circuit_b))
                    .unwrap();
            let reused_b = sweep_planned(&plan_b, &grid, &mut ws).unwrap();
            prop_assert_eq!(&reused_a, &sweep_serial(&circuit_a, &grid, backend).unwrap());
            prop_assert_eq!(&reused_b, &sweep_serial(&circuit_b, &grid, backend).unwrap());
        }
    }
}
