//! Property tests for the block-sparse backend: across every structural
//! family of the conformance generator, `Backend::BlockSparse` must agree
//! with `Backend::Dense` within the conformance oracle tolerance — they
//! solve the same scattering system through different eliminations — and
//! the batched stripe execution must be element-wise identical to
//! point-by-point evaluation.

use picbench_conformance::{CircuitStrategy, Family, GeneratorConfig};
use picbench_math::CMatrix;
use picbench_sim::{
    sweep_naive, sweep_serial, Backend, Circuit, ModelRegistry, SweepPlan, WavelengthGrid,
};

/// The conformance backend tolerance: genuinely different algorithms on
/// the same physics (see `DiffRunner::backend_tol`).
const ORACLE_TOL: f64 = 1e-8;

fn cases_per_family() -> usize {
    // Honour PROPTEST_CASES like the proptest-based suites, scaled down:
    // these cases run three sweeps each.
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| (n / 16).max(6))
        .unwrap_or(6)
}

#[test]
fn block_sparse_matches_dense_on_every_generator_family() {
    let registry = ModelRegistry::with_builtins();
    let grid = WavelengthGrid::new(1.51, 1.59, 7);
    let cases = cases_per_family();
    for family in Family::ALL {
        let strategy = CircuitStrategy::new(GeneratorConfig {
            families: vec![family],
            ..GeneratorConfig::default()
        });
        for (k, gen) in strategy.sample(0xB10C5, cases).into_iter().enumerate() {
            let circuit = Circuit::elaborate(&gen.netlist, &registry, None)
                .expect("generator netlists are valid");
            let Ok(dense) = sweep_serial(&circuit, &grid, Backend::Dense) else {
                // A resonance edge case neither backend can solve is not
                // this test's business (the conformance runner owns it).
                continue;
            };
            let sparse = sweep_serial(&circuit, &grid, Backend::BlockSparse)
                .unwrap_or_else(|e| panic!("{family} case {k}: block-sparse failed: {e}"));
            assert_eq!(dense.ports(), sparse.ports(), "{family} case {k}");
            for i in 0..grid.points {
                let diff = dense
                    .sample(i)
                    .unwrap()
                    .max_abs_diff(sparse.sample(i).unwrap());
                assert!(
                    diff < ORACLE_TOL,
                    "{family} case {k}, grid point {i}: |ΔS| = {diff:.3e}\n{}",
                    gen.netlist.to_json_string()
                );
            }
            // The naive (rebuild-per-point) block-sparse path runs the
            // same arithmetic as the planned one.
            let naive = sweep_naive(&circuit, &grid, Backend::BlockSparse)
                .unwrap_or_else(|e| panic!("{family} case {k}: naive block-sparse failed: {e}"));
            let cmp = naive.compare(&sparse);
            assert!(
                cmp.is_equivalent(1e-12),
                "{family} case {k}: naive vs planned {cmp}"
            );
        }
    }
}

#[test]
fn forced_scalar_and_simd_dispatch_agree_on_every_generator_family() {
    // The block-sparse solve dispatches through the runtime-selected
    // SIMD kernel table; the vector tiers contract multiply-adds into
    // FMAs, so cross-tier agreement is tolerance-gated (the `simd`
    // conformance axis documents the contract) while each tier on its
    // own must be deterministic. On a host without vector units — or
    // under `PICBENCH_FORCE_SCALAR=1` — both runs take the scalar path
    // and the comparison is vacuously exact; the determinism half of the
    // test still bites.
    const SIMD_TOL: f64 = 1e-9;
    let registry = ModelRegistry::with_builtins();
    let grid = WavelengthGrid::new(1.51, 1.59, 7);
    let cases = cases_per_family();
    for family in Family::ALL {
        let strategy = CircuitStrategy::new(GeneratorConfig {
            families: vec![family],
            ..GeneratorConfig::default()
        });
        for (k, gen) in strategy.sample(0x51D_FACE, cases).into_iter().enumerate() {
            let circuit = Circuit::elaborate(&gen.netlist, &registry, None)
                .expect("generator netlists are valid");
            let Ok(ambient) = sweep_serial(&circuit, &grid, Backend::BlockSparse) else {
                continue;
            };
            let scalar = picbench_math::simd::with_forced_scalar(|| {
                sweep_serial(&circuit, &grid, Backend::BlockSparse)
            })
            .unwrap_or_else(|e| panic!("{family} case {k}: forced-scalar sweep failed: {e}"));
            assert_eq!(ambient.ports(), scalar.ports(), "{family} case {k}");
            for i in 0..grid.points {
                let diff = ambient
                    .sample(i)
                    .unwrap()
                    .max_abs_diff(scalar.sample(i).unwrap());
                assert!(
                    diff < SIMD_TOL,
                    "{family} case {k}, grid point {i}: {} tier vs scalar |ΔS| = {diff:.3e}\n{}",
                    picbench_math::simd::active_level().token(),
                    gen.netlist.to_json_string()
                );
            }
            // Within the scalar tier the sweep is bit-deterministic.
            let again = picbench_math::simd::with_forced_scalar(|| {
                sweep_serial(&circuit, &grid, Backend::BlockSparse)
            })
            .unwrap();
            assert_eq!(
                scalar, again,
                "{family} case {k}: forced-scalar sweep is not deterministic"
            );
        }
    }
}

#[test]
fn recombine_stripe_matches_per_point_evaluation() {
    // The factor-once *recombine* stripe mode fires when every instance
    // feeding the system is memoized but some instance with no internal
    // ports is dispersive: the coupled core (couplers + crossing) is
    // static, while a disconnected waveguide contributes
    // wavelength-dependent S_ee entries that must be refreshed and
    // recombined at every point.
    use picbench_netlist::NetlistBuilder;
    let netlist = NetlistBuilder::new()
        .instance_with("dc1", "coupler", &[("coupling", 0.3)])
        .instance("x1", "crossing")
        .connect("dc1,O1", "x1,I1")
        .connect("dc1,O2", "x1,I2")
        .instance_with("lone", "waveguide", &[("length", 35.0)])
        .port("I1", "dc1,I1")
        .port("I2", "dc1,I2")
        .port("O1", "x1,O1")
        .port("O2", "x1,O2")
        .port("WI", "lone,I1")
        .port("WO", "lone,O1")
        .model("coupler", "coupler")
        .model("crossing", "crossing")
        .model("waveguide", "waveguide")
        .build();
    let registry = ModelRegistry::with_builtins();
    let circuit = Circuit::elaborate(&netlist, &registry, None).unwrap();
    let plan = SweepPlan::new(&circuit, Backend::BlockSparse).unwrap();
    assert!(
        plan.stripe_factors_once() && !plan.is_wavelength_independent(),
        "this circuit must exercise the recombine mode"
    );
    let grid = WavelengthGrid::new(1.51, 1.59, 9);
    let wavelengths = grid.wavelengths();
    let n_ext = plan.external_count();

    let mut ws = plan.workspace();
    let mut pointwise: Vec<CMatrix> = (0..wavelengths.len())
        .map(|_| CMatrix::zeros(n_ext, n_ext))
        .collect();
    for (i, &wl) in wavelengths.iter().enumerate() {
        plan.evaluate_into(&mut ws, wl, &mut pointwise[i]).unwrap();
    }
    // The response must actually vary across the sweep (the dispersive
    // S_ee entries), and the striped execution must reproduce the
    // per-point loop bit for bit.
    assert!(pointwise[0].max_abs_diff(&pointwise[8]) > 1e-6);
    let mut ws = plan.workspace();
    let mut striped: Vec<CMatrix> = (0..wavelengths.len())
        .map(|_| CMatrix::zeros(n_ext, n_ext))
        .collect();
    plan.evaluate_stripe_into(&mut ws, &wavelengths, &mut striped)
        .unwrap();
    assert_eq!(pointwise, striped);

    // Disabling the constant fold must force genuine per-point solves
    // (the fold axis of the conformance harness relies on this) while
    // producing the same bits.
    let unfolded = SweepPlan::new(&circuit, Backend::BlockSparse)
        .unwrap()
        .with_constant_fold(false);
    let mut ws = plan.workspace();
    let mut per_point: Vec<CMatrix> = (0..wavelengths.len())
        .map(|_| CMatrix::zeros(n_ext, n_ext))
        .collect();
    unfolded
        .evaluate_stripe_into(&mut ws, &wavelengths, &mut per_point)
        .unwrap();
    assert_eq!(pointwise, per_point);
}

#[test]
fn stripe_execution_is_identical_to_per_point_evaluation() {
    let registry = ModelRegistry::with_builtins();
    let grid = WavelengthGrid::new(1.51, 1.59, 13);
    let wavelengths = grid.wavelengths();
    for family in Family::ALL {
        let strategy = CircuitStrategy::new(GeneratorConfig {
            families: vec![family],
            ..GeneratorConfig::default()
        });
        for gen in strategy.sample(0x57121BE, 4) {
            let circuit = Circuit::elaborate(&gen.netlist, &registry, None).unwrap();
            let plan = SweepPlan::new(&circuit, Backend::BlockSparse).unwrap();
            let n_ext = plan.external_count();

            let mut ws = plan.workspace();
            let mut pointwise: Vec<CMatrix> = (0..wavelengths.len())
                .map(|_| CMatrix::zeros(n_ext, n_ext))
                .collect();
            let mut ok = true;
            for (i, &wl) in wavelengths.iter().enumerate() {
                if plan.evaluate_into(&mut ws, wl, &mut pointwise[i]).is_err() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }

            // One whole-grid stripe, and an uneven split — both must be
            // element-wise identical to the per-point loop (this is what
            // keeps serial and parallel sweeps bit-identical).
            for bounds in [vec![0, 13], vec![0, 5, 13]] {
                let mut ws = plan.workspace();
                let mut striped: Vec<CMatrix> = (0..wavelengths.len())
                    .map(|_| CMatrix::zeros(n_ext, n_ext))
                    .collect();
                for pair in bounds.windows(2) {
                    let (lo, hi) = (pair[0], pair[1]);
                    plan.evaluate_stripe_into(&mut ws, &wavelengths[lo..hi], &mut striped[lo..hi])
                        .unwrap();
                }
                assert_eq!(pointwise, striped, "{family}");
            }
        }
    }
}
