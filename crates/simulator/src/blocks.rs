//! Topology-aware block structure of the scattering system.
//!
//! The scattering equations couple an internal port only to the ports of
//! the instance its partner belongs to: writing `x_g` for the wave
//! entering internal port `g`, and `p = partner(g)`,
//!
//! ```text
//! x_g − Σ_{h ∈ internal(inst(p))} S(p, h)·x_h = Σ_{e ∈ external(inst(p))} S(p, e)·a_e
//! ```
//!
//! Grouping the unknowns by the instance that owns each port turns the
//! system into a block-sparse matrix whose pattern is the circuit's
//! connectivity graph — exactly what [`picbench_math::sparse`] factors.
//! [`BlockSchedule::for_circuit`] freezes everything the solve needs:
//!
//! * the block partition (one block per instance with internal ports)
//!   and its [`BlockSymbolic`] analysis (elimination order, static fill);
//! * **scatter recipes** mapping global-matrix entries to value/RHS
//!   storage offsets, grouped by *source instance* so a sweep can split
//!   them into a wavelength-independent baseline image and a small
//!   per-point dispersive refresh;
//! * the **combine recipe** reconstructing the external S-matrix
//!   `S_ext = S_ee + S_ei·X` by walking only the structurally nonzero
//!   instance-local entries.
//!
//! The schedule is pure topology (no settings, no wavelengths), so it
//! lives inside [`crate::SweepSchedule`] and is shared by the naive
//! per-point backend and the planned sweep pipeline alike.

use crate::elaborate::Circuit;
use picbench_math::{simd, BlockSymbolic, CMatrix, Complex, SplitComplexVec};

/// One scatter target: read `global[(row, col)]`, combine into the flat
/// destination offset `dst`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Scatter {
    /// Source row in the assembled global S-matrix.
    pub row: usize,
    /// Source column in the assembled global S-matrix.
    pub col: usize,
    /// Flat destination offset (factor values, or RHS panel).
    pub dst: usize,
}

/// One output term `out[(r, c)] += global[(row, col)] · x[x_row]` (or the
/// direct `S_ee` read when `x_row` is `None`).
#[derive(Debug, Clone, Copy)]
struct EeTerm {
    r: usize,
    c: usize,
    row: usize,
    col: usize,
}

/// One `S_ei` combine term: `out[r, :] += global[(row, col)] · x[x_row, :]`.
#[derive(Debug, Clone, Copy)]
struct EiTerm {
    r: usize,
    row: usize,
    col: usize,
    x_row: usize,
}

/// The frozen block structure of one circuit topology. See the module
/// docs for the formulation.
#[derive(Debug)]
pub(crate) struct BlockSchedule {
    /// Symbolic analysis of the block system.
    pub sym: BlockSymbolic,
    /// Scalar dimension of the block system (= number of internal ports).
    pub n_int: usize,
    /// Number of external ports.
    pub n_ext: usize,
    /// Value offsets receiving the identity's `+1` during assembly.
    diag_ones: Vec<usize>,
    /// System-matrix scatter entries (values get `−S` contributions),
    /// grouped per instance by `matrix_ranges`.
    matrix_scatter: Vec<Scatter>,
    /// `matrix_scatter` range of each instance.
    matrix_ranges: Vec<(usize, usize)>,
    /// RHS scatter entries (`+S` contributions into the `n_int × n_ext`
    /// panel), grouped per instance by `rhs_ranges`.
    rhs_scatter: Vec<Scatter>,
    /// `rhs_scatter` range of each instance.
    rhs_ranges: Vec<(usize, usize)>,
    /// Direct `S_ee` terms (same-instance external port pairs).
    ee_terms: Vec<EeTerm>,
    /// `S_ei · X` combine terms.
    ei_terms: Vec<EiTerm>,
    /// Whether each instance contributes to the system matrix, the RHS
    /// or the `S_ei` coefficients (i.e. owns or faces internal ports).
    touches_system: Vec<bool>,
}

impl BlockSchedule {
    /// Builds the block structure of a circuit's topology.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let n_ports = circuit.total_ports;
        const NONE: usize = usize::MAX;

        let mut partner = vec![NONE; n_ports];
        for &(a, b) in &circuit.connections {
            partner[a] = b;
            partner[b] = a;
        }
        let mut inst_of = vec![0usize; n_ports];
        for (ii, inst) in circuit.instances.iter().enumerate() {
            for local in 0..inst.port_names.len() {
                inst_of[inst.port_offset + local] = ii;
            }
        }
        let mut ext_pos = vec![NONE; n_ports];
        for (pos, (_, g)) in circuit.externals.iter().enumerate() {
            ext_pos[*g] = pos;
        }

        // Block partition: instances with internal ports, in instance
        // order; each block's scalar entries are its internal ports in
        // ascending global order.
        let mut block_of_inst = vec![NONE; circuit.instances.len()];
        let mut block_sizes = Vec::new();
        let mut local_in_block = vec![NONE; n_ports];
        for (ii, inst) in circuit.instances.iter().enumerate() {
            let internals: Vec<usize> = (0..inst.port_names.len())
                .map(|l| inst.port_offset + l)
                .filter(|&g| partner[g] != NONE)
                .collect();
            if internals.is_empty() {
                continue;
            }
            block_of_inst[ii] = block_sizes.len();
            for (local, &g) in internals.iter().enumerate() {
                local_in_block[g] = local;
            }
            block_sizes.push(internals.len());
        }

        // Coupling edges: the equation row of internal port `g` (in the
        // block of `inst(g)`) reads the block of `inst(partner(g))`.
        let mut edges = Vec::with_capacity(circuit.connections.len() * 2);
        for &(a, b) in &circuit.connections {
            let ba = block_of_inst[inst_of[a]];
            let bb = block_of_inst[inst_of[b]];
            edges.push((ba, bb));
        }
        edges.sort_unstable();
        edges.dedup();
        let sym = BlockSymbolic::analyze(&block_sizes, &edges);
        let n_int = sym.scalar_dim();
        let n_ext = circuit.externals.len();

        // Scalar row of each internal port in elimination order.
        let scalar_row =
            |g: usize| -> usize { sym.scalar_row(block_of_inst[inst_of[g]], local_in_block[g]) };

        // Identity diagonal.
        let mut diag_ones = Vec::with_capacity(n_int);
        for g in 0..n_ports {
            if partner[g] != NONE {
                let b = block_of_inst[inst_of[g]];
                let off = sym
                    .entry_offset(b, b, local_in_block[g], local_in_block[g])
                    .expect("diagonal blocks are always stored");
                diag_ones.push(off);
            }
        }

        // Per-instance scatter recipes. The source instance of row `g`'s
        // entries is `inst(partner(g))` — all reads are `S(p, ·)` entries
        // of that one instance's diagonal block of the global matrix.
        let mut matrix_scatter = Vec::new();
        let mut matrix_ranges = Vec::with_capacity(circuit.instances.len());
        let mut rhs_scatter = Vec::new();
        let mut rhs_ranges = Vec::with_capacity(circuit.instances.len());
        for inst in &circuit.instances {
            let m_start = matrix_scatter.len();
            let r_start = rhs_scatter.len();
            for lp in 0..inst.port_names.len() {
                let p = inst.port_offset + lp;
                if partner[p] == NONE {
                    continue;
                }
                // Row `g = partner(p)` owns the equation fed by `S(p, ·)`.
                let g = partner[p];
                let row_block = block_of_inst[inst_of[g]];
                let row_local = local_in_block[g];
                let row_scalar = scalar_row(g);
                for lh in 0..inst.port_names.len() {
                    let h = inst.port_offset + lh;
                    if partner[h] != NONE {
                        let col_block = block_of_inst[inst_of[h]];
                        let off = sym
                            .entry_offset(row_block, col_block, row_local, local_in_block[h])
                            .expect("structural coupling blocks are always stored");
                        matrix_scatter.push(Scatter {
                            row: p,
                            col: h,
                            dst: off,
                        });
                    } else if ext_pos[h] != NONE {
                        rhs_scatter.push(Scatter {
                            row: p,
                            col: h,
                            dst: row_scalar * n_ext + ext_pos[h],
                        });
                    }
                    // Dangling ports (neither connected nor exposed)
                    // carry no incoming wave and drop out of the system.
                }
            }
            matrix_ranges.push((m_start, matrix_scatter.len()));
            rhs_ranges.push((r_start, rhs_scatter.len()));
        }

        // Combine recipe: S_ee entries exist only between external ports
        // of the same instance; S_ei coefficients only between an
        // external port and the internal ports of its own instance.
        let mut ee_terms = Vec::new();
        let mut ei_terms = Vec::new();
        for (r, (_, gr)) in circuit.externals.iter().enumerate() {
            for (c, (_, gc)) in circuit.externals.iter().enumerate() {
                if inst_of[*gr] == inst_of[*gc] {
                    ee_terms.push(EeTerm {
                        r,
                        c,
                        row: *gr,
                        col: *gc,
                    });
                }
            }
            let inst = &circuit.instances[inst_of[*gr]];
            for lh in 0..inst.port_names.len() {
                let h = inst.port_offset + lh;
                if partner[h] != NONE {
                    ei_terms.push(EiTerm {
                        r,
                        row: *gr,
                        col: h,
                        x_row: scalar_row(h),
                    });
                }
            }
        }

        // An instance touches the solve if it owns an internal port or
        // its S-matrix feeds the system/RHS (it is some row's source) —
        // both reduce to "has at least one internal port".
        let touches_system: Vec<bool> = (0..circuit.instances.len())
            .map(|ii| block_of_inst[ii] != NONE)
            .collect();

        BlockSchedule {
            sym,
            n_int,
            n_ext,
            diag_ones,
            matrix_scatter,
            matrix_ranges,
            rhs_scatter,
            rhs_ranges,
            ee_terms,
            ei_terms,
            touches_system,
        }
    }

    /// Whether instance `ii` contributes entries to the system matrix,
    /// the RHS panel or the `S_ei` combine coefficients.
    pub fn instance_touches_system(&self, ii: usize) -> bool {
        self.touches_system[ii]
    }

    /// Adds the identity and instance `ii`'s `−S` contributions to the
    /// factor value storage, reading the instance's diagonal block of
    /// `global`.
    pub fn scatter_matrix_instance(
        &self,
        ii: usize,
        global: &CMatrix,
        values: &mut SplitComplexVec,
    ) {
        let (start, end) = self.matrix_ranges[ii];
        for s in &self.matrix_scatter[start..end] {
            values.sub_assign(s.dst, global.at(s.row, s.col));
        }
    }

    /// Adds instance `ii`'s `+S` contributions to the RHS panel.
    pub fn scatter_rhs_instance(&self, ii: usize, global: &CMatrix, rhs: &mut SplitComplexVec) {
        let (start, end) = self.rhs_ranges[ii];
        for s in &self.rhs_scatter[start..end] {
            rhs.add_assign(s.dst, global.at(s.row, s.col));
        }
    }

    /// Adds the identity's `+1` diagonal into the factor value storage.
    pub fn scatter_identity(&self, values: &mut SplitComplexVec) {
        for &off in &self.diag_ones {
            values.add_assign(off, Complex::ONE);
        }
    }

    /// Scatters the complete system (identity + every instance) — the
    /// naive path's one-shot assembly.
    pub fn scatter_all(
        &self,
        n_instances: usize,
        global: &CMatrix,
        values: &mut SplitComplexVec,
        rhs: &mut SplitComplexVec,
    ) {
        self.scatter_identity(values);
        for ii in 0..n_instances {
            self.scatter_matrix_instance(ii, global, values);
            self.scatter_rhs_instance(ii, global, rhs);
        }
    }

    /// Reconstructs the external S-matrix from the solved split panel `x`
    /// (row-major `n_int × n_ext` in elimination order):
    /// `out = S_ee + S_ei · X`, touching only structurally nonzero
    /// entries. The sum accumulates in the caller's split `stage` buffer
    /// (resized to `n_ext × n_ext`, no allocation at steady state) with
    /// the `S_ei` rows running through the dispatched SIMD axpy; a final
    /// bit-exact interleave copy lands in `out`, reshaped `n_ext × n_ext`.
    pub fn combine(
        &self,
        global: &CMatrix,
        x: &SplitComplexVec,
        stage: &mut SplitComplexVec,
        out: &mut CMatrix,
    ) {
        let n_ext = self.n_ext;
        stage.resize_zero(n_ext * n_ext);
        for t in &self.ee_terms {
            stage.add_assign(t.r * n_ext + t.c, global.at(t.row, t.col));
        }
        let kern = simd::kernels();
        let (sr, si) = stage.parts_mut();
        for t in &self.ei_terms {
            let coeff = global.at(t.row, t.col);
            if coeff == Complex::ZERO {
                continue;
            }
            let xr = &x.re()[t.x_row * n_ext..(t.x_row + 1) * n_ext];
            let xi = &x.im()[t.x_row * n_ext..(t.x_row + 1) * n_ext];
            kern.axpy_add(
                coeff,
                xr,
                xi,
                &mut sr[t.r * n_ext..(t.r + 1) * n_ext],
                &mut si[t.r * n_ext..(t.r + 1) * n_ext],
            );
        }
        out.fill_from_split(n_ext, n_ext, sr, si);
    }
}
