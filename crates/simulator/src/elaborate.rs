//! Netlist elaboration: from a validated document to a simulatable circuit.

use crate::registry::ModelRegistry;
use picbench_netlist::{validate, Netlist, PortSpec, ValidationIssue};
use picbench_sparams::{Model, Settings};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// One resolved instance inside a [`Circuit`].
pub struct ElabInstance {
    /// Instance name from the netlist.
    pub name: String,
    /// The resolved model.
    pub model: Arc<dyn Model>,
    /// Settings converted for model evaluation.
    pub settings: Settings,
    /// Port names, in the model's order.
    pub port_names: Vec<String>,
    /// Global index of this instance's first port.
    pub port_offset: usize,
}

impl fmt::Debug for ElabInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElabInstance")
            .field("name", &self.name)
            .field("model", &self.model.info().name)
            .field("ports", &self.port_names)
            .field("port_offset", &self.port_offset)
            .finish()
    }
}

/// A fully resolved circuit ready for S-parameter evaluation.
///
/// Ports of all instances are numbered globally; connections and external
/// ports refer to those global indices.
#[derive(Debug)]
pub struct Circuit {
    /// Resolved instances in netlist order.
    pub instances: Vec<ElabInstance>,
    /// Internal connections as global port index pairs.
    pub connections: Vec<(usize, usize)>,
    /// External ports: `(external name, global port index)` in netlist
    /// order.
    pub externals: Vec<(String, usize)>,
    /// Total number of global ports.
    pub total_ports: usize,
}

/// Error from [`Circuit::elaborate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ElaborateError {
    /// Every issue the structural validator found.
    pub issues: Vec<ValidationIssue>,
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist failed validation with {} issue(s):",
            self.issues.len()
        )?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

impl Error for ElaborateError {}

impl Circuit {
    /// Validates and elaborates a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError`] carrying every [`ValidationIssue`] when
    /// the netlist violates the structural rules (Table II) or references
    /// unknown models/ports.
    pub fn elaborate(
        netlist: &Netlist,
        registry: &ModelRegistry,
        spec: Option<&PortSpec>,
    ) -> Result<Circuit, ElaborateError> {
        let issues = validate(netlist, registry, spec);
        if !issues.is_empty() {
            return Err(ElaborateError { issues });
        }

        let mut instances = Vec::with_capacity(netlist.instances.len());
        let mut offset = 0usize;
        for (name, inst) in netlist.instances.iter() {
            let model_ref = netlist
                .models
                .get(&inst.component)
                .cloned()
                .unwrap_or_else(|| inst.component.clone());
            let model = registry
                .get(&model_ref)
                .cloned()
                .ok_or_else(|| ElaborateError {
                    issues: vec![ValidationIssue::new(
                        picbench_netlist::FailureType::UndefinedModel,
                        format!("Model reference '{model_ref}' is not a built-in model."),
                    )],
                })?;
            let port_names = model.info().ports();
            let settings: Settings = inst
                .settings
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            let n_ports = port_names.len();
            instances.push(ElabInstance {
                name: name.to_string(),
                model,
                settings,
                port_names,
                port_offset: offset,
            });
            offset += n_ports;
        }
        let total_ports = offset;

        let global_index = |instance: &str, port: &str| -> Option<usize> {
            let inst = instances.iter().find(|i| i.name == instance)?;
            let local = inst.port_names.iter().position(|p| p == port)?;
            Some(inst.port_offset + local)
        };

        let mut connections = Vec::with_capacity(netlist.connections.len());
        for c in &netlist.connections {
            let a = global_index(&c.a.instance, &c.a.port).ok_or_else(|| ElaborateError {
                issues: vec![ValidationIssue::new(
                    picbench_netlist::FailureType::WrongPort,
                    format!("Connection endpoint {} could not be resolved.", c.a),
                )],
            })?;
            let b = global_index(&c.b.instance, &c.b.port).ok_or_else(|| ElaborateError {
                issues: vec![ValidationIssue::new(
                    picbench_netlist::FailureType::WrongPort,
                    format!("Connection endpoint {} could not be resolved.", c.b),
                )],
            })?;
            connections.push((a, b));
        }

        let mut externals = Vec::with_capacity(netlist.ports.len());
        for (name, pr) in netlist.ports.iter() {
            let idx = global_index(&pr.instance, &pr.port).ok_or_else(|| ElaborateError {
                issues: vec![ValidationIssue::new(
                    picbench_netlist::FailureType::WrongPort,
                    format!("External port target {pr} could not be resolved."),
                )],
            })?;
            externals.push((name.to_string(), idx));
        }

        Ok(Circuit {
            instances,
            connections,
            externals,
            total_ports,
        })
    }

    /// External port names in netlist order.
    pub fn external_names(&self) -> Vec<String> {
        self.externals.iter().map(|(n, _)| n.clone()).collect()
    }

    /// 64-bit FNV-1a digest of the circuit's *topology*: the total port
    /// count, the ordered connection index pairs and the external port
    /// indices.
    ///
    /// Two circuits with equal topology hashes have identical sweep
    /// structure — port partitions, permutations and elimination
    /// schedules — regardless of their component settings, so a
    /// [`crate::SweepSchedule`] built for one is valid for the other.
    /// Instance names and external port *names* are deliberately
    /// excluded: they label the result but do not shape the solve.
    pub fn topology_hash(&self) -> u64 {
        let mut h = picbench_netlist::Fnv64::new();
        h.write_u64(self.total_ports as u64);
        h.write_u64(self.connections.len() as u64);
        for &(a, b) in &self.connections {
            h.write_u64(a as u64);
            h.write_u64(b as u64);
        }
        h.write_u64(self.externals.len() as u64);
        for (_, idx) in &self.externals {
            h.write_u64(*idx as u64);
        }
        h.finish()
    }

    /// Total number of component instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::NetlistBuilder;

    fn mzi_ps_netlist() -> Netlist {
        NetlistBuilder::new()
            .instance("mmi1", "mmi")
            .instance("mmi2", "mmi")
            .instance_with("waveBottom", "waveguide", &[("length", 20.0)])
            .instance("phaseShifter", "phaseshifter")
            .connect("mmi1,O1", "waveBottom,I1")
            .connect("waveBottom,O1", "mmi2,O1")
            .connect("mmi1,O2", "phaseShifter,I1")
            .connect("phaseShifter,O1", "mmi2,O2")
            .port("I1", "mmi1,I1")
            .port("O1", "mmi2,I1")
            .model("mmi", "mmi1x2")
            .model("waveguide", "waveguide")
            .model("phaseshifter", "phaseshifter")
            .build()
    }

    #[test]
    fn elaborates_valid_netlist() {
        let registry = ModelRegistry::with_builtins();
        let circuit = Circuit::elaborate(&mzi_ps_netlist(), &registry, None).unwrap();
        assert_eq!(circuit.instance_count(), 4);
        // 3 + 3 + 2 + 2 global ports.
        assert_eq!(circuit.total_ports, 10);
        assert_eq!(circuit.connections.len(), 4);
        assert_eq!(circuit.external_names(), vec!["I1", "O1"]);
    }

    #[test]
    fn port_offsets_are_disjoint() {
        let registry = ModelRegistry::with_builtins();
        let circuit = Circuit::elaborate(&mzi_ps_netlist(), &registry, None).unwrap();
        let mut seen = std::collections::HashSet::new();
        for inst in &circuit.instances {
            for local in 0..inst.port_names.len() {
                assert!(seen.insert(inst.port_offset + local));
            }
        }
        assert_eq!(seen.len(), circuit.total_ports);
    }

    #[test]
    fn invalid_netlist_reports_issues() {
        let registry = ModelRegistry::with_builtins();
        let mut netlist = mzi_ps_netlist();
        netlist.connections[1].b = picbench_netlist::PortRef::new("mmi2", "I2");
        let err = Circuit::elaborate(&netlist, &registry, None).unwrap_err();
        assert_eq!(err.issues.len(), 1);
        assert!(err.to_string().contains("does not contain port I2"));
    }

    #[test]
    fn spec_violations_block_elaboration() {
        let registry = ModelRegistry::with_builtins();
        let spec = PortSpec::new(2, 2);
        let err = Circuit::elaborate(&mzi_ps_netlist(), &registry, Some(&spec)).unwrap_err();
        assert!(err
            .issues
            .iter()
            .any(|i| i.failure == picbench_netlist::FailureType::WrongPortCount));
    }
}
