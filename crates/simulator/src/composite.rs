//! Hierarchical (composite) models: a netlist packaged as a reusable
//! component.
//!
//! SAX supports nesting circuits as models of larger circuits; this is the
//! equivalent. A [`CompositeModel`] elaborates its netlist once and then
//! evaluates the sub-circuit's external S-matrix on demand, exposing the
//! sub-circuit's external ports as its own.

use crate::backend::{evaluate, Backend};
use crate::elaborate::{Circuit, ElaborateError};
use crate::registry::ModelRegistry;
use picbench_netlist::Netlist;
use picbench_sparams::{Model, ModelError, ModelInfo, PortDirection, SMatrix, Settings};

/// A model backed by an elaborated sub-circuit.
pub struct CompositeModel {
    info: ModelInfo,
    circuit: Circuit,
    backend: Backend,
}

impl std::fmt::Debug for CompositeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeModel")
            .field("name", &self.info.name)
            .field("instances", &self.circuit.instance_count())
            .finish()
    }
}

impl CompositeModel {
    /// Packages a netlist as a component model.
    ///
    /// The external ports of the netlist become the model's ports;
    /// `I*`-named ports are reported as inputs, everything else as
    /// outputs. Composites take no runtime parameters — fix the
    /// sub-circuit's settings in its netlist.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError`] when the netlist fails validation.
    pub fn from_netlist(
        name: &'static str,
        description: &'static str,
        netlist: &Netlist,
        registry: &ModelRegistry,
    ) -> Result<Self, ElaborateError> {
        let circuit = Circuit::elaborate(netlist, registry, None)?;
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for (port, _) in &circuit.externals {
            match picbench_sparams::port_direction(port) {
                PortDirection::Input => inputs.push(port.clone()),
                _ => outputs.push(port.clone()),
            }
        }
        Ok(CompositeModel {
            info: ModelInfo {
                name,
                description,
                inputs,
                outputs,
                params: Vec::new(),
            },
            circuit,
            backend: Backend::default(),
        })
    }

    /// Number of instances in the packaged sub-circuit.
    pub fn instance_count(&self) -> usize {
        self.circuit.instance_count()
    }
}

impl Model for CompositeModel {
    fn info(&self) -> &ModelInfo {
        &self.info
    }

    fn s_matrix(&self, wavelength_um: f64, settings: &Settings) -> Result<SMatrix, ModelError> {
        picbench_sparams::check_known_params(&self.info, settings)?;
        let inner = evaluate(&self.circuit, wavelength_um, self.backend).map_err(|e| {
            ModelError::InvalidValue {
                model: self.info.name.to_string(),
                param: "<subcircuit>".to_string(),
                value: wavelength_um,
                constraint: e.to_string(),
            }
        })?;
        // Reorder to the declared inputs-then-outputs port order.
        let ports = self.info.ports();
        let mut s = SMatrix::new(ports.clone());
        for from in &ports {
            for to in &ports {
                let v = inner.s(from, to).expect("composite ports must exist");
                s.set(from, to, v);
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::NetlistBuilder;
    use std::sync::Arc;

    fn mzi_netlist() -> Netlist {
        NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .instance("combine", "mmi1x2")
            .instance_with("top", "waveguide", &[("length", 10.0)])
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .connect("split,O1", "top,I1")
            .connect("split,O2", "bottom,I1")
            .connect("top,O1", "combine,O1")
            .connect("bottom,O1", "combine,O2")
            .port("I1", "split,I1")
            .port("O1", "combine,I1")
            .model("mmi1x2", "mmi1x2")
            .model("waveguide", "waveguide")
            .build()
    }

    #[test]
    fn composite_wraps_subcircuit() {
        let registry = ModelRegistry::with_builtins();
        let comp = CompositeModel::from_netlist("mymzi", "packaged MZI", &mzi_netlist(), &registry)
            .unwrap();
        assert_eq!(comp.info().name, "mymzi");
        assert_eq!(comp.info().inputs, vec!["I1"]);
        assert_eq!(comp.info().outputs, vec!["O1"]);
        assert_eq!(comp.instance_count(), 4);
        let s = comp.s_matrix(1.55, &Settings::new()).unwrap();
        assert!(s.s("I1", "O1").unwrap().abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn composite_registers_and_elaborates_hierarchically() {
        let mut registry = ModelRegistry::with_builtins();
        let comp = CompositeModel::from_netlist("mymzi", "packaged MZI", &mzi_netlist(), &registry)
            .unwrap();
        registry.register(Arc::new(comp));

        // Use the packaged MZI inside a larger circuit.
        let outer = NetlistBuilder::new()
            .instance("stage1", "mymzi")
            .instance("stage2", "mymzi")
            .connect("stage1,O1", "stage2,I1")
            .port("I1", "stage1,I1")
            .port("O1", "stage2,O1")
            .model("mymzi", "mymzi")
            .build();
        let circuit = Circuit::elaborate(&outer, &registry, None).unwrap();
        let s = evaluate(&circuit, 1.55, Backend::default()).unwrap();

        // Two cascaded identical MZIs square the single-stage transfer.
        let inner = Circuit::elaborate(&mzi_netlist(), &registry, None).unwrap();
        let single = evaluate(&inner, 1.55, Backend::default())
            .unwrap()
            .s("I1", "O1")
            .unwrap();
        let cascade = s.s("I1", "O1").unwrap();
        assert!((cascade - single * single).abs() < 1e-10);
    }

    #[test]
    fn composite_rejects_parameters() {
        let registry = ModelRegistry::with_builtins();
        let comp = CompositeModel::from_netlist("mymzi", "packaged MZI", &mzi_netlist(), &registry)
            .unwrap();
        let mut settings = Settings::new();
        settings.insert("delta_length", 3.0);
        assert!(matches!(
            comp.s_matrix(1.55, &settings),
            Err(ModelError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn invalid_subcircuit_fails_to_package() {
        let registry = ModelRegistry::with_builtins();
        let mut netlist = mzi_netlist();
        // Rebind the waveguide component to a model that does not exist.
        netlist
            .models
            .insert("waveguide".to_string(), "hyperguide".to_string());
        assert!(CompositeModel::from_netlist("broken", "broken", &netlist, &registry).is_err());
    }
}
