//! S-parameter composition backends.
//!
//! Three independent algorithms compute the external scattering matrix of
//! an elaborated circuit:
//!
//! * [`Backend::PortElimination`] — Filipsson's subnetwork-growth
//!   algorithm: place all instance S-matrices block-diagonally, then
//!   eliminate each internal connection pairwise with the two-port
//!   interconnect formula. O(C·P²), no linear solve, and the default.
//! * [`Backend::Dense`] — the global scattering solve
//!   `S_ext = S_ee + S_ei (I − P·S_ii)⁻¹ P·S_ie` where `P` swaps connected
//!   port pairs, using the in-repo complex LU.
//! * [`Backend::BlockSparse`] — the same scattering system factored by
//!   the topology-aware block-sparse LU ([`picbench_math::sparse`]):
//!   unknowns grouped by instance, a fill-reducing elimination order over
//!   the connectivity graph, and dense pivoting confined to diagonal
//!   blocks. Asymptotically the fastest on large sparse circuits (meshes,
//!   lattices); see the README's backend-selection guide.
//!
//! Having several lets property tests cross-check the physics: the
//! backends agree on every benchmark golden design to ~1e-9.

use crate::blocks::BlockSchedule;
use crate::elaborate::Circuit;
use picbench_math::{BlockSparseLu, CMatrix, Complex, LuDecomposition, SplitComplexVec};
use picbench_sparams::{ModelError, SMatrix};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Which composition algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Filipsson pairwise port elimination (default).
    #[default]
    PortElimination,
    /// Dense global scattering solve with LU.
    Dense,
    /// Topology-aware block-sparse scattering solve.
    BlockSparse,
}

impl Backend {
    /// Every composition algorithm, in default-first order — the axis the
    /// conformance harness sweeps when cross-checking backends.
    pub const ALL: [Backend; 3] = [
        Backend::PortElimination,
        Backend::Dense,
        Backend::BlockSparse,
    ];

    /// Stable kebab-case token used in CLI flags and reports.
    pub fn token(&self) -> &'static str {
        match self {
            Backend::PortElimination => "port-elimination",
            Backend::Dense => "dense",
            Backend::BlockSparse => "block-sparse",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::ALL
            .iter()
            .find(|b| b.token() == s)
            .copied()
            .ok_or_else(|| format!("unknown backend {s:?}"))
    }
}

/// Error while evaluating a circuit at a wavelength.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A component model rejected its settings or the wavelength.
    Model {
        /// Instance whose model failed.
        instance: String,
        /// The underlying model error.
        source: ModelError,
    },
    /// The global scattering system is singular (a lossless resonant loop
    /// at exactly this wavelength).
    SingularSystem {
        /// Wavelength at which the solve failed.
        wavelength_um: f64,
    },
    /// The computed response contains non-finite values.
    NonFiniteResult {
        /// Wavelength at which it happened.
        wavelength_um: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model { instance, source } => {
                write!(f, "instance '{instance}': {source}")
            }
            SimError::SingularSystem { wavelength_um } => write!(
                f,
                "scattering system is singular at {wavelength_um} um (undamped resonant loop)"
            ),
            SimError::NonFiniteResult { wavelength_um } => {
                write!(f, "non-finite S-parameters at {wavelength_um} um")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Evaluates every instance model and assembles the block-diagonal global
/// S-matrix.
fn assemble_global(circuit: &Circuit, wavelength_um: f64) -> Result<CMatrix, SimError> {
    let mut global = CMatrix::zeros(circuit.total_ports, circuit.total_ports);
    for inst in &circuit.instances {
        let s = inst
            .model
            .s_matrix(wavelength_um, &inst.settings)
            .map_err(|source| SimError::Model {
                instance: inst.name.clone(),
                source,
            })?;
        let n = s.dim();
        let m = s.matrix();
        for r in 0..n {
            for c in 0..n {
                global[(inst.port_offset + r, inst.port_offset + c)] = m[(r, c)];
            }
        }
    }
    Ok(global)
}

/// Evaluates the circuit's external S-matrix at one wavelength.
///
/// # Errors
///
/// Returns [`SimError`] when a model fails, the system is singular, or the
/// result is non-finite.
pub fn evaluate(
    circuit: &Circuit,
    wavelength_um: f64,
    backend: Backend,
) -> Result<SMatrix, SimError> {
    let result = match backend {
        Backend::Dense => evaluate_dense(circuit, wavelength_um),
        Backend::PortElimination => evaluate_elimination(circuit, wavelength_um),
        Backend::BlockSparse => evaluate_block_sparse(circuit, wavelength_um),
    }?;
    if !result.matrix().is_finite() {
        return Err(SimError::NonFiniteResult { wavelength_um });
    }
    Ok(result)
}

fn evaluate_dense(circuit: &Circuit, wavelength_um: f64) -> Result<SMatrix, SimError> {
    let global = assemble_global(circuit, wavelength_um)?;

    // Partition global ports: external vs. internal (connected).
    let ext_idx: Vec<usize> = circuit.externals.iter().map(|(_, i)| *i).collect();
    let mut int_idx: Vec<usize> = Vec::with_capacity(circuit.connections.len() * 2);
    for &(a, b) in &circuit.connections {
        int_idx.push(a);
        int_idx.push(b);
    }
    // Position of each internal port inside int_idx, for the permutation.
    let mut pos_of = std::collections::HashMap::new();
    for (pos, &g) in int_idx.iter().enumerate() {
        pos_of.insert(g, pos);
    }
    // swap[p] = the position of the port connected to int_idx[p].
    let mut swap = vec![0usize; int_idx.len()];
    for &(a, b) in &circuit.connections {
        let pa = pos_of[&a];
        let pb = pos_of[&b];
        swap[pa] = pb;
        swap[pb] = pa;
    }

    let s_ee = global.submatrix(&ext_idx, &ext_idx);
    let s_ei = global.submatrix(&ext_idx, &int_idx);
    let s_ie = global.submatrix(&int_idx, &ext_idx);
    let s_ii = global.submatrix(&int_idx, &int_idx);

    if int_idx.is_empty() {
        return Ok(SMatrix::from_matrix(circuit.external_names(), s_ee));
    }

    // P·M permutes rows: (P·M)[r] = M[swap(r)].
    let permute_rows =
        |m: &CMatrix| -> CMatrix { CMatrix::from_fn(m.rows(), m.cols(), |r, c| m[(swap[r], c)]) };
    let p_s_ii = permute_rows(&s_ii);
    let p_s_ie = permute_rows(&s_ie);

    let n_int = int_idx.len();
    let system = &CMatrix::identity(n_int) - &p_s_ii;
    let lu =
        LuDecomposition::factor(&system).map_err(|_| SimError::SingularSystem { wavelength_um })?;
    let x = lu.solve_matrix(&p_s_ie);
    let s_ext = &s_ee + &(&s_ei * &x);
    Ok(SMatrix::from_matrix(circuit.external_names(), s_ext))
}

/// The naive block-sparse solve: rebuild the block structure, the
/// symbolic analysis and the assembly from scratch at this one
/// wavelength. The planned pipeline ([`crate::SweepPlan`]) runs the same
/// arithmetic with the structure frozen once per topology.
fn evaluate_block_sparse(circuit: &Circuit, wavelength_um: f64) -> Result<SMatrix, SimError> {
    let global = assemble_global(circuit, wavelength_um)?;
    let sched = BlockSchedule::for_circuit(circuit);
    let mut lu = BlockSparseLu::new();
    lu.reset(&sched.sym);
    let mut rhs = SplitComplexVec::new();
    rhs.resize_zero(sched.n_int * sched.n_ext);
    sched.scatter_all(circuit.instances.len(), &global, lu.values_mut(), &mut rhs);
    lu.factor(&sched.sym)
        .map_err(|_| SimError::SingularSystem { wavelength_um })?;
    lu.solve_in_place(&sched.sym, &mut rhs, sched.n_ext);
    let mut out = CMatrix::zeros(0, 0);
    let mut stage = SplitComplexVec::new();
    sched.combine(&global, &rhs, &mut stage, &mut out);
    Ok(SMatrix::from_matrix(circuit.external_names(), out))
}

fn evaluate_elimination(circuit: &Circuit, wavelength_um: f64) -> Result<SMatrix, SimError> {
    let mut m = assemble_global(circuit, wavelength_um)?;
    // active[g] = current row/col of global port g, or usize::MAX if gone.
    let n0 = circuit.total_ports;
    let mut index: Vec<usize> = (0..n0).collect();
    const GONE: usize = usize::MAX;

    for &(ga, gb) in &circuit.connections {
        let p = index[ga];
        let q = index[gb];
        debug_assert!(p != GONE && q != GONE, "port connected twice");
        let n = m.rows();

        let s_pq = m[(p, q)];
        let s_qp = m[(q, p)];
        let s_pp = m[(p, p)];
        let s_qq = m[(q, q)];
        let denom = (Complex::ONE - s_pq) * (Complex::ONE - s_qp) - s_pp * s_qq;
        if denom.abs() < 1e-300 {
            return Err(SimError::SingularSystem { wavelength_um });
        }
        let inv_d = denom.recip();

        // Surviving rows/cols in the old matrix.
        let keep: Vec<usize> = (0..n).filter(|&k| k != p && k != q).collect();
        let mut next = CMatrix::zeros(n - 2, n - 2);
        for (ri, &i) in keep.iter().enumerate() {
            let s_ip = m[(i, p)];
            let s_iq = m[(i, q)];
            for (cj, &j) in keep.iter().enumerate() {
                let s_qj = m[(q, j)];
                let s_pj = m[(p, j)];
                let numer = s_qj * (Complex::ONE - s_pq) * s_ip
                    + s_pj * s_qq * s_ip
                    + s_pj * (Complex::ONE - s_qp) * s_iq
                    + s_qj * s_pp * s_iq;
                next[(ri, cj)] = m[(i, j)] + numer * inv_d;
            }
        }

        // Re-index the surviving global ports.
        let mut new_pos = vec![GONE; n];
        for (ri, &old) in keep.iter().enumerate() {
            new_pos[old] = ri;
        }
        for gi in index.iter_mut() {
            if *gi != GONE {
                *gi = new_pos[*gi];
            }
        }
        m = next;
    }

    // Select external rows/cols from the reduced matrix.
    let ext_rows: Vec<usize> = circuit.externals.iter().map(|(_, g)| index[*g]).collect();
    debug_assert!(ext_rows.iter().all(|&r| r != GONE));
    let s_ext = m.submatrix(&ext_rows, &ext_rows);
    Ok(SMatrix::from_matrix(circuit.external_names(), s_ext))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::Circuit;
    use crate::registry::ModelRegistry;
    use picbench_netlist::{Netlist, NetlistBuilder};

    fn elaborate(netlist: &Netlist) -> Circuit {
        let registry = ModelRegistry::with_builtins();
        Circuit::elaborate(netlist, &registry, None).unwrap()
    }

    fn two_waveguide_chain(lengths: (f64, f64)) -> Netlist {
        NetlistBuilder::new()
            .instance_with("wg1", "waveguide", &[("length", lengths.0), ("loss", 0.0)])
            .instance_with("wg2", "waveguide", &[("length", lengths.1), ("loss", 0.0)])
            .connect("wg1,O1", "wg2,I1")
            .port("I1", "wg1,I1")
            .port("O1", "wg2,O1")
            .model("waveguide", "waveguide")
            .build()
    }

    #[test]
    fn cascade_multiplies_transfers() {
        let circuit = elaborate(&two_waveguide_chain((7.0, 13.0)));
        let single = elaborate(
            &NetlistBuilder::new()
                .instance_with("wg", "waveguide", &[("length", 20.0), ("loss", 0.0)])
                .port("I1", "wg,I1")
                .port("O1", "wg,O1")
                .model("waveguide", "waveguide")
                .build(),
        );
        for backend in Backend::ALL {
            let chained = evaluate(&circuit, 1.55, backend).unwrap();
            let direct = evaluate(&single, 1.55, backend).unwrap();
            let a = chained.s("I1", "O1").unwrap();
            let b = direct.s("I1", "O1").unwrap();
            assert!((a - b).abs() < 1e-10, "{backend}: {a} vs {b}");
        }
    }

    #[test]
    fn backends_agree_on_mzi_circuit() {
        // Full MZI built from parts: splitter, two arms, combiner.
        let netlist = NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .instance("combine", "mmi1x2")
            .instance_with("top", "waveguide", &[("length", 10.0)])
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .connect("split,O1", "top,I1")
            .connect("split,O2", "bottom,I1")
            .connect("top,O1", "combine,O1")
            .connect("bottom,O1", "combine,O2")
            .port("I1", "split,I1")
            .port("O1", "combine,I1")
            .model("mmi1x2", "mmi1x2")
            .model("waveguide", "waveguide")
            .build();
        let circuit = elaborate(&netlist);
        let mut wl = 1.51;
        while wl <= 1.59 {
            let a = evaluate(&circuit, wl, Backend::PortElimination).unwrap();
            let b = evaluate(&circuit, wl, Backend::Dense).unwrap();
            assert!(
                a.max_abs_diff(&b) < 1e-9,
                "backends disagree at wl={wl}: {:.3e}",
                a.max_abs_diff(&b)
            );
            wl += 0.005;
        }
    }

    #[test]
    fn mzi_circuit_matches_builtin_mzi_model() {
        // The discrete MZI (above, ΔL = 15) must match the built-in `mzi`
        // model with the same ΔL and base length.
        let discrete = NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .instance("combine", "mmi1x2")
            .instance_with("top", "waveguide", &[("length", 10.0)])
            .instance_with("bottom", "waveguide", &[("length", 25.0)])
            .connect("split,O1", "top,I1")
            .connect("split,O2", "bottom,I1")
            .connect("top,O1", "combine,O1")
            .connect("bottom,O1", "combine,O2")
            .port("I1", "split,I1")
            .port("O1", "combine,I1")
            .model("mmi1x2", "mmi1x2")
            .model("waveguide", "waveguide")
            .build();
        let builtin = NetlistBuilder::new()
            .instance_with("m", "mzi", &[("length", 10.0), ("delta_length", 15.0)])
            .port("I1", "m,I1")
            .port("O1", "m,O1")
            .model("mzi", "mzi")
            .build();
        let c1 = elaborate(&discrete);
        let c2 = elaborate(&builtin);
        for wl in [1.51, 1.53, 1.55, 1.57, 1.59] {
            let t1 = evaluate(&c1, wl, Backend::PortElimination)
                .unwrap()
                .s("I1", "O1")
                .unwrap();
            let t2 = evaluate(&c2, wl, Backend::PortElimination)
                .unwrap()
                .s("I1", "O1")
                .unwrap();
            assert!((t1 - t2).abs() < 1e-10, "wl={wl}: {t1} vs {t2}");
        }
    }

    #[test]
    fn open_internal_ports_absorb() {
        // A 1x2 splitter with one leg unconnected: half the power leaves
        // through the open leg and never returns.
        let netlist = NetlistBuilder::new()
            .instance("split", "mmi1x2")
            .port("I1", "split,I1")
            .port("O1", "split,O1")
            .model("mmi1x2", "mmi1x2")
            .build();
        let circuit = elaborate(&netlist);
        for backend in Backend::ALL {
            let s = evaluate(&circuit, 1.55, backend).unwrap();
            assert!((s.s("I1", "O1").unwrap().norm_sqr() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn no_connections_circuit() {
        let netlist = NetlistBuilder::new()
            .instance_with("wg", "waveguide", &[("length", 5.0)])
            .port("I1", "wg,I1")
            .port("O1", "wg,O1")
            .model("waveguide", "waveguide")
            .build();
        let circuit = elaborate(&netlist);
        for backend in Backend::ALL {
            let s = evaluate(&circuit, 1.55, backend).unwrap();
            assert!(s.s("I1", "O1").unwrap().abs() > 0.99);
        }
    }

    #[test]
    fn model_error_carries_instance_name() {
        let netlist = NetlistBuilder::new()
            .instance_with("badcoupler", "coupler", &[("coupling", 2.0)])
            .port("I1", "badcoupler,I1")
            .port("O1", "badcoupler,O1")
            .model("coupler", "coupler")
            .build();
        let circuit = elaborate(&netlist);
        let err = evaluate(&circuit, 1.55, Backend::PortElimination).unwrap_err();
        match &err {
            SimError::Model { instance, .. } => assert_eq!(instance, "badcoupler"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("badcoupler"));
    }

    #[test]
    fn ring_from_parts_matches_allpass_model() {
        // Build an all-pass ring discretely: a coupler whose cross ports
        // are joined by a waveguide loop of the ring circumference.
        let radius: f64 = 5.0;
        let circumference = 2.0 * std::f64::consts::PI * radius;
        let kappa = 0.1;
        let netlist = NetlistBuilder::new()
            .instance_with("dc", "coupler", &[("coupling", kappa)])
            .instance_with("loop", "waveguide", &[("length", circumference)])
            .connect("dc,O2", "loop,I1")
            .connect("loop,O1", "dc,I2")
            .port("I1", "dc,I1")
            .port("O1", "dc,O1")
            .model("coupler", "coupler")
            .model("waveguide", "waveguide")
            .build();
        let circuit = elaborate(&netlist);

        let registry = ModelRegistry::with_builtins();
        let ring = registry.get("ringap").unwrap();
        let mut settings = picbench_sparams::Settings::new();
        settings.insert("radius", radius);
        settings.insert("coupling", kappa);

        for wl in [1.52, 1.54, 1.551, 1.56, 1.58] {
            let builtin = ring.s_matrix(wl, &settings).unwrap();
            for backend in Backend::ALL {
                let discrete = evaluate(&circuit, wl, backend).unwrap();
                let a = discrete.s("I1", "O1").unwrap();
                let b = builtin.s("I1", "O1").unwrap();
                assert!(
                    (a.abs() - b.abs()).abs() < 1e-6,
                    "{backend} wl={wl}: |{a}| vs |{b}|"
                );
            }
        }
    }
}
