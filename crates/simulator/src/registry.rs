//! The model registry: name → component model.

use picbench_netlist::ComponentCatalog;
use picbench_sparams::{builtin_models, Model};
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of component models addressable by reference name.
///
/// The `models` section of a netlist binds component types to these
/// reference names. The registry implements
/// [`picbench_netlist::ComponentCatalog`] so the structural validator can
/// check model existence and port names.
///
/// # Examples
///
/// ```
/// use picbench_sim::ModelRegistry;
/// use picbench_netlist::ComponentCatalog;
///
/// let registry = ModelRegistry::with_builtins();
/// assert!(registry.has_model("mmi1x2"));
/// assert_eq!(
///     registry.ports_of("waveguide").unwrap(),
///     vec!["I1".to_string(), "O1".to_string()]
/// );
/// ```
#[derive(Clone)]
pub struct ModelRegistry {
    models: HashMap<String, Arc<dyn Model>>,
    order: Vec<String>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            models: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Creates a registry pre-loaded with every built-in model.
    pub fn with_builtins() -> Self {
        let mut reg = ModelRegistry::new();
        for model in builtin_models() {
            reg.register(model);
        }
        reg
    }

    /// Registers a model under its own [`ModelInfo::name`], replacing any
    /// previous model of the same name.
    ///
    /// [`ModelInfo::name`]: picbench_sparams::ModelInfo::name
    pub fn register(&mut self, model: Arc<dyn Model>) {
        let name = model.info().name.to_string();
        if self.models.insert(name.clone(), model).is_none() {
            self.order.push(name);
        }
    }

    /// Looks up a model by reference name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Model>> {
        self.models.get(name)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates over the models in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Model>> {
        self.order.iter().filter_map(|name| self.models.get(name))
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::with_builtins()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.order)
            .finish()
    }
}

impl ComponentCatalog for ModelRegistry {
    fn has_model(&self, model_ref: &str) -> bool {
        self.models.contains_key(model_ref)
    }

    fn ports_of(&self, model_ref: &str) -> Option<Vec<String>> {
        self.models.get(model_ref).map(|m| m.info().ports())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        let reg = ModelRegistry::with_builtins();
        for name in [
            "waveguide",
            "phaseshifter",
            "mmi1x2",
            "mmi2x2",
            "coupler",
            "mzi",
        ] {
            assert!(reg.has_model(name), "missing {name}");
        }
        assert!(!reg.has_model("flux_capacitor"));
        assert!(!reg.is_empty());
    }

    #[test]
    fn catalog_ports_match_model_info() {
        let reg = ModelRegistry::with_builtins();
        assert_eq!(
            reg.ports_of("mmi1x2").unwrap(),
            vec!["I1".to_string(), "O1".to_string(), "O2".to_string()]
        );
        assert_eq!(reg.ports_of("nope"), None);
    }

    #[test]
    fn registration_order_is_preserved() {
        let reg = ModelRegistry::with_builtins();
        let first = reg.iter().next().unwrap().info().name;
        assert_eq!(first, "waveguide");
        assert_eq!(reg.iter().count(), reg.len());
    }

    #[test]
    fn re_registration_replaces() {
        let mut reg = ModelRegistry::with_builtins();
        let n = reg.len();
        reg.register(std::sync::Arc::new(
            picbench_sparams::models::Waveguide::default(),
        ));
        assert_eq!(reg.len(), n);
    }
}
