//! Wavelength sweeps and frequency responses.
//!
//! [`sweep`] is the production entry point: it builds a [`SweepPlan`] once
//! per circuit, then executes the per-point solves on reusable
//! [`SolveWorkspace`]s — serially for short grids, on scoped worker
//! threads (one workspace each, deterministic output ordering) for grids
//! of [`PARALLEL_THRESHOLD`] points or more. [`sweep_naive`] keeps the
//! original rebuild-everything-per-point path alive as the benchmark
//! baseline and cross-check reference.

use crate::backend::{evaluate, Backend, SimError};
use crate::elaborate::Circuit;
use crate::plan::{SolveWorkspace, StripeMode, SweepPlan};
use picbench_math::{CMatrix, Complex};
use picbench_sparams::SMatrix;
use std::fmt;

/// A uniform wavelength grid in micrometres.
///
/// The paper simulates "over the wavelength range of 1510 to 1590 nm";
/// [`WavelengthGrid::paper_default`] reproduces that with 81 points
/// (1 nm steps), and [`WavelengthGrid::paper_fast`] is a coarser grid for
/// Monte-Carlo campaigns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WavelengthGrid {
    /// First wavelength (µm).
    pub start_um: f64,
    /// Last wavelength (µm).
    pub stop_um: f64,
    /// Number of points (≥ 1).
    pub points: usize,
}

impl WavelengthGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0` or `stop_um < start_um`.
    pub fn new(start_um: f64, stop_um: f64, points: usize) -> Self {
        assert!(points >= 1, "grid needs at least one point");
        assert!(stop_um >= start_um, "stop must not precede start");
        WavelengthGrid {
            start_um,
            stop_um,
            points,
        }
    }

    /// The paper's 1510–1590 nm range at 1 nm resolution.
    pub fn paper_default() -> Self {
        WavelengthGrid::new(1.51, 1.59, 81)
    }

    /// The same range at 5 nm resolution, for fast campaign scoring.
    pub fn paper_fast() -> Self {
        WavelengthGrid::new(1.51, 1.59, 17)
    }

    /// The wavelengths, evenly spaced inclusive of both ends.
    pub fn wavelengths(&self) -> Vec<f64> {
        if self.points == 1 {
            return vec![self.start_um];
        }
        let step = (self.stop_um - self.start_um) / (self.points - 1) as f64;
        (0..self.points)
            .map(|i| self.start_um + step * i as f64)
            .collect()
    }
}

/// The simulated frequency response of a circuit: one external S-matrix
/// per grid wavelength.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResponse {
    wavelengths: Vec<f64>,
    ports: Vec<String>,
    samples: Vec<SMatrix>,
}

impl FrequencyResponse {
    /// Reassembles a response from its parts — the constructor used by
    /// persistence layers that reload responses from disk. Returns `None`
    /// unless every sample has one row/column per port and there is one
    /// sample per wavelength, so a decoded response upholds the same
    /// invariants a swept one does.
    pub fn from_parts(
        wavelengths: Vec<f64>,
        ports: Vec<String>,
        samples: Vec<SMatrix>,
    ) -> Option<FrequencyResponse> {
        if samples.len() != wavelengths.len() {
            return None;
        }
        if samples
            .iter()
            .any(|s| s.dim() != ports.len() || s.ports() != &ports[..])
        {
            return None;
        }
        Some(FrequencyResponse {
            wavelengths,
            ports,
            samples,
        })
    }

    /// External port names.
    pub fn ports(&self) -> &[String] {
        &self.ports
    }

    /// The wavelength grid points (µm).
    pub fn wavelengths(&self) -> &[f64] {
        &self.wavelengths
    }

    /// The S-matrix at grid index `i`.
    pub fn sample(&self, i: usize) -> Option<&SMatrix> {
        self.samples.get(i)
    }

    /// Mutable access to the S-matrix at grid index `i` — the seam
    /// fault-injection harnesses use to perturb a computed response and
    /// prove the checks downstream would catch a solver bug.
    pub fn sample_mut(&mut self, i: usize) -> Option<&mut SMatrix> {
        self.samples.get_mut(i)
    }

    /// The complex transfer series from `from` to `to` across the sweep,
    /// or `None` if either port is unknown.
    pub fn transmission(&self, from: &str, to: &str) -> Option<Vec<Complex>> {
        self.samples.iter().map(|s| s.s(from, to)).collect()
    }

    /// The power transmission (|S|²) series in dB.
    pub fn transmission_db(&self, from: &str, to: &str) -> Option<Vec<f64>> {
        Some(
            self.transmission(from, to)?
                .iter()
                .map(|t| picbench_math::power_ratio_to_db(t.norm_sqr()))
                .collect(),
        )
    }

    /// Compares two responses. See [`ResponseComparison`].
    pub fn compare(&self, other: &FrequencyResponse) -> ResponseComparison {
        if self.ports != other.ports {
            return ResponseComparison {
                ports_match: false,
                grids_match: self.wavelengths == other.wavelengths,
                max_power_diff: f64::INFINITY,
                rms_power_diff: f64::INFINITY,
            };
        }
        let grids_match = self.wavelengths == other.wavelengths;
        if !grids_match {
            return ResponseComparison {
                ports_match: true,
                grids_match: false,
                max_power_diff: f64::INFINITY,
                rms_power_diff: f64::INFINITY,
            };
        }
        let mut max_diff = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut count = 0usize;
        for (a, b) in self.samples.iter().zip(&other.samples) {
            let n = a.dim();
            for r in 0..n {
                for c in 0..n {
                    let pa = a.matrix()[(r, c)].norm_sqr();
                    let pb = b.matrix()[(r, c)].norm_sqr();
                    let d = (pa - pb).abs();
                    max_diff = max_diff.max(d);
                    sum_sq += d * d;
                    count += 1;
                }
            }
        }
        let rms = if count > 0 {
            (sum_sq / count as f64).sqrt()
        } else {
            0.0
        };
        ResponseComparison {
            ports_match: true,
            grids_match: true,
            max_power_diff: max_diff,
            rms_power_diff: rms,
        }
    }
}

/// The outcome of comparing two frequency responses.
///
/// The benchmark's functionality check compares the *power* response
/// (|S|²) of every external port pair across the sweep — the same
/// "compare the simulation results between generated code completions and
/// golden reference solutions" criterion the paper uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseComparison {
    /// Whether the external port name lists are identical.
    pub ports_match: bool,
    /// Whether the wavelength grids are identical.
    pub grids_match: bool,
    /// Largest |ΔS|² over all port pairs and wavelengths.
    pub max_power_diff: f64,
    /// Root-mean-square of the power differences.
    pub rms_power_diff: f64,
}

impl ResponseComparison {
    /// Whether the responses agree within `tol` (on the max power diff).
    pub fn is_equivalent(&self, tol: f64) -> bool {
        self.ports_match && self.grids_match && self.max_power_diff <= tol
    }
}

impl fmt::Display for ResponseComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ports_match {
            return write!(f, "external port lists differ");
        }
        if !self.grids_match {
            return write!(f, "wavelength grids differ");
        }
        write!(
            f,
            "max |ΔS|² = {:.3e}, rms = {:.3e}",
            self.max_power_diff, self.rms_power_diff
        )
    }
}

/// Grids with at least this many points sweep on parallel workers by
/// default (when more than one CPU is available).
pub const PARALLEL_THRESHOLD: usize = 16;

/// Sweeps a circuit over a wavelength grid.
///
/// Plan-based: wavelength-independent structure is computed once, every
/// per-point solve runs allocation-free on a reused workspace, and grids
/// of [`PARALLEL_THRESHOLD`] or more points are distributed over scoped
/// worker threads. Serial and parallel execution produce element-wise
/// identical results.
///
/// # Errors
///
/// Returns the [`SimError`] of the lowest-indexed failing grid point.
pub fn sweep(
    circuit: &Circuit,
    grid: &WavelengthGrid,
    backend: Backend,
) -> Result<FrequencyResponse, SimError> {
    let threads = if grid.points >= PARALLEL_THRESHOLD {
        available_threads()
    } else {
        1
    };
    sweep_with_threads(circuit, grid, backend, threads)
}

/// Plan-based sweep forced onto a single thread.
///
/// # Errors
///
/// Returns the [`SimError`] of the lowest-indexed failing grid point.
pub fn sweep_serial(
    circuit: &Circuit,
    grid: &WavelengthGrid,
    backend: Backend,
) -> Result<FrequencyResponse, SimError> {
    sweep_with_threads(circuit, grid, backend, 1)
}

/// Plan-based sweep on an explicit number of worker threads (`0` means
/// one per available CPU).
///
/// # Errors
///
/// Returns the [`SimError`] of the lowest-indexed failing grid point.
pub fn sweep_parallel(
    circuit: &Circuit,
    grid: &WavelengthGrid,
    backend: Backend,
    threads: usize,
) -> Result<FrequencyResponse, SimError> {
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    sweep_with_threads(circuit, grid, backend, threads)
}

/// The original sweep: rebuild the whole composition at every grid point
/// via [`evaluate`]. Kept as the benchmark baseline and as an independent
/// cross-check of the plan-based path.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered at any grid point.
pub fn sweep_naive(
    circuit: &Circuit,
    grid: &WavelengthGrid,
    backend: Backend,
) -> Result<FrequencyResponse, SimError> {
    let wavelengths = grid.wavelengths();
    let mut samples = Vec::with_capacity(wavelengths.len());
    for &wl in &wavelengths {
        samples.push(evaluate(circuit, wl, backend)?);
    }
    Ok(FrequencyResponse {
        wavelengths,
        ports: circuit.external_names(),
        samples,
    })
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn sweep_with_threads(
    circuit: &Circuit,
    grid: &WavelengthGrid,
    backend: Backend,
    threads: usize,
) -> Result<FrequencyResponse, SimError> {
    let plan = SweepPlan::new(circuit, backend)?;
    sweep_with_plan(&plan, grid, threads)
}

/// Sweeps over a grid on a prebuilt [`SweepPlan`] — the entry point for
/// callers that reuse plans/schedules across many sweeps (the evaluation
/// cache's miss path). `threads == 0` applies the default policy
/// (parallel for grids of [`PARALLEL_THRESHOLD`] points or more); any
/// other value forces that worker count. All thread counts produce
/// element-wise identical results.
///
/// # Errors
///
/// Returns the [`SimError`] of the lowest-indexed failing grid point.
pub fn sweep_with_plan(
    plan: &SweepPlan<'_>,
    grid: &WavelengthGrid,
    threads: usize,
) -> Result<FrequencyResponse, SimError> {
    let threads = if threads == 0 {
        if grid.points >= PARALLEL_THRESHOLD {
            available_threads()
        } else {
            1
        }
    } else {
        threads
    };
    let circuit = plan.circuit();
    let wavelengths = grid.wavelengths();
    let ports = circuit.external_names();
    let n_ext = ports.len();

    // Preallocate every output sample up front; workers only copy solved
    // matrices into their slots, keeping the point loop allocation-free
    // and the output ordering deterministic by construction.
    let mut samples: Vec<SMatrix> = (0..wavelengths.len())
        .map(|_| SMatrix::from_matrix(ports.clone(), CMatrix::zeros(n_ext, n_ext)))
        .collect();

    // A fully memoized circuit answers identically at every wavelength:
    // solve one point and replicate it (bit-identical to the full loop).
    if plan.folds_to_constant() && wavelengths.len() > 1 {
        let mut ws = plan.workspace();
        run_point(plan, &mut ws, wavelengths[0], &mut samples[0])?;
        replicate_first_sample(&mut samples);
        return Ok(FrequencyResponse {
            wavelengths,
            ports,
            samples,
        });
    }

    let workers = threads.max(1).min(wavelengths.len().max(1));
    if workers <= 1 {
        let mut ws = plan.workspace();
        run_chunk(plan, &mut ws, &wavelengths, &mut samples, 0).map_err(|(_, e)| e)?;
    } else {
        // Contiguous chunks: point cost is uniform across the band, so a
        // static split balances well and needs no synchronisation.
        let chunk_len = wavelengths.len().div_ceil(workers);
        let mut first_error: Option<(usize, SimError)> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (chunk_index, chunk) in samples.chunks_mut(chunk_len).enumerate() {
                let plan: &SweepPlan<'_> = plan;
                let wavelengths = &wavelengths;
                handles.push(scope.spawn(move || -> Result<(), (usize, SimError)> {
                    let mut ws = plan.workspace();
                    let base = chunk_index * chunk_len;
                    run_chunk(
                        plan,
                        &mut ws,
                        &wavelengths[base..base + chunk.len()],
                        chunk,
                        base,
                    )
                }));
            }
            for handle in handles {
                if let Err((index, error)) = handle.join().expect("sweep worker panicked") {
                    // Deterministic error reporting: keep the failure of
                    // the lowest-indexed grid point.
                    if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                        first_error = Some((index, error));
                    }
                }
            }
        });
        if let Some((_, error)) = first_error {
            return Err(error);
        }
    }

    Ok(FrequencyResponse {
        wavelengths,
        ports,
        samples,
    })
}

/// Serial sweep on a prebuilt plan **and** a caller-owned workspace.
///
/// The workspace is re-targeted at the plan first
/// ([`SweepPlan::reset_workspace`]), so one workspace can serve an
/// arbitrary sequence of circuits without reallocating once its buffers
/// reach their high-water mark — this is the evaluation pipeline's inner
/// loop. Bit-identical to [`sweep_serial`] and to every parallel worker
/// count.
///
/// # Errors
///
/// Returns the [`SimError`] of the lowest-indexed failing grid point.
pub fn sweep_planned(
    plan: &SweepPlan<'_>,
    grid: &WavelengthGrid,
    ws: &mut SolveWorkspace,
) -> Result<FrequencyResponse, SimError> {
    plan.reset_workspace(ws);
    let wavelengths = grid.wavelengths();
    let ports = plan.circuit().external_names();
    let n_ext = ports.len();
    let mut samples: Vec<SMatrix> = (0..wavelengths.len())
        .map(|_| SMatrix::from_matrix(ports.clone(), CMatrix::zeros(n_ext, n_ext)))
        .collect();
    if plan.folds_to_constant() && wavelengths.len() > 1 {
        run_point(plan, ws, wavelengths[0], &mut samples[0])?;
        replicate_first_sample(&mut samples);
    } else {
        run_chunk(plan, ws, &wavelengths, &mut samples, 0).map_err(|(_, e)| e)?;
    }
    Ok(FrequencyResponse {
        wavelengths,
        ports,
        samples,
    })
}

/// Copies the solved first sample into every remaining slot (the
/// constant-response fold for fully memoized circuits).
fn replicate_first_sample(samples: &mut [SMatrix]) {
    let (first, rest) = samples.split_first_mut().expect("at least one sample");
    for sample in rest {
        sample.matrix_mut().copy_from(first.matrix());
    }
}

fn run_point(
    plan: &SweepPlan<'_>,
    ws: &mut SolveWorkspace,
    wavelength_um: f64,
    sample: &mut SMatrix,
) -> Result<(), SimError> {
    plan.evaluate_into(ws, wavelength_um, sample.matrix_mut())
}

/// Runs one contiguous chunk of grid points, batching it as a single
/// stripe when the plan supports factoring once
/// ([`SweepPlan::stripe_factors_once`]): the first point solves the
/// system, the rest reuse the retained factorization (or a plain copy
/// when the whole circuit is wavelength-independent). Per-point results
/// are element-wise identical regardless of how the grid is chunked, so
/// serial and parallel sweeps stay bit-identical. Errors carry the
/// *global* grid index (`base` + offset).
fn run_chunk(
    plan: &SweepPlan<'_>,
    ws: &mut SolveWorkspace,
    wavelengths: &[f64],
    samples: &mut [SMatrix],
    base: usize,
) -> Result<(), (usize, SimError)> {
    debug_assert_eq!(wavelengths.len(), samples.len());
    match plan.stripe_mode(samples.len()) {
        StripeMode::PerPoint => {
            for (offset, (&wl, sample)) in wavelengths.iter().zip(samples.iter_mut()).enumerate() {
                run_point(plan, ws, wl, sample).map_err(|e| (base + offset, e))?;
            }
        }
        mode @ (StripeMode::FactorOnceCopy | StripeMode::FactorOnceRecombine) => {
            let (first, rest) = samples.split_first_mut().expect("points > 1");
            run_point(plan, ws, wavelengths[0], first).map_err(|e| (base, e))?;
            for (offset, sample) in rest.iter_mut().enumerate() {
                match mode {
                    StripeMode::FactorOnceCopy => sample.matrix_mut().copy_from(first.matrix()),
                    _ => plan
                        .evaluate_retained_into(ws, wavelengths[offset + 1], sample.matrix_mut())
                        .map_err(|e| (base + offset + 1, e))?,
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use picbench_netlist::NetlistBuilder;

    fn mzi_circuit(delta: f64) -> Circuit {
        let netlist = NetlistBuilder::new()
            .instance_with("m", "mzi", &[("delta_length", delta)])
            .port("I1", "m,I1")
            .port("O1", "m,O1")
            .model("mzi", "mzi")
            .build();
        Circuit::elaborate(&netlist, &ModelRegistry::with_builtins(), None).unwrap()
    }

    #[test]
    fn grid_generation() {
        let g = WavelengthGrid::new(1.0, 2.0, 5);
        assert_eq!(g.wavelengths(), vec![1.0, 1.25, 1.5, 1.75, 2.0]);
        let single = WavelengthGrid::new(1.55, 1.55, 1);
        assert_eq!(single.wavelengths(), vec![1.55]);
    }

    #[test]
    fn paper_grid_covers_cl_band() {
        let g = WavelengthGrid::paper_default();
        let wl = g.wavelengths();
        assert_eq!(wl.len(), 81);
        assert!((wl[0] - 1.51).abs() < 1e-12);
        assert!((wl[80] - 1.59).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_one_sample_per_point() {
        let c = mzi_circuit(10.0);
        let r = sweep(&c, &WavelengthGrid::paper_fast(), Backend::default()).unwrap();
        assert_eq!(r.wavelengths().len(), 17);
        assert_eq!(r.ports(), &["I1".to_string(), "O1".to_string()]);
        assert!(r.sample(0).is_some());
        assert!(r.sample(17).is_none());
        assert_eq!(r.transmission("I1", "O1").unwrap().len(), 17);
    }

    #[test]
    fn identical_circuits_compare_equal() {
        let c1 = mzi_circuit(10.0);
        let c2 = mzi_circuit(10.0);
        let g = WavelengthGrid::paper_fast();
        let r1 = sweep(&c1, &g, Backend::default()).unwrap();
        let r2 = sweep(&c2, &g, Backend::default()).unwrap();
        let cmp = r1.compare(&r2);
        assert!(cmp.is_equivalent(1e-12), "{cmp}");
    }

    #[test]
    fn different_delta_lengths_differ() {
        let g = WavelengthGrid::paper_default();
        let r1 = sweep(&mzi_circuit(10.0), &g, Backend::default()).unwrap();
        let r2 = sweep(&mzi_circuit(12.0), &g, Backend::default()).unwrap();
        let cmp = r1.compare(&r2);
        assert!(!cmp.is_equivalent(1e-3), "{cmp}");
        assert!(cmp.max_power_diff > 0.01);
    }

    #[test]
    fn port_mismatch_is_never_equivalent() {
        let c1 = mzi_circuit(10.0);
        let netlist = NetlistBuilder::new()
            .instance("s", "mmi1x2")
            .port("I1", "s,I1")
            .port("O1", "s,O1")
            .port("O2", "s,O2")
            .model("mmi1x2", "mmi1x2")
            .build();
        let c2 = Circuit::elaborate(&netlist, &ModelRegistry::with_builtins(), None).unwrap();
        let g = WavelengthGrid::paper_fast();
        let r1 = sweep(&c1, &g, Backend::default()).unwrap();
        let r2 = sweep(&c2, &g, Backend::default()).unwrap();
        let cmp = r1.compare(&r2);
        assert!(!cmp.ports_match);
        assert!(!cmp.is_equivalent(1e9));
    }

    #[test]
    fn parallel_sweep_is_element_wise_identical_to_serial() {
        let c = mzi_circuit(10.0);
        let g = WavelengthGrid::paper_default();
        for backend in Backend::ALL {
            let serial = sweep_serial(&c, &g, backend).unwrap();
            for threads in [2, 3, 8] {
                let parallel = sweep_parallel(&c, &g, backend, threads).unwrap();
                // Bit-identical, not merely close: every point runs the
                // exact same plan arithmetic regardless of the worker.
                assert_eq!(serial, parallel, "{backend} with {threads} threads");
            }
        }
    }

    #[test]
    fn default_sweep_matches_naive_sweep() {
        let c = mzi_circuit(10.0);
        let g = WavelengthGrid::paper_default();
        for backend in Backend::ALL {
            let planned = sweep(&c, &g, backend).unwrap();
            let naive = sweep_naive(&c, &g, backend).unwrap();
            let cmp = planned.compare(&naive);
            assert!(cmp.is_equivalent(1e-12), "{backend}: {cmp}");
        }
    }

    #[test]
    fn parallel_error_reporting_is_deterministic() {
        // An undamped resonant loop: a lossless ring exactly on resonance
        // is singular for the dense solve at some grid points. The sweep
        // must report the lowest-indexed failure no matter how many
        // workers raced.
        let netlist = NetlistBuilder::new()
            .instance_with("dc", "coupler", &[("coupling", 0.0)])
            .instance_with("loop", "waveguide", &[("length", 100.0), ("loss", 0.0)])
            .connect("dc,O2", "loop,I1")
            .connect("loop,O1", "dc,I2")
            .port("I1", "dc,I1")
            .port("O1", "dc,O1")
            .model("coupler", "coupler")
            .model("waveguide", "waveguide")
            .build();
        let c = Circuit::elaborate(&netlist, &ModelRegistry::with_builtins(), None).unwrap();
        let g = WavelengthGrid::paper_default();
        let serial = sweep_serial(&c, &g, Backend::Dense);
        let Err(serial_err) = serial else {
            // The coupling-0 loop may happen to dodge exact resonance on
            // this grid; nothing to compare then.
            return;
        };
        for threads in [2, 5] {
            let parallel_err = sweep_parallel(&c, &g, Backend::Dense, threads).unwrap_err();
            assert_eq!(serial_err, parallel_err, "{threads} threads");
        }
    }

    #[test]
    fn transmission_db_is_finite_for_passive_circuit() {
        let c = mzi_circuit(10.0);
        let r = sweep(&c, &WavelengthGrid::paper_fast(), Backend::default()).unwrap();
        for db in r.transmission_db("I1", "O1").unwrap() {
            assert!(db <= 0.5, "passive circuit cannot have gain, got {db} dB");
        }
    }
}
