//! # picbench-sim
//!
//! The frequency-domain S-parameter circuit simulator of PICBench-rs —
//! the Rust stand-in for SAX, the "open-source simulator" the paper builds
//! its evaluation on.
//!
//! Pipeline: a JSON [`Netlist`] is validated and [`Circuit::elaborate`]d
//! against a [`ModelRegistry`], then [`sweep`]-simulated over a
//! [`WavelengthGrid`] with one of two independent composition
//! [`Backend`]s, yielding a [`FrequencyResponse`] that the benchmark
//! compares against golden designs.
//!
//! Sweeps follow a **plan/execute** split: a [`SweepPlan`] freezes every
//! wavelength-independent piece of the composition once per circuit
//! (port partitions, permutations, elimination schedules, memoized
//! dispersionless component S-matrices), and per-point solves run
//! allocation-free on reusable [`SolveWorkspace`]s — serially for short
//! grids, on scoped worker threads for grids of [`PARALLEL_THRESHOLD`]
//! points or more, with element-wise identical results either way. The
//! original rebuild-per-point path survives as [`sweep_naive`], the
//! benchmark baseline and cross-check.
//!
//! ## Example
//!
//! ```
//! use picbench_netlist::NetlistBuilder;
//! use picbench_sim::{simulate_netlist, Backend, ModelRegistry, WavelengthGrid};
//!
//! let netlist = NetlistBuilder::new()
//!     .instance_with("m", "mzi", &[("delta_length", 10.0)])
//!     .port("I1", "m,I1")
//!     .port("O1", "m,O1")
//!     .model("mzi", "mzi")
//!     .build();
//! let registry = ModelRegistry::with_builtins();
//! let response = simulate_netlist(
//!     &netlist,
//!     &registry,
//!     None,
//!     &WavelengthGrid::paper_default(),
//!     Backend::default(),
//! )?;
//! assert_eq!(response.wavelengths().len(), 81);
//! # Ok::<(), picbench_sim::SimulateError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod backend;
mod blocks;
mod composite;
mod elaborate;
mod plan;
mod registry;
mod response;

pub use backend::{evaluate, Backend, SimError};
pub use composite::CompositeModel;
pub use elaborate::{Circuit, ElabInstance, ElaborateError};
pub use plan::{ScheduleCache, SolveWorkspace, SweepPlan, SweepSchedule};
pub use registry::ModelRegistry;
pub use response::{
    sweep, sweep_naive, sweep_parallel, sweep_planned, sweep_serial, sweep_with_plan,
    FrequencyResponse, ResponseComparison, WavelengthGrid, PARALLEL_THRESHOLD,
};

// Re-exported so downstream crates can name the netlist types this crate
// consumes without an extra dependency edge.
pub use picbench_netlist::{Netlist, PortSpec};

use std::error::Error;
use std::fmt;

/// Error from the end-to-end [`simulate_netlist`] convenience function.
#[derive(Debug)]
pub enum SimulateError {
    /// The netlist failed structural validation.
    Elaborate(ElaborateError),
    /// The simulation failed at some wavelength.
    Sim(SimError),
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::Elaborate(e) => write!(f, "{e}"),
            SimulateError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SimulateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulateError::Elaborate(e) => Some(e),
            SimulateError::Sim(e) => Some(e),
        }
    }
}

impl From<ElaborateError> for SimulateError {
    fn from(e: ElaborateError) -> Self {
        SimulateError::Elaborate(e)
    }
}

impl From<SimError> for SimulateError {
    fn from(e: SimError) -> Self {
        SimulateError::Sim(e)
    }
}

/// Validates, elaborates and sweeps a netlist in one call.
///
/// # Errors
///
/// Returns [`SimulateError::Elaborate`] with all validation issues, or
/// [`SimulateError::Sim`] when a grid point fails to evaluate.
pub fn simulate_netlist(
    netlist: &Netlist,
    registry: &ModelRegistry,
    spec: Option<&PortSpec>,
    grid: &WavelengthGrid,
    backend: Backend,
) -> Result<FrequencyResponse, SimulateError> {
    let circuit = Circuit::elaborate(netlist, registry, spec)?;
    Ok(sweep(&circuit, grid, backend)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use picbench_netlist::NetlistBuilder;

    #[test]
    fn end_to_end_simulation() {
        let netlist = NetlistBuilder::new()
            .instance_with("wg", "waveguide", &[("length", 100.0)])
            .port("I1", "wg,I1")
            .port("O1", "wg,O1")
            .model("waveguide", "waveguide")
            .build();
        let registry = ModelRegistry::with_builtins();
        let r = simulate_netlist(
            &netlist,
            &registry,
            Some(&PortSpec::new(1, 1)),
            &WavelengthGrid::paper_fast(),
            Backend::default(),
        )
        .unwrap();
        // 100 µm at 2 dB/cm = 0.02 dB loss.
        let db = r.transmission_db("I1", "O1").unwrap();
        assert!(db.iter().all(|&d| (d + 0.02).abs() < 1e-6));
    }

    #[test]
    fn validation_error_propagates() {
        let netlist = NetlistBuilder::new()
            .instance("wg", "warpdrive")
            .port("I1", "wg,I1")
            .port("O1", "wg,O1")
            .model("warpdrive", "warpdrive")
            .build();
        let registry = ModelRegistry::with_builtins();
        let err = simulate_netlist(
            &netlist,
            &registry,
            None,
            &WavelengthGrid::paper_fast(),
            Backend::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimulateError::Elaborate(_)));
        assert!(err.to_string().contains("warpdrive"));
    }
}
